//! Integration tests pinning the paper's claims across crates.

use soft_hls::baselines::{list_schedule, Priority};
use soft_hls::ir::{algo, bench_graphs, generate, ResourceSet};
use soft_hls::sched::{
    meta::MetaSchedule,
    soft::{check_correctness, check_threaded},
    ExhaustiveScheduler, ThreadedScheduler,
};

/// Figure 3's qualitative claim: "with few exceptions, the threaded
/// scheduler is able to achieve the same result as the list scheduler
/// with a number of meta schedules."
#[test]
fn figure3_threaded_tracks_list_within_one_step() {
    for (name, g) in bench_graphs::all() {
        for (alus, muls) in [(2, 2), (4, 4), (2, 1)] {
            let r = ResourceSet::classic(alus, muls);
            let list_len = list_schedule(&g, &r, Priority::CriticalPath)
                .unwrap()
                .length(&g);
            for meta in MetaSchedule::PAPER {
                let order = meta.order(&g, &r).unwrap();
                let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
                ts.schedule_all(order).unwrap();
                let diff = ts.diameter().abs_diff(list_len);
                assert!(
                    diff <= 2,
                    "{name} {alus}+{muls}* {}: threaded {} vs list {list_len}",
                    meta.name(),
                    ts.diameter()
                );
            }
        }
    }
}

/// The schedule lengths are never below the critical path and never
/// above the fully-serial bound.
#[test]
fn schedule_lengths_sit_between_theoretical_bounds() {
    for (_, g) in bench_graphs::all() {
        let cp = algo::diameter(&g);
        let serial = g.total_delay();
        for (alus, muls) in [(2, 2), (4, 4), (2, 1)] {
            let r = ResourceSet::classic(alus, muls);
            let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
            let mut ts = ThreadedScheduler::new(g.clone(), r).unwrap();
            ts.schedule_all(order).unwrap();
            assert!(ts.diameter() >= cp);
            assert!(ts.diameter() <= serial);
        }
    }
}

/// Section 3: a threaded state with K > 1 is genuinely *soft* (partially
/// ordered), while K = 1 degenerates to a hard scheduler.
#[test]
fn softness_depends_on_thread_count() {
    let g = bench_graphs::fir();
    for (k, expect_hard) in [(1usize, true), (2, false), (4, false)] {
        let r = ResourceSet::uniform(k);
        let order = MetaSchedule::Topological.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), r).unwrap();
        ts.schedule_all(order).unwrap();
        let snap = ts.snapshot();
        check_threaded(&snap).unwrap();
        check_correctness(&g, &snap).unwrap();
        assert_eq!(snap.is_hard(), expect_hard, "K = {k}");
    }
}

/// Theorem 2 on an irregular random workload: the fast select equals
/// exhaustive speculation step by step.
#[test]
fn theorem2_holds_on_a_dense_random_graph() {
    let dm = soft_hls::ir::DelayModel::classic();
    let g = generate::random_dag(99, 16, 0.3, &dm);
    let r = ResourceSet::classic(2, 2);
    let order = MetaSchedule::Dfs.order(&g, &r).unwrap();
    let mut ts = ThreadedScheduler::new(g, r).unwrap();
    for v in order {
        let best = ts
            .feasible_placements(v)
            .unwrap()
            .into_iter()
            .map(|p| {
                let mut spec = ts.clone();
                spec.commit(p, v);
                spec.diameter()
            })
            .min()
            .unwrap();
        ts.schedule(v).unwrap();
        assert_eq!(ts.diameter(), best);
    }
}

/// The exhaustive scheduler (the naive implementation the paper
/// rejects) produces the same quality as Algorithm 1 when driven by the
/// same meta order on the benchmarks — it is only *slower*.
#[test]
fn naive_speculation_buys_no_quality_on_benchmarks() {
    for (name, g) in bench_graphs::all() {
        let r = ResourceSet::classic(2, 1);
        let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
        let mut fast = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
        fast.schedule_all(order.iter().copied()).unwrap();
        let mut slow = ExhaustiveScheduler::new(g, r).unwrap();
        slow.schedule_all(order).unwrap();
        // Tie-breaking may differ mid-run; the final quality must agree
        // within a step on these regular benchmark graphs.
        assert!(
            fast.diameter().abs_diff(slow.diameter()) <= 1,
            "{name}: fast {} vs naive {}",
            fast.diameter(),
            slow.diameter()
        );
    }
}

/// The meta-schedule robustness observation: even random topological
/// feeds stay close to the list scheduler on the benchmarks.
#[test]
fn random_topological_orders_stay_close_to_list() {
    let r = ResourceSet::classic(2, 2);
    for (name, g) in bench_graphs::all() {
        let list_len = list_schedule(&g, &r, Priority::CriticalPath)
            .unwrap()
            .length(&g);
        for seed in 0..5u64 {
            // Random permutation constrained to topological order via
            // the scheduler's own meta machinery.
            let order = MetaSchedule::Random(seed).order(&g, &r).unwrap();
            let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
            ts.schedule_all(order).unwrap();
            assert!(
                ts.diameter() <= list_len * 2,
                "{name} seed {seed}: wildly off ({} vs {list_len})",
                ts.diameter()
            );
        }
    }
}
