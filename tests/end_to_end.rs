//! Cross-crate integration: front end -> soft scheduler -> allocation ->
//! physical design -> FSMD, exercised as one pipeline.

use soft_hls::alloc::{left_edge, lifetimes};
use soft_hls::flow::{run_flow, run_flow_source, FlowConfig};
use soft_hls::ir::{bench_graphs, generate, DelayModel, OpKind, ResourceClass, ResourceSet};
use soft_hls::lang::compile;
use soft_hls::phys::WireModel;
use soft_hls::sched::{meta::MetaSchedule, ThreadedScheduler};
use soft_hls::search::{run_portfolio, PipelineConfig, PortfolioConfig};

const DIFFEQ: &str = "
    input x, dx, u, y, a;
    output x1, y1, u1, c;
    t1 = 3 * x;  t2 = u * dx;  t3 = 3 * y;
    t4 = t1 * t2;
    t5 = t3 * dx;
    s1 = u - t4;
    u1 = s1 - t5;
    y1 = y + u * dx;
    x1 = x + dx;
    c = x1 < a;
";

#[test]
fn compiled_source_matches_the_handcrafted_hal_graph() {
    let compiled = compile(DIFFEQ, &DelayModel::classic()).unwrap();
    let hal = bench_graphs::hal();
    assert_eq!(compiled.graph.len(), hal.len());
    assert_eq!(
        compiled.graph.kind_histogram(),
        hal.kind_histogram(),
        "same op mix"
    );
    assert_eq!(
        soft_hls::ir::algo::diameter(&compiled.graph),
        soft_hls::ir::algo::diameter(&hal),
        "same critical path"
    );
    // And it schedules to (nearly) the same length as the handcrafted
    // graph — tie-breaking depends on vertex numbering, which differs.
    let r = ResourceSet::classic(2, 2);
    let mut lengths = Vec::new();
    for g in [&compiled.graph, &hal] {
        let order = MetaSchedule::ListBased.order(g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
        ts.schedule_all(order).unwrap();
        lengths.push(ts.diameter());
    }
    assert!(lengths.iter().all(|&l| (7..=8).contains(&l)), "{lengths:?}");
}

#[test]
fn full_flow_outputs_are_mutually_consistent() {
    let cfg = FlowConfig {
        resources: ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
        register_budget: Some(3),
        wire_model: WireModel::new(1),
        grid: (5, 1),
        ..FlowConfig::default()
    };
    let out = run_flow_source(DIFFEQ, &cfg).unwrap();

    // Schedule validates against the final behavior and resource set.
    soft_hls::ir::schedule::validate(out.scheduler.graph(), &cfg.resources, &out.schedule)
        .unwrap();
    // FSMD covers every operation.
    assert_eq!(out.fsmd.microops.len(), out.scheduler.graph().len());
    assert_eq!(out.fsmd.states, out.schedule.length(out.scheduler.graph()));
    // Register count in the report equals an independent recomputation.
    let ls = lifetimes::lifetimes(out.scheduler.graph(), &out.schedule).unwrap();
    assert_eq!(
        left_edge::allocate(&ls).register_count(),
        out.report.registers
    );
    // The RTL names every register.
    let rtl = out.fsmd.to_verilog(out.scheduler.graph(), "diffeq");
    for rn in 0..out.report.registers {
        assert!(rtl.contains(&format!("r{rn}")), "register r{rn} missing");
    }
}

#[test]
fn flow_handles_every_benchmark_graph() {
    for (name, g) in bench_graphs::all() {
        let cfg = FlowConfig {
            resources: ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1),
            register_budget: Some(6),
            ..FlowConfig::default()
        };
        let out = run_flow(g, &cfg).unwrap();
        assert!(
            out.report.final_states >= out.report.initial_states,
            "{name}: refinement cannot shorten"
        );
        out.scheduler.check_invariants().unwrap();
    }
}

#[test]
fn spills_reduce_register_pressure() {
    // EWF under a harsh budget: the flow must spill and the final
    // pressure must come down relative to no-budget.
    let base_cfg = FlowConfig::default();
    let free = run_flow(bench_graphs::ewf(), &base_cfg).unwrap();
    let tight_cfg = FlowConfig {
        register_budget: Some(free.report.registers.saturating_sub(2).max(1)),
        ..FlowConfig::default()
    };
    let tight = run_flow(bench_graphs::ewf(), &tight_cfg).unwrap();
    assert!(tight.report.spills > 0, "budget must force spills");
    assert!(
        tight.report.registers < free.report.registers,
        "spilling must relieve pressure: {} vs {}",
        tight.report.registers,
        free.report.registers
    );
}

#[test]
fn conditional_source_resolves_phis_in_the_flow() {
    let src = "
        input a, b, k; output o, p;
        s = a * k;
        if (s < b) { t = s + a; } else { t = s - b; }
        o = t * 2;
        p = t + s;
    ";
    let out = run_flow_source(src, &FlowConfig::default()).unwrap();
    assert_eq!(out.report.phis_to_moves + out.report.phis_voided, 1);
    assert!(out
        .scheduler
        .graph()
        .op_ids()
        .all(|v| out.scheduler.graph().kind(v) != OpKind::Phi));
    // The φ became a move or vanished; either way the schedule validates
    // (checked inside the flow) and the FSMD covers it.
    assert_eq!(out.fsmd.microops.len(), out.scheduler.graph().len());
}

#[test]
fn portfolio_scheduled_flow_produces_consistent_hardware() {
    // The full pipeline with the parallel portfolio + feedback
    // refinement in the scheduling seat: the winner state must carry
    // through spilling, φ resolution, placement and FSMD extraction
    // exactly like a single-meta schedule does.
    let config = FlowConfig {
        resources: ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
        register_budget: Some(4),
        grid: (3, 2),
        portfolio: Some(PortfolioConfig {
            threads: 2,
            ..PortfolioConfig::default()
        }),
        ..FlowConfig::default()
    };
    let out = run_flow_source(DIFFEQ, &config).expect("portfolio flow runs");
    assert!(out.report.final_states >= out.report.initial_states);
    assert_eq!(out.fsmd.states, out.report.final_states);
    out.scheduler.check_invariants().unwrap();
    // The portfolio's soft schedule is never longer than the default
    // single-meta flow on the same design.
    let single = run_flow_source(
        DIFFEQ,
        &FlowConfig {
            resources: ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
            register_budget: Some(4),
            grid: (3, 2),
            ..FlowConfig::default()
        },
    )
    .expect("single-meta flow runs");
    assert!(out.report.initial_states <= single.report.initial_states);
}

#[test]
fn flow_handles_the_shared_stress_workload() {
    // The same seeded stress shape the search determinism suite races
    // (hls_ir::generate::stress_dag), scaled down for the full flow's
    // placement stage.
    let g = generate::stress_dag(0xD15C0, 150);
    let cfg = FlowConfig {
        resources: ResourceSet::classic(3, 2).with(ResourceClass::MemPort, 1),
        grid: (3, 2),
        ..FlowConfig::default()
    };
    let out = run_flow(g, &cfg).unwrap();
    assert!(out.report.final_states >= out.report.initial_states);
    soft_hls::ir::schedule::validate(out.scheduler.graph(), &cfg.resources, &out.schedule)
        .unwrap();
    out.scheduler.check_invariants().unwrap();
}

#[test]
fn pipelined_flow_reports_a_certified_ii_end_to_end() {
    // Loop kernels run the modulo portfolio first, then the ordinary
    // flow on the one-iteration kernel DAG.
    for (name, g) in bench_graphs::loops() {
        let cfg = FlowConfig {
            resources: ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
            pipeline: Some(PipelineConfig::default()),
            grid: (3, 2),
            ..FlowConfig::default()
        };
        let out = run_flow(g.clone(), &cfg).unwrap();
        let p = out.report.pipeline.expect("pipeline seat reports");
        assert!(p.ii >= p.mii, "{name}: II below certified bound");
        let ms = out.modulo.expect("modulo schedule kept");
        assert_eq!(ms.ii(), p.ii, "{name}");
        soft_hls::ir::schedule::check_modulo(&g, &cfg.resources, &ms)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // The downstream hardware covers the kernel's ops.
        assert_eq!(out.fsmd.microops.len(), out.scheduler.graph().len());
    }
}

#[test]
fn portfolio_winner_supports_further_refinement() {
    // The winner is a live soft scheduler: post-portfolio ECO
    // refinement (the paper's Figure 1 scenario) must keep working on
    // it, including the incremental reach-index repair.
    let g = bench_graphs::ewf();
    let r = ResourceSet::classic(2, 2);
    let out = run_portfolio(&g, &r, &PortfolioConfig::default()).expect("portfolio runs");
    let mut ts = out.winner;
    let before = ts.diameter();
    let edges: Vec<_> = ts.graph().edges().collect();
    let (from, to) = edges[0];
    ts.refine_splice(
        from,
        to,
        [(OpKind::WireDelay, 1, "w".to_string())],
    )
    .expect("splice onto the winner state");
    assert!(ts.diameter() >= before);
    ts.check_invariants().unwrap();
}
