//! # soft-hls
//!
//! A reproduction of **Zhu & Gajski, "Soft Scheduling in High Level
//! Synthesis" (DAC 1999)** as a complete, adoptable HLS library.
//!
//! The paper's contribution — the soft-scheduling framework and the
//! linear, online-optimal *threaded scheduler* — lives in
//! [`threaded_sched`]. Everything it is evaluated against or depends on
//! is built from scratch in the sibling crates, re-exported here:
//!
//! * [`ir`] — precedence-graph IR, benchmark DFGs, generators;
//! * [`lang`] — behavioral language front end (SSA, φ nodes);
//! * [`sched`] — the soft/threaded scheduler (the paper);
//! * [`baselines`] — ASAP, ALAP, list and force-directed scheduling;
//! * [`alloc`] — lifetimes, left-edge registers, spilling, interconnect;
//! * [`phys`] — floorplan, simulated-annealing placement, wire delays;
//! * [`search`] — the parallel portfolio scheduler (meta schedules race
//!   on OS threads behind an atomic incumbent) with feedback-guided
//!   critical-cone refinement, plus the modulo portfolio that races
//!   meta orders per candidate initiation interval for loop
//!   pipelining;
//! * [`flow`] — the end-to-end flow producing an FSMD and RTL skeleton;
//! * [`serve`] — the scheduling daemon: bounded admission, per-request
//!   deadlines and crash isolation, graceful drain, and a canonical
//!   content-hash schedule cache with an ECO-delta fast path.
//!
//! ## Quickstart
//!
//! ```
//! use soft_hls::ir::{bench_graphs, ResourceSet};
//! use soft_hls::sched::{meta::MetaSchedule, ThreadedScheduler};
//!
//! let g = bench_graphs::hal();
//! let resources = ResourceSet::classic(2, 2);
//! let order = MetaSchedule::ListBased.order(&g, &resources)?;
//! let mut ts = ThreadedScheduler::new(g, resources)?;
//! ts.schedule_all(order)?;
//! println!("HAL schedules in {} control states", ts.diameter());
//! # Ok::<(), soft_hls::sched::SchedError>(())
//! ```
//!
//! See `README.md` for the architecture overview and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every table and figure.

pub use hls_alloc as alloc;
pub use hls_baselines as baselines;
pub use hls_flow as flow;
pub use hls_ir as ir;
pub use hls_lang as lang;
pub use hls_phys as phys;
pub use hls_search as search;
pub use hls_serve as serve;
pub use threaded_sched as sched;
