//! Theorem 3: linear per-operation complexity of Algorithm 1.
//!
//! The paper proves `F(v, S)` is computable in `O(|V|)` time and notes
//! that the naive speculative implementation costs `O(|V|² · |E|)` for a
//! full schedule. This experiment measures wall-clock time for complete
//! schedules of layered random DFGs of growing size with both
//! implementations (plus list scheduling for reference), exposing the
//! quadratic-vs-cubic gap.

use hls_ir::{generate, ResourceSet};
use std::time::Instant;
use threaded_sched::{meta::MetaSchedule, ExhaustiveScheduler, ThreadedScheduler};

/// One measured size point.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Number of operations.
    pub ops: usize,
    /// Edges in the generated DFG.
    pub edges: usize,
    /// Full-schedule wall time of Algorithm 1, microseconds.
    pub threaded_us: u128,
    /// Full-schedule wall time of the naive speculative scheduler,
    /// microseconds (`None` if skipped as too large).
    pub naive_us: Option<u128>,
    /// List-scheduling wall time, microseconds.
    pub list_us: u128,
}

/// Runs the scaling experiment over the given sizes. The naive scheduler
/// is skipped above `naive_cutoff` operations.
///
/// # Panics
///
/// Panics if a generated workload fails to schedule (cannot happen: the
/// generator emits ALU/MUL ops only and both unit classes are present).
pub fn run(sizes: &[usize], naive_cutoff: usize) -> Vec<SizePoint> {
    let resources = ResourceSet::classic(2, 2);
    sizes
        .iter()
        .map(|&n| {
            let cfg = generate::LayeredConfig {
                ops: n,
                width: (n / 8).max(2),
                edge_prob: 0.25,
                ..generate::LayeredConfig::default()
            };
            let g = generate::layered_dag(0xC0FFEE ^ n as u64, &cfg);
            let order = MetaSchedule::Topological
                .order(&g, &resources)
                .expect("generated graph is a DAG");

            let t0 = Instant::now();
            let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())
                .expect("generated graph is valid");
            ts.schedule_all(order.iter().copied()).expect("schedulable");
            let threaded_us = t0.elapsed().as_micros();

            let naive_us = (n <= naive_cutoff).then(|| {
                let t0 = Instant::now();
                let mut ex = ExhaustiveScheduler::new(g.clone(), resources.clone())
                    .expect("generated graph is valid");
                ex.schedule_all(order.iter().copied()).expect("schedulable");
                t0.elapsed().as_micros()
            });

            let t0 = Instant::now();
            let _ = hls_baselines::list_schedule(
                &g,
                &resources,
                hls_baselines::Priority::CriticalPath,
            )
            .expect("schedulable");
            let list_us = t0.elapsed().as_micros();

            SizePoint {
                ops: n,
                edges: g.edge_count(),
                threaded_us,
                naive_us,
                list_us,
            }
        })
        .collect()
}

/// Formats the scaling table.
pub fn report(points: &[SizePoint]) -> String {
    let header = vec![
        "|V|".to_string(),
        "|E|".to_string(),
        "threaded (us)".to_string(),
        "naive (us)".to_string(),
        "list (us)".to_string(),
        "naive/threaded".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.ops.to_string(),
                p.edges.to_string(),
                p.threaded_us.to_string(),
                p.naive_us.map_or("-".to_string(), |v| v.to_string()),
                p.list_us.to_string(),
                p.naive_us
                    .map_or("-".to_string(), |v| {
                        format!("{:.1}x", v as f64 / p.threaded_us.max(1) as f64)
                    }),
            ]
        })
        .collect();
    crate::render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_run_produces_points_and_naive_is_slower() {
        let pts = run(&[48, 96], 96);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.threaded_us > 0, "threaded run must take measurable time");
            let naive = p.naive_us.expect("below cutoff");
            assert!(
                naive >= p.threaded_us,
                "naive speculation should not beat Algorithm 1"
            );
        }
        let text = report(&pts);
        assert!(text.contains("naive/threaded"));
    }

    #[test]
    fn cutoff_skips_naive() {
        let pts = run(&[48], 10);
        assert!(pts[0].naive_us.is_none());
    }
}
