//! Theorem 3: linear per-operation complexity of Algorithm 1.
//!
//! The paper proves `F(v, S)` is computable in `O(|V|)` time and notes
//! that the naive speculative implementation costs `O(|V|² · |E|)` for a
//! full schedule. This experiment measures wall-clock time for complete
//! schedules of layered random DFGs of growing size with both
//! implementations (plus list scheduling for reference), exposing the
//! quadratic-vs-cubic gap.

use hls_ir::{generate, ResourceSet};
use std::time::Instant;
use threaded_sched::{
    meta::MetaSchedule, ExhaustiveScheduler, ReferenceScheduler, ThreadedScheduler,
};

/// One measured size point.
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Number of operations.
    pub ops: usize,
    /// Edges in the generated DFG.
    pub edges: usize,
    /// Full-schedule wall time of Algorithm 1, microseconds.
    pub threaded_us: u128,
    /// Full-schedule wall time of the naive speculative scheduler,
    /// microseconds (`None` if skipped as too large).
    pub naive_us: Option<u128>,
    /// List-scheduling wall time, microseconds.
    pub list_us: u128,
}

/// Runs the scaling experiment over the given sizes. The naive scheduler
/// is skipped above `naive_cutoff` operations.
///
/// # Panics
///
/// Panics if a generated workload fails to schedule (cannot happen: the
/// generator emits ALU/MUL ops only and both unit classes are present).
pub fn run(sizes: &[usize], naive_cutoff: usize) -> Vec<SizePoint> {
    let resources = ResourceSet::classic(2, 2);
    sizes
        .iter()
        .map(|&n| {
            let cfg = generate::LayeredConfig {
                ops: n,
                width: (n / 8).max(2),
                edge_prob: 0.25,
                ..generate::LayeredConfig::default()
            };
            let g = generate::layered_dag(0xC0FFEE ^ n as u64, &cfg);
            let order = MetaSchedule::Topological
                .order(&g, &resources)
                .expect("generated graph is a DAG");

            let t0 = Instant::now();
            let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())
                .expect("generated graph is valid");
            ts.schedule_all(order.iter().copied()).expect("schedulable");
            let threaded_us = t0.elapsed().as_micros();

            let naive_us = (n <= naive_cutoff).then(|| {
                let t0 = Instant::now();
                let mut ex = ExhaustiveScheduler::new(g.clone(), resources.clone())
                    .expect("generated graph is valid");
                ex.schedule_all(order.iter().copied()).expect("schedulable");
                t0.elapsed().as_micros()
            });

            let t0 = Instant::now();
            let _ = hls_baselines::list_schedule(
                &g,
                &resources,
                hls_baselines::Priority::CriticalPath,
            )
            .expect("schedulable");
            let list_us = t0.elapsed().as_micros();

            SizePoint {
                ops: n,
                edges: g.edge_count(),
                threaded_us,
                naive_us,
                list_us,
            }
        })
        .collect()
}

/// Formats the scaling table.
pub fn report(points: &[SizePoint]) -> String {
    let header = vec![
        "|V|".to_string(),
        "|E|".to_string(),
        "threaded (us)".to_string(),
        "naive (us)".to_string(),
        "list (us)".to_string(),
        "naive/threaded".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.ops.to_string(),
                p.edges.to_string(),
                p.threaded_us.to_string(),
                p.naive_us.map_or("-".to_string(), |v| v.to_string()),
                p.list_us.to_string(),
                p.naive_us
                    .map_or("-".to_string(), |v| {
                        format!("{:.1}x", v as f64 / p.threaded_us.max(1) as f64)
                    }),
            ]
        })
        .collect();
    crate::render_table(&header, &rows)
}

/// One point of the incremental-engine scaling study.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Number of operations.
    pub ops: usize,
    /// Edges in the generated DFG.
    pub edges: usize,
    /// `schedule_all` wall time of the optimized scheduler,
    /// microseconds.
    pub opt_us: u128,
    /// `schedule_all` wall time of the frozen pre-refactor seed
    /// ([`ReferenceScheduler`]), microseconds; `None` above the cutoff.
    pub ref_us: Option<u128>,
    /// Final state diameter (checked equal between both engines).
    pub diameter: u64,
    /// Peak heap growth (bytes) while constructing and running the
    /// optimized scheduler — the memory-scaling column. 0 unless the
    /// process installed [`crate::mem::CountingAlloc`].
    pub peak_bytes: u64,
}

/// The sweep workload: a layered DFG with *bounded mean in-degree*
/// (~6 predecessors per op, width capped at 64), so the edge count —
/// and the intrinsic work — grows linearly with `|V|`. This is the
/// shape of real basic-block DFG streams; the Theorem 3 question is how
/// scheduling cost scales when the problem itself scales linearly.
pub fn sweep_config(ops: usize) -> generate::LayeredConfig {
    let width = 64.min((ops / 4).max(2));
    generate::LayeredConfig {
        ops,
        width,
        edge_prob: (6.0 / width as f64).min(1.0),
        ..generate::LayeredConfig::default()
    }
}

/// Runs the scaling study: times `schedule_all` (state construction and
/// closure precomputation excluded on both sides) for the optimized
/// scheduler at every size and for the frozen seed up to
/// `reference_cutoff` ops.
///
/// # Panics
///
/// Panics if a workload fails to schedule or the two engines disagree
/// on the resulting diameter (they are golden-equivalent by
/// construction).
pub fn scaling_sweep(sizes: &[usize], reference_cutoff: usize) -> Vec<ScalePoint> {
    let resources = ResourceSet::classic(2, 2);
    sizes
        .iter()
        .map(|&n| {
            let g = generate::layered_dag(0x5EED ^ n as u64, &sweep_config(n));
            let order = MetaSchedule::Topological
                .order(&g, &resources)
                .expect("generated graph is a DAG");

            // Peak heap growth of the optimized engine alone: baseline
            // after the workload exists, peak over construction (graph
            // copy + reachability index) and the full schedule.
            let mem_base = crate::mem::current_bytes();
            crate::mem::reset_peak();
            let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())
                .expect("generated graph is valid");
            let t0 = Instant::now();
            ts.schedule_all(order.iter().copied()).expect("schedulable");
            let opt_us = t0.elapsed().as_micros();
            let peak_bytes = crate::mem::peak_bytes().saturating_sub(mem_base);
            let diameter = ts.diameter();

            let ref_us = (n <= reference_cutoff).then(|| {
                let mut rs = ReferenceScheduler::new(g.clone(), resources.clone())
                    .expect("generated graph is valid");
                let t0 = Instant::now();
                rs.schedule_all(order.iter().copied()).expect("schedulable");
                let us = t0.elapsed().as_micros();
                assert_eq!(rs.diameter(), diameter, "engines diverged at |V|={n}");
                us
            });

            ScalePoint {
                ops: n,
                edges: g.edge_count(),
                opt_us,
                ref_us,
                diameter,
                peak_bytes,
            }
        })
        .collect()
}

/// Least-squares slope of `ln(time)` against `ln(ops)` — the empirical
/// scaling exponent of a sweep (1.0 = linear, 2.0 = quadratic).
pub fn fit_exponent(points: &[(usize, u128)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(ops, us) in points {
        let x = (ops as f64).ln();
        let y = (us.max(1) as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Formats the scaling-study table.
pub fn report_scaling(points: &[ScalePoint]) -> String {
    let header = vec![
        "|V|".to_string(),
        "|E|".to_string(),
        "optimized (us)".to_string(),
        "seed (us)".to_string(),
        "speedup".to_string(),
        "diameter".to_string(),
        "peak MB".to_string(),
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.ops.to_string(),
                p.edges.to_string(),
                p.opt_us.to_string(),
                p.ref_us.map_or("-".to_string(), |v| v.to_string()),
                p.ref_us.map_or("-".to_string(), |v| {
                    format!("{:.1}x", v as f64 / p.opt_us.max(1) as f64)
                }),
                p.diameter.to_string(),
                if p.peak_bytes == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", p.peak_bytes as f64 / (1024.0 * 1024.0))
                },
            ]
        })
        .collect();
    crate::render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_run_produces_points_and_naive_is_slower() {
        let pts = run(&[48, 96], 96);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.threaded_us > 0, "threaded run must take measurable time");
            let naive = p.naive_us.expect("below cutoff");
            assert!(
                naive >= p.threaded_us,
                "naive speculation should not beat Algorithm 1"
            );
        }
        let text = report(&pts);
        assert!(text.contains("naive/threaded"));
    }

    #[test]
    fn cutoff_skips_naive() {
        let pts = run(&[48], 10);
        assert!(pts[0].naive_us.is_none());
    }

    #[test]
    fn sweep_checks_diameter_equality_and_respects_cutoff() {
        let pts = scaling_sweep(&[64, 128], 64);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].ref_us.is_some(), "below cutoff: seed timed");
        assert!(pts[1].ref_us.is_none(), "above cutoff: seed skipped");
        assert!(pts.iter().all(|p| p.diameter > 0));
        let text = report_scaling(&pts);
        assert!(text.contains("speedup"));
    }

    #[test]
    fn sweep_workload_has_bounded_degree() {
        let small = generate::layered_dag(1, &sweep_config(512));
        let large = generate::layered_dag(2, &sweep_config(4096));
        let deg_s = small.edge_count() as f64 / small.len() as f64;
        let deg_l = large.edge_count() as f64 / large.len() as f64;
        assert!((deg_s - deg_l).abs() < 2.0, "mean degree must not grow: {deg_s} vs {deg_l}");
    }

    #[test]
    fn fit_exponent_recovers_known_slopes() {
        let linear: Vec<(usize, u128)> = [100, 200, 400, 800].iter().map(|&n| (n, 3 * n as u128)).collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 0.01);
        let quad: Vec<(usize, u128)> =
            [100, 200, 400, 800].iter().map(|&n| (n, (n * n) as u128)).collect();
        assert!((fit_exponent(&quad) - 2.0).abs() < 0.01);
        assert!(fit_exponent(&quad[..1]).is_nan());
    }
}
