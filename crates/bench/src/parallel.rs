//! BENCH_6: partition-parallel scaling to million-op behaviors.
//!
//! The sequential engine's wall time at scale is dominated by
//! whole-graph terms (the superlinear chain-cover index build and
//! out-of-cache flat tables); `ParallelScheduler` decomposes the
//! behavior into balanced blocks, schedules them on worker threads and
//! stitches the seams in one linear pass. This study measures both
//! engines on the BENCH_2 workload family
//! ([`crate::complexity::sweep_config`]) up to 10⁶ operations and
//! records the schedule-quality cost of decomposition (stitched vs
//! sequential diameter, and both vs the certified lower bound).

use std::time::Instant;

use hls_ir::{generate, load, PrecedenceGraph, ResourceSet};
use threaded_sched::{
    meta::MetaSchedule, parallel::ParallelConfig, ParallelScheduler, ThreadedScheduler,
};

use crate::complexity::sweep_config;

/// One measured size point of the scaling study.
#[derive(Clone, Debug)]
pub struct ParallelPoint {
    /// Workload name (`sweep-<n>` for generated points).
    pub name: String,
    /// Number of operations.
    pub ops: usize,
    /// Edges in the DFG.
    pub edges: usize,
    /// Sequential `schedule_all` wall time, milliseconds (`None` if
    /// skipped — quick mode skips the 10⁶ sequential run).
    pub sequential_ms: Option<u128>,
    /// Sequential diameter (`None` when the run was skipped).
    pub sequential_diameter: Option<u64>,
    /// Partition-parallel wall time (partitioning included),
    /// milliseconds.
    pub parallel_ms: u128,
    /// Stitched diameter.
    pub parallel_diameter: u64,
    /// Certified lower bound from the reservation ledger and the
    /// critical path.
    pub lower_bound: u64,
    /// Partition blocks used.
    pub blocks: usize,
    /// Cut edges of the partition.
    pub cut_edges: usize,
}

impl ParallelPoint {
    /// Sequential-over-parallel wall-time ratio, when both ran.
    pub fn speedup(&self) -> Option<f64> {
        self.sequential_ms
            .map(|s| s as f64 / (self.parallel_ms.max(1)) as f64)
    }
}

/// Measures one graph under both engines. `workers` sizes the parallel
/// pool; `run_sequential` gates the (possibly minutes-long) sequential
/// reference.
///
/// # Panics
///
/// Panics if the workload fails to schedule (cannot happen for the
/// generated sweep: ALU/MUL ops under `ResourceSet::classic`).
pub fn measure(
    name: &str,
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    workers: usize,
    run_sequential: bool,
) -> ParallelPoint {
    let (sequential_ms, sequential_diameter) = if run_sequential {
        let t0 = Instant::now();
        let order = MetaSchedule::Topological
            .order(g, resources)
            .expect("sweep workload is a DAG");
        let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())
            .expect("sweep workload is valid");
        ts.schedule_all(order).expect("sweep workload is schedulable");
        (Some(t0.elapsed().as_millis()), Some(ts.diameter()))
    } else {
        (None, None)
    };

    let cfg = ParallelConfig { workers, sequential_cutoff: 0, ..ParallelConfig::default() };
    let t0 = Instant::now();
    let ps = ParallelScheduler::new(g.clone(), resources.clone(), cfg)
        .expect("sweep workload is valid");
    let run = ps.run().expect("sweep workload is schedulable");
    let parallel_ms = t0.elapsed().as_millis();

    ParallelPoint {
        name: name.to_string(),
        ops: g.len(),
        edges: g.edge_count(),
        sequential_ms,
        sequential_diameter,
        parallel_ms,
        parallel_diameter: run.diameter,
        lower_bound: run.lower_bound,
        blocks: ps.partition().parts(),
        cut_edges: run.cut_edges,
    }
}

/// Measures a workload resolved through the shared loader
/// ([`hls_ir::load`]): a named kernel, a `stress:<seed>:<ops>` spec or
/// a `.dfg` file.
///
/// # Errors
///
/// Propagates [`hls_ir::load::LoadError`] verbatim.
pub fn measure_spec(
    spec: &str,
    workers: usize,
    run_sequential: bool,
) -> Result<ParallelPoint, load::LoadError> {
    let (name, g) = load::load_graph(spec)?;
    let resources = ResourceSet::classic(2, 2);
    Ok(measure(&name, &g, &resources, workers, run_sequential))
}

/// Runs the scaling study. The sequential reference runs at every
/// size at or below `sequential_cutoff` ops (above it only the
/// parallel engine runs — quick mode uses this to keep CI smokes
/// inside their timeout).
pub fn run_study(sizes: &[usize], workers: usize, sequential_cutoff: usize) -> Vec<ParallelPoint> {
    let resources = ResourceSet::classic(2, 2);
    sizes
        .iter()
        .map(|&n| {
            let g = generate::layered_dag(0x5EED ^ n as u64, &sweep_config(n));
            measure(&format!("sweep-{n}"), &g, &resources, workers, n <= sequential_cutoff)
        })
        .collect()
}

/// Renders the study as the BENCH_6 JSON document.
pub fn report(points: &[ParallelPoint], workers: usize, quick: bool) -> String {
    let headline = points
        .iter()
        .filter_map(ParallelPoint::speedup)
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"BENCH_6\",\n");
    out.push_str("  \"pr\": 8,\n");
    out.push_str(
        "  \"subject\": \"partition-parallel scheduling: balanced min-cut partition + \
         per-block soft scheduling on worker threads + linear seam stitch, vs the \
         sequential engine\",\n",
    );
    out.push_str(
        "  \"workload\": \"layered DFG, bounded mean in-degree ~6, \
         ResourceSet::classic(2,2), topological meta order (complexity::sweep_config)\",\n",
    );
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"headline_speedup\": {headline:.2},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let seq_ms = p.sequential_ms.map_or("null".to_string(), |v| v.to_string());
        let seq_d = p
            .sequential_diameter
            .map_or("null".to_string(), |v| v.to_string());
        let speedup = p
            .speedup()
            .map_or("null".to_string(), |v| format!("{v:.2}"));
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"edges\": {}, \"sequential_ms\": {}, \
             \"parallel_ms\": {}, \"speedup\": {}, \"sequential_diameter\": {}, \
             \"parallel_diameter\": {}, \"lower_bound\": {}, \"blocks\": {}, \
             \"cut_edges\": {}}}{}\n",
            p.name,
            p.ops,
            p.edges,
            seq_ms,
            p.parallel_ms,
            speedup,
            seq_d,
            p.parallel_diameter,
            p.lower_bound,
            p.blocks,
            p.cut_edges,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_points_are_internally_consistent() {
        let points = run_study(&[2000, 5000], 2, usize::MAX);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.lower_bound <= p.parallel_diameter);
            let seq = p.sequential_diameter.unwrap();
            assert!(p.lower_bound <= seq);
            assert!(p.speedup().is_some());
            assert!(p.blocks >= 1);
        }
        let json = report(&points, 2, true);
        assert!(json.contains("\"bench\": \"BENCH_6\""));
        assert!(json.contains("\"ops\": 5000"));
    }

    #[test]
    fn loader_backed_points_work() {
        let p = measure_spec("ewf", 2, true).unwrap();
        assert_eq!(p.name, "EWF");
        let seq = p.sequential_diameter.unwrap();
        assert!(p.lower_bound <= seq && p.lower_bound <= p.parallel_diameter);
        assert!(measure_spec("no-such-workload", 2, false).is_err());
    }
}
