//! Figure 1: the motivating example, end to end.
//!
//! Regenerates every number quoted in the paper's Section 1/4 narrative:
//!
//! * (b) an ALAP hard schedule of the dataflow graph — 5 states;
//! * (e) the threaded soft schedule with threads `{3,4,6,7}` / `{1,2,5}`
//!   — 5 states;
//! * (c) spilling the value of vertex 3: soft refinement reaches
//!   **6** states, the hard trivial fix needs **7**;
//! * (d) a wire delay after vertex 3: soft refinement stays at
//!   **5** states, the hard trivial fix needs **6**.

use hls_ir::{bench_graphs, OpKind, ResourceClass, ResourceSet};
use threaded_sched::{refine, ThreadedScheduler};

/// All headline numbers of the Figure 1 walkthrough.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig1Numbers {
    /// Length of the ALAP hard schedule of Figure 1(b).
    pub alap_states: u64,
    /// Diameter of the threaded soft schedule of Figure 1(e).
    pub soft_states: u64,
    /// Soft diameter after absorbing the spill of vertex 3 (Figure 1(c)
    /// scenario).
    pub soft_after_spill: u64,
    /// Hard trivial-fix length for the same spill.
    pub hard_after_spill: u64,
    /// Soft diameter after absorbing the wire delay (Figure 1(d)
    /// scenario).
    pub soft_after_wire: u64,
    /// Hard trivial-fix length for the same wire delay.
    pub hard_after_wire: u64,
}

/// The paper's quoted values.
pub fn paper_numbers() -> Fig1Numbers {
    Fig1Numbers {
        alap_states: 5,
        soft_states: 5,
        soft_after_spill: 6,
        hard_after_spill: 7,
        soft_after_wire: 5,
        hard_after_wire: 6,
    }
}

/// Builds the Figure 1(e) soft schedule: threads `{3,4,6,7}` and
/// `{1,2,5}` over two universal units plus a memory port for spills.
fn fig1_soft() -> (ThreadedScheduler, [hls_ir::OpId; 7]) {
    let f = bench_graphs::fig1();
    let r = ResourceSet::uniform(2).with(ResourceClass::MemPort, 1);
    let mut ts = ThreadedScheduler::new(f.graph, r).expect("fig1 graph is valid");
    for (op, thread) in [
        (f.v[2], 0),
        (f.v[3], 0),
        (f.v[5], 0),
        (f.v[6], 0),
        (f.v[0], 1),
        (f.v[1], 1),
        (f.v[4], 1),
    ] {
        let p = ts
            .feasible_placements(op)
            .expect("fig1 ops schedulable")
            .into_iter().rfind(|p| p.thread == thread)
            .expect("tail position exists");
        ts.commit(p, op);
    }
    (ts, f.v)
}

/// Runs the walkthrough and returns the measured numbers.
///
/// # Panics
///
/// Panics if any refinement fails (cannot happen on the shipped graph).
pub fn run() -> Fig1Numbers {
    let f = bench_graphs::fig1();
    let alap = hls_baselines::alap(&f.graph, hls_ir::algo::diameter(&f.graph))
        .expect("fig1 is acyclic");
    let alap_states = alap.length(&f.graph);

    let (ts_spill, v) = fig1_soft();
    let soft_states = ts_spill.diameter();
    let base_hard = ts_spill.extract_hard();
    let base_graph = ts_spill.graph().clone();
    let resources = ts_spill.resources().clone();

    // Spill refinement (Figure 1(c)).
    let mut ts = ts_spill;
    refine::insert_spill(&mut ts, v[2], v[3]).expect("spillable edge");
    let soft_after_spill = ts.diameter();
    let patched = refine::patch_hard_splice(
        &base_graph,
        &base_hard,
        &resources,
        v[2],
        v[3],
        [
            (OpKind::Store, 1, "st".to_string()),
            (OpKind::Load, 1, "ld".to_string()),
        ],
    )
    .expect("patchable");
    let hard_after_spill = patched.schedule.length(&patched.graph);

    // Wire-delay refinement (Figure 1(d)) on a fresh Figure 1(e) state.
    let (mut ts_wire, v) = fig1_soft();
    refine::insert_wire_delay(&mut ts_wire, v[2], v[3], 1).expect("edge exists");
    let soft_after_wire = ts_wire.diameter();
    let wire_patch = refine::patch_hard_splice(
        &base_graph,
        &base_hard,
        &resources,
        v[2],
        v[3],
        [(OpKind::WireDelay, 1, "wd".to_string())],
    )
    .expect("patchable");
    let hard_after_wire = wire_patch.schedule.length(&wire_patch.graph);

    Fig1Numbers {
        alap_states,
        soft_states,
        soft_after_spill,
        hard_after_spill,
        soft_after_wire,
        hard_after_wire,
    }
}

/// Formats measured vs paper numbers.
pub fn report(measured: &Fig1Numbers) -> String {
    let paper = paper_numbers();
    let header = vec![
        "quantity".to_string(),
        "measured".to_string(),
        "paper".to_string(),
    ];
    let rows = vec![
        vec![
            "ALAP hard schedule (b)".to_string(),
            measured.alap_states.to_string(),
            paper.alap_states.to_string(),
        ],
        vec![
            "threaded soft schedule (e)".to_string(),
            measured.soft_states.to_string(),
            paper.soft_states.to_string(),
        ],
        vec![
            "soft + spill (c)".to_string(),
            measured.soft_after_spill.to_string(),
            paper.soft_after_spill.to_string(),
        ],
        vec![
            "hard trivial fix + spill".to_string(),
            measured.hard_after_spill.to_string(),
            paper.hard_after_spill.to_string(),
        ],
        vec![
            "soft + wire delay (d)".to_string(),
            measured.soft_after_wire.to_string(),
            paper.soft_after_wire.to_string(),
        ],
        vec![
            "hard trivial fix + wire delay".to_string(),
            measured.hard_after_wire.to_string(),
            paper.hard_after_wire.to_string(),
        ],
    ];
    crate::render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure1_number_matches_the_paper() {
        assert_eq!(run(), paper_numbers());
    }
}
