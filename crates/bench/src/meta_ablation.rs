//! Meta-schedule sensitivity ablation (extends the paper's Section 5).
//!
//! Theoretically, online optimality does not bound the quality of a
//! from-scratch schedule under an *arbitrary* meta order; the paper
//! observes that "many meta schedules lead to results comparable to the
//! traditional list scheduler". This study quantifies that: for each
//! benchmark it compares the four paper meta schedules against a
//! population of random (topologically-valid and fully random) orders.

use hls_ir::{bench_graphs, PrecedenceGraph, ResourceSet};
#[cfg(test)]
use hls_ir::algo;
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

/// Ablation result for one benchmark.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// List-scheduler length (the reference).
    pub list: u64,
    /// Lengths under meta schedules 1–4.
    pub paper_metas: [u64; 4],
    /// Min/mean/max over `samples` random topological orders.
    pub random_topo: (u64, f64, u64),
    /// Min/mean/max over `samples` fully random permutations.
    pub random_any: (u64, f64, u64),
}

fn run_order(g: &PrecedenceGraph, r: &ResourceSet, order: &[hls_ir::OpId]) -> u64 {
    let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).expect("valid benchmark");
    ts.schedule_all(order.iter().copied()).expect("schedulable");
    ts.diameter()
}

fn stats(lengths: &[u64]) -> (u64, f64, u64) {
    let min = lengths.iter().copied().min().unwrap_or(0);
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mean = lengths.iter().sum::<u64>() as f64 / lengths.len().max(1) as f64;
    (min, mean, max)
}

/// Runs the ablation with `samples` random orders per population.
///
/// # Panics
///
/// Panics if a benchmark fails to schedule (cannot happen with the
/// shipped set).
pub fn run(resources: &ResourceSet, samples: u64) -> Vec<AblationRow> {
    bench_graphs::all()
        .into_iter()
        .map(|(name, g)| {
            let list = hls_baselines::list_schedule(
                &g,
                resources,
                hls_baselines::Priority::CriticalPath,
            )
            .expect("schedulable")
            .length(&g);
            let mut paper_metas = [0u64; 4];
            for (i, m) in MetaSchedule::PAPER.into_iter().enumerate() {
                let order = m.order(&g, resources).expect("valid meta order");
                paper_metas[i] = run_order(&g, resources, &order);
            }
            let topo: Vec<u64> = (0..samples)
                .map(|s| {
                    let order =
                        MetaSchedule::RandomTopo(s).order(&g, resources).expect("valid");
                    run_order(&g, resources, &order)
                })
                .collect();
            let any: Vec<u64> = (0..samples)
                .map(|s| {
                    let order = MetaSchedule::Random(s).order(&g, resources).expect("valid");
                    run_order(&g, resources, &order)
                })
                .collect();
            AblationRow {
                benchmark: name,
                list,
                paper_metas,
                random_topo: stats(&topo),
                random_any: stats(&any),
            }
        })
        .collect()
}

/// Formats the ablation table.
pub fn report(rows: &[AblationRow]) -> String {
    let header = vec![
        "BM".to_string(),
        "list".to_string(),
        "meta1".to_string(),
        "meta2".to_string(),
        "meta3".to_string(),
        "meta4".to_string(),
        "rand-topo min/mean/max".to_string(),
        "rand-any min/mean/max".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.list.to_string(),
                r.paper_metas[0].to_string(),
                r.paper_metas[1].to_string(),
                r.paper_metas[2].to_string(),
                r.paper_metas[3].to_string(),
                format!("{}/{:.1}/{}", r.random_topo.0, r.random_topo.1, r.random_topo.2),
                format!("{}/{:.1}/{}", r.random_any.0, r.random_any.1, r.random_any.2),
            ]
        })
        .collect();
    crate::render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_rows_are_lower_bounded_by_critical_path() {
        let rows = run(&ResourceSet::classic(2, 2), 3);
        for (row, (_, g)) in rows.iter().zip(bench_graphs::all()) {
            let cp = algo::diameter(&g);
            assert!(row.list >= cp);
            for &len in &row.paper_metas {
                assert!(len >= cp, "{}: below critical path", row.benchmark);
            }
            assert!(row.random_topo.0 >= cp);
            assert!(row.random_any.0 >= cp);
        }
    }

}
