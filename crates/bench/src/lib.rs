//! Experiment harness for the soft-scheduling reproduction.
//!
//! Each module regenerates one table or figure of Zhu & Gajski (DAC '99)
//! or one of the additional studies indexed in `DESIGN.md`:
//!
//! * [`fig1`] — the motivating example walkthrough (Figure 1);
//! * [`fig3`] — the benchmark table (Figure 3);
//! * [`complexity`] — wall-clock scaling of Algorithm 1 vs the naive
//!   speculative scheduler (Theorem 3);
//! * [`coupling`] — the phase-coupling ablation (spill / wire-delay
//!   absorption: soft refinement vs hard patching vs rescheduling);
//! * [`meta_ablation`] — sensitivity of the online-optimal scheduler to
//!   the meta order;
//! * [`portfolio`] — the parallel portfolio + feedback refinement study
//!   (BENCH_3): quality vs the best single meta, wall time vs thread
//!   count under the early-abort protocol;
//! * [`modulo`] — the loop-pipelining study (BENCH_4): achieved II vs
//!   the certified `MII = max(ResMII, RecMII)` across loop kernels ×
//!   resource allocations, with the per-cell gap and wall time;
//! * [`mem`] — the byte-counting global allocator behind the memory
//!   column of the scaling study;
//! * [`microbench`] — hot-path micro-benchmarks (BENCH_7): `select`
//!   and `commit` per-op cost, `ReachIndex` probe throughput, the
//!   word-parallel extremum kernels vs their scalar oracles, and the
//!   arena `reset_to`-vs-clone and portfolio-wall comparisons;
//! * [`serve_load`] — the daemon load study (BENCH_5): open-loop
//!   throughput and p50/p99 at 0.5×/1×/2× estimated capacity,
//!   shed-rate under overload, and the schedule-cache hit/ECO-replay
//!   speedups;
//! * [`parallel`] — the partition-parallel scaling study (BENCH_6):
//!   balanced min-cut partition + per-block scheduling on worker
//!   threads + linear seam stitch, vs the sequential engine up to 10⁶
//!   ops, with the stitched-vs-sequential quality gap and the
//!   certified lower bound.
//!
//! The binaries under `src/bin/` print the results; `EXPERIMENTS.md`
//! records them against the paper.

pub mod complexity;
pub mod coupling;
pub mod delay_sweep;
pub mod fig1;
pub mod fig3;
pub mod mem;
pub mod meta_ablation;
pub mod microbench;
pub mod modulo;
pub mod parallel;
pub mod portfolio;
pub mod serve_load;

/// Renders a plain-text table: header row plus aligned data rows.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |row: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_table_aligns_columns() {
        let header = vec!["a".to_string(), "bb".to_string()];
        let rows = vec![vec!["xxx".to_string(), "y".to_string()]];
        let t = super::render_table(&header, &rows);
        assert!(t.contains("a    bb"));
        assert!(t.contains("xxx  y"));
    }
}
