//! Machine-readable BENCH_3: the parallel portfolio study.
//!
//! Emits `BENCH_3.json` with (1) the Figure-3 portfolio-quality table
//! — portfolio vs best-single-meta diameter per benchmark × resource
//! config, with the certified lower bound — and (2) the thread sweep:
//! wall time of the 8-strategy race at 1/2/4/8 threads on the
//! layered-DFG sweep workload, against the single-meta baselines.
//! `EXPERIMENTS.md` records the interpretation.
//!
//! Usage: `portfolio_json [--quick] [--ops N] [OUTPUT_PATH]` —
//! `--quick` shrinks the sweep workload for CI smoke runs (the JSON
//! then carries `"quick": true`).

use hls_bench::portfolio::{
    fig3_portfolio, fig3_report, refinement_study, sweep_report, thread_sweep,
};
use std::fmt::Write as _;

fn main() {
    let mut quick = false;
    let mut ops: Option<usize> = None;
    let mut out_path = "BENCH_3.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--ops" {
            ops = Some(
                args.next()
                    .expect("--ops takes a count")
                    .parse()
                    .expect("--ops takes an integer"),
            );
        } else {
            out_path = arg;
        }
    }
    let ops = ops.unwrap_or(if quick { 2000 } else { 5000 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let cells = fig3_portfolio(2);
    print!("{}", fig3_report(&cells));
    let optimal = cells.iter().filter(|c| c.refined == c.lower_bound).count();
    println!(
        "portfolio ≤ best single meta on {}/{} cells (guaranteed); provably optimal on {optimal}",
        cells.len(),
        cells.len()
    );

    let refine_rows = refinement_study(if quick { 4 } else { 12 });
    let improved: Vec<_> = refine_rows.iter().filter(|r| r.refined < r.base).collect();
    println!(
        "feedback refinement: improved {}/{} random-DAG cells (tight resources)",
        improved.len(),
        refine_rows.len()
    );
    for r in &improved {
        println!(
            "  seed {} density {} {}: {} -> {} (bound {}, {} rounds)",
            r.seed, r.density, r.resources, r.base, r.refined, r.lower_bound, r.rounds
        );
    }

    let study = thread_sweep(ops, &[1, 2, 4, 8]);
    print!("{}", sweep_report(&study));
    let p8 = study.points.iter().find(|p| p.threads == 8).expect("8-thread point");
    let ratio8 = p8.wall_us as f64 / study.best_single_us.max(1) as f64;
    println!(
        "8-thread portfolio of 8 strategies: {ratio8:.2}x the best single meta's wall time \
         ({} effective workers on {cores} cores)",
        p8.workers
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_3\",");
    let _ = writeln!(json, "  \"pr\": 3,");
    let _ = writeln!(
        json,
        "  \"subject\": \"parallel portfolio (4 paper metas + 4 seeded perturbations, shared atomic incumbent, certified early abort) + feedback-guided critical-cone refinement\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"fig3\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"best_single\": {}, \"best_single_name\": \"{}\", \"portfolio\": {}, \"refined\": {}, \"lower_bound\": {}, \"winner\": \"{}\"}}{comma}",
            c.benchmark, c.config, c.best_single, c.best_single_name, c.portfolio, c.refined,
            c.lower_bound, c.winner
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"refinement\": {\n");
    let _ = writeln!(
        json,
        "    \"workload\": \"random_dag(|V|=120) under 1+/-,1* and 2+/-,1*\","
    );
    let _ = writeln!(json, "    \"cells\": {},", refine_rows.len());
    let _ = writeln!(json, "    \"improved\": {},", improved.len());
    json.push_str("    \"improved_rows\": [\n");
    for (i, r) in improved.iter().enumerate() {
        let comma = if i + 1 == improved.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"seed\": {}, \"density\": {}, \"resources\": \"{}\", \"base\": {}, \"refined\": {}, \"lower_bound\": {}, \"rounds\": {}}}{comma}",
            r.seed, r.density, r.resources, r.base, r.refined, r.lower_bound, r.rounds
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"workload\": \"layered DFG, bounded mean in-degree ~6, ResourceSet::classic(2,2) (complexity::sweep_config)\","
    );
    let _ = writeln!(json, "    \"ops\": {},", study.ops);
    json.push_str("    \"singles\": [\n");
    for (i, &(name, us, d)) in study.singles.iter().enumerate() {
        let comma = if i + 1 == study.singles.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"meta\": \"{name}\", \"wall_us\": {us}, \"diameter\": {d}}}{comma}"
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"best_single_wall_us\": {},", study.best_single_us);
    json.push_str("    \"threads\": [\n");
    for (i, p) in study.points.iter().enumerate() {
        let comma = if i + 1 == study.points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"threads\": {}, \"workers\": {}, \"wall_us\": {}, \"vs_best_single\": {:.3}, \"completed\": {}, \"aborted\": {}, \"work_frac\": {:.4}, \"diameter\": {}}}{comma}",
            p.threads,
            p.workers,
            p.wall_us,
            p.wall_us as f64 / study.best_single_us.max(1) as f64,
            p.completed,
            p.aborted,
            p.work_frac,
            p.diameter
        );
    }
    json.push_str("    ],\n");
    let _ = writeln!(json, "    \"ratio_8_threads_vs_best_single\": {ratio8:.3}");
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("writing the bench JSON must succeed");
    println!("wrote {out_path}");
}
