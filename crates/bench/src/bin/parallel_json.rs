//! Regenerates `BENCH_6.json`: the partition-parallel scaling study.
//!
//! ```text
//! cargo run --release -p hls-bench --bin parallel_json [-- --quick] \
//!     [--out PATH] [--workers N] [--graph SPEC]
//! ```
//!
//! The full run measures the sequential engine at every size including
//! the 10⁶-op point (minutes); `--quick` keeps the 10⁶-op *parallel*
//! run but caps the sequential reference at 10⁵ ops so a CI smoke
//! finishes inside its timeout. `--graph` appends one extra point for
//! a workload resolved through the shared loader (`hls_ir::load`): a
//! named kernel, `stress:<seed>:<ops>`, or a `.dfg` file.

use hls_bench::parallel::{measure_spec, report, run_study};

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_6.json".to_string();
    let mut workers = 8usize;
    let mut graph: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers takes a count")
            }
            "--graph" => graph = Some(args.next().expect("--graph takes a workload spec")),
            other => panic!("unknown argument '{other}'"),
        }
    }

    let sizes = [20_000usize, 100_000, 300_000, 1_000_000];
    let sequential_cutoff = if quick { 100_000 } else { usize::MAX };
    let mut points = run_study(&sizes, workers, sequential_cutoff);
    if let Some(spec) = &graph {
        match measure_spec(spec, workers, true) {
            Ok(p) => points.push(p),
            Err(e) => {
                eprintln!("--graph {spec}: {e}");
                std::process::exit(2);
            }
        }
    }

    for p in &points {
        let speedup = p
            .speedup()
            .map_or("-".to_string(), |s| format!("{s:.2}x"));
        println!(
            "{:>12} ops {:>8} -> parallel {:>7} ms ({} blocks, {} cut), speedup {}",
            p.name, p.ops, p.parallel_ms, p.blocks, p.cut_edges, speedup
        );
    }

    let json = report(&points, workers, quick);
    std::fs::write(&out_path, &json).expect("writing the bench JSON must succeed");
    println!("wrote {out_path}");

    // The acceptance gate of the full run: the million-op point exists
    // and the parallel engine beats sequential by at least 3x there.
    if !quick {
        let million = points
            .iter()
            .find(|p| p.ops >= 1_000_000)
            .expect("the sweep includes a 1M-op point");
        let speedup = million.speedup().expect("full runs measure sequential at 1M");
        assert!(
            speedup >= 3.0,
            "1M-op speedup {speedup:.2}x below the 3x acceptance bar"
        );
    }
}
