//! Machine-readable BENCH_5: the scheduler-as-a-service load study.
//!
//! Boots an in-process `hls-serve` daemon, estimates capacity from a
//! sequential warmup, then sweeps an open-loop generator at 0.5×, 1×
//! and 2× that capacity. Emits `BENCH_5.json` with schedules/sec,
//! client-side p50/p99 and shed-rate per point, plus the
//! schedule-cache study (cold vs hit vs ECO replay). The asserts in
//! `main` *are* the overload contract: every request answered, typed
//! shedding at 2×, bounded p99 for what was accepted, and an ECO
//! replay ≥ 5× faster than the cold flow.
//!
//! Usage: `serve_json [--quick] [OUTPUT_PATH]` — `--quick` shortens
//! the sweep windows for CI smoke runs (the JSON carries
//! `"quick": true`).

use hls_bench::serve_load::{load_report, run_load_study};
use std::fmt::Write as _;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_5.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let study = run_load_study(quick);
    print!("{}", load_report(&study));

    // The contract checks. A violation here is a real serving bug,
    // not a flaky benchmark: shedding is typed and counted, latency
    // is bounded by the deadline the daemon itself enforces.
    for p in &study.points {
        assert_eq!(
            p.completed + p.shed + p.timeouts + p.errors,
            p.sent,
            "every request must be accounted for at {:.1}x",
            p.rate_mult
        );
        assert_eq!(p.errors, 0, "untyped failures at {:.1}x load", p.rate_mult);
    }
    let over = study
        .points
        .iter()
        .find(|p| p.rate_mult > 1.5)
        .expect("sweep includes an overload point");
    assert!(
        over.shed > 0,
        "2x overload must shed (typed), not buffer without bound"
    );
    assert!(
        over.p99_us / 1000 <= 2 * study.deadline_ms,
        "accepted requests must keep a deadline-bounded p99 under overload \
         (p99 {} ms vs deadline {} ms)",
        over.p99_us / 1000,
        study.deadline_ms
    );
    assert!(
        study.cache.hit_speedup() >= 5.0,
        "exact resubmission must be >=5x faster than cold ({:.1}x)",
        study.cache.hit_speedup()
    );
    assert!(
        study.cache.eco_speedup() >= 5.0,
        "ECO replay must be >=5x faster than cold ({:.1}x)",
        study.cache.eco_speedup()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_5\",");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(
        json,
        "  \"subject\": \"scheduler-as-a-service: open-loop load sweep against the hls-serve daemon (bounded admission queue, per-request deadlines into the degradation ladder, crash isolation) plus the content-hash schedule cache with ECO-delta replay\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"workers\": {},", study.workers);
    let _ = writeln!(json, "  \"queue_capacity\": {},", study.queue_capacity);
    let _ = writeln!(json, "  \"warmup_mean_us\": {},", study.warmup_mean_us);
    let _ = writeln!(json, "  \"est_capacity_rps\": {:.2},", study.capacity_rps);
    let _ = writeln!(json, "  \"deadline_ms\": {},", study.deadline_ms);
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in study.points.iter().enumerate() {
        let comma = if i + 1 == study.points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"rate_mult\": {}, \"offered_rps\": {:.2}, \"sent\": {}, \
             \"completed\": {}, \"shed\": {}, \"timeouts\": {}, \"errors\": {}, \
             \"shed_rate\": {:.4}, \"p50_us\": {}, \"p99_us\": {}, \
             \"achieved_rps\": {:.2}}}{comma}",
            p.rate_mult,
            p.offered_rps,
            p.sent,
            p.completed,
            p.shed,
            p.timeouts,
            p.errors,
            p.shed_rate(),
            p.p50_us,
            p.p99_us,
            p.achieved_rps,
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"cache\": {{");
    let _ = writeln!(json, "    \"ops\": {},", study.cache.ops);
    let _ = writeln!(json, "    \"cold_us\": {},", study.cache.cold_us);
    let _ = writeln!(json, "    \"hit_us\": {},", study.cache.hit_us);
    let _ = writeln!(json, "    \"eco_us\": {},", study.cache.eco_us);
    let _ = writeln!(json, "    \"hit_speedup\": {:.2},", study.cache.hit_speedup());
    let _ = writeln!(json, "    \"eco_speedup\": {:.2}", study.cache.eco_speedup());
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_5 json");
    println!("wrote {out_path}");
}
