//! Theorem 3 scaling table: Algorithm 1 vs naive speculation vs list.
fn main() {
    let sizes = [64, 128, 256, 512, 1024, 2048];
    let points = hls_bench::complexity::run(&sizes, 512);
    println!("Theorem 3 — full-schedule wall time by graph size");
    println!("{}", hls_bench::complexity::report(&points));
}
