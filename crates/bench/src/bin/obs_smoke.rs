//! Observability smoke driver (CI `obs-smoke` job).
//!
//! Three gates in one binary, cheapest first:
//!
//! 1. **Disabled-recorder wall** (`--check PATH`) — with the master
//!    switch off, the 100k-op single-threaded `schedule_all` wall
//!    (best of 3) must stay within 2 % of the committed `BENCH_7.json`
//!    artifact. This is the acceptance number for "instrumentation
//!    costs one relaxed load and a predicted branch when off".
//! 2. **Traced 50k-op run** — the recorder on at sample-every-1 over
//!    (a) a 50k-op portfolio race (the scale where tracing must not
//!    perturb the engine) and (b) a full flow through the degradation
//!    ladder (the post-schedule phases — placement, FSMD extraction —
//!    are super-linear by design and only run at behavior-sized
//!    inputs). The combined Chrome `trace_event` JSON must validate
//!    as strict JSON and cover ≥ 6 distinct phase kinds, including
//!    the scheduling, extraction, portfolio and ladder phases.
//! 3. **STATS plane** — a live in-process daemon answers a scheduling
//!    request and then a `STATS` query; the snapshot must be strict
//!    JSON and count the request.
//!
//! Usage: `obs_smoke [--quick] [--check PATH] [TRACE_OUT]`
//!
//! * `--quick` — 5k-op traced flow (PR-turnaround smoke; the phase
//!   coverage gate is unchanged);
//! * `--check PATH` — enables the disabled-recorder wall gate against
//!   the committed artifact at PATH;
//! * `TRACE_OUT` — where the Chrome trace is written (default
//!   `obs-trace.json`).

use hls_bench::complexity::{scaling_sweep, sweep_config};
use hls_flow::{run_flow_degraded, FlowConfig};
use hls_ir::{bench_graphs, generate, textfmt};
use hls_serve::{BindAddr, Client, RequestOpts, ServeConfig, Server};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The disabled-recorder regression envelope over the committed
/// artifact (the observability PR's acceptance number; the generic
/// hot-path gate in `microbench --check` stays at 15 %).
const WALL_TOLERANCE: f64 = 1.02;

/// Phases a portfolio flow through the ladder must visibly cross.
const EXPECTED_PHASES: &[&str] = &[
    "flow:schedule",
    "flow:extract",
    "portfolio:race",
    "portfolio:run",
    "degrade:rung",
];

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut trace_out = "obs-trace.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--check" {
            check = Some(args.next().expect("--check takes the committed artifact path"));
        } else {
            trace_out = arg;
        }
    }

    if let Some(path) = &check {
        check_disabled_wall(path);
    }
    traced_flow_covers_the_phases(if quick { 5_000 } else { 50_000 }, &trace_out);
    stats_round_trips_on_a_live_daemon();
    println!("obs_smoke: all gates passed");
}

/// Gate 1: the recorder's disabled cost must be invisible at the 2 %
/// level on the 100k-op single-threaded wall.
fn check_disabled_wall(artifact: &str) {
    assert!(
        !hls_obs::enabled(),
        "the wall gate measures the DISABLED recorder"
    );
    let committed = std::fs::read_to_string(artifact)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {artifact}: {e}"));
    let committed_us: u128 = committed
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("\"wall_100k_us\":")
                .map(|v| v.trim_end_matches(',').trim())
        })
        .and_then(|v| v.parse().ok())
        .expect("committed artifact must carry a numeric wall_100k_us");
    // Warmup discarded, then best-of-3: on a shared host noise only
    // adds time, so the minimum is the honest estimate.
    let _ = scaling_sweep(&[256], 0);
    let mut best = u128::MAX;
    for _ in 0..3 {
        best = best.min(scaling_sweep(&[100000], 0)[0].opt_us);
    }
    let limit = (committed_us as f64 * WALL_TOLERANCE) as u128;
    println!(
        "disabled-recorder 100k-op wall: best-of-3 {best} us, committed {committed_us} us, limit {limit} us"
    );
    assert!(
        best <= limit,
        "FAIL: disabled-recorder wall regressed more than 2% vs the committed BENCH_7 artifact"
    );
    println!("OK: disabled recording is within the 2% envelope");
}

/// Gate 2: a traced run produces a valid Chrome trace covering the
/// expected phase kinds.
fn traced_flow_covers_the_phases(ops: usize, trace_out: &str) {
    hls_obs::recorder::clear_events();
    hls_obs::recorder::set_sample_every(1);
    hls_obs::set_enabled(true);

    // (a) The portfolio race at headline scale.
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let resources = hls_ir::ResourceSet::classic(2, 2);
    let pcfg = hls_search::portfolio::PortfolioConfig::default();
    let t0 = Instant::now();
    let race = hls_search::portfolio::run_portfolio(&g, &resources, &pcfg)
        .unwrap_or_else(|e| panic!("traced {ops}-op portfolio race must complete: {e}"));
    let race_wall = t0.elapsed();
    println!(
        "traced {ops}-op portfolio race: diameter {} in {} ms",
        race.diameter,
        race_wall.as_millis()
    );

    // (b) A full flow through the ladder at behavior scale.
    let flow_ops = 800;
    let fg = generate::layered_dag(0x5EED ^ flow_ops as u64, &sweep_config(flow_ops));
    let t1 = Instant::now();
    let out = run_flow_degraded(&fg, &FlowConfig::default())
        .unwrap_or_else(|e| panic!("traced {flow_ops}-op flow must complete: {e}"));
    let flow_wall = t1.elapsed();
    hls_obs::set_enabled(false);

    let events = hls_obs::recorder::snapshot_events();
    let trace = hls_obs::export::chrome_trace_json(&events);
    hls_obs::export::validate_json(&trace)
        .unwrap_or_else(|at| panic!("chrome trace is not strict JSON (byte {at})"));
    let kinds: BTreeSet<&str> = events.iter().map(|e| e.phase.name()).collect();
    println!(
        "traced {flow_ops}-op flow: rung {}, {} events, {} phase kinds in {} ms: {:?}",
        out.rung.name(),
        events.len(),
        kinds.len(),
        flow_wall.as_millis(),
        kinds
    );
    assert!(
        kinds.len() >= 6,
        "trace must cover >= 6 distinct phase kinds, got {kinds:?}"
    );
    for want in EXPECTED_PHASES {
        assert!(kinds.contains(want), "trace is missing phase {want}: {kinds:?}");
    }
    std::fs::write(trace_out, &trace).expect("writing the trace JSON must succeed");
    println!("wrote {trace_out} ({} bytes)", trace.len());
}

/// Gate 3: STATS on a live daemon counts the work it just served.
fn stats_round_trips_on_a_live_daemon() {
    hls_obs::set_enabled(true);
    let server = Server::start(&BindAddr::Tcp("127.0.0.1:0".into()), ServeConfig::default())
        .expect("bind ephemeral port");
    let text = textfmt::to_text(&bench_graphs::ewf());
    let mut c = Client::connect(server.addr()).expect("connect");
    let before = c.stats().expect("STATS before load");
    hls_obs::export::validate_json(&before).expect("STATS body must be strict JSON");
    let a = c.schedule(&text, &RequestOpts::default()).expect("schedule");
    assert_ne!(a.trace, 0, "an OK line must carry a trace id");
    let after = c.stats().expect("STATS after load");
    hls_obs::export::validate_json(&after).expect("STATS body must be strict JSON");
    assert!(
        counter(&after, "serve_requests") > counter(&before, "serve_requests"),
        "STATS must count the request it just served"
    );
    server.shutdown(Duration::from_secs(10));
    hls_obs::set_enabled(false);
    println!(
        "STATS round-trip: serve_requests {} -> {}, trace {:016x}",
        counter(&before, "serve_requests"),
        counter(&after, "serve_requests"),
        a.trace
    );
}

/// Pulls a top-level `"name":N` integer out of the flat metrics JSON.
fn counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = json.find(&key).unwrap_or_else(|| panic!("no {name} in snapshot"));
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name} in snapshot"))
}
