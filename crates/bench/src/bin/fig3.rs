//! Regenerates the paper's Figure 3 benchmark table.
fn main() {
    let rows = hls_bench::fig3::run();
    println!("Figure 3 — scheduling results under resource constraints");
    println!("{}", hls_bench::fig3::report(&rows));
}
