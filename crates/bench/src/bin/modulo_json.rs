//! Machine-readable BENCH_4: the loop-pipelining study.
//!
//! Emits `BENCH_4.json`: achieved II vs the certified
//! `MII = max(ResMII, RecMII)` for every loop kernel × resource
//! allocation cell, with the per-cell gap, single-iteration latency
//! and modulo-portfolio wall time. Every winner is re-validated by
//! `check_modulo` inside the grid runner. `EXPERIMENTS.md` records the
//! interpretation.
//!
//! Usage: `modulo_json [--quick] [--threads N] [OUTPUT_PATH]` —
//! `--quick` drops the extra random kernels for CI smoke runs (the
//! JSON then carries `"quick": true`).

use hls_bench::modulo::{modulo_grid, modulo_report};
use std::fmt::Write as _;

fn main() {
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut out_path = "BENCH_4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--threads" {
            threads = Some(
                args.next()
                    .expect("--threads takes a count")
                    .parse()
                    .expect("--threads takes an integer"),
            );
        } else {
            out_path = arg;
        }
    }
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
    });
    let extra = if quick { 0 } else { 4 };

    let cells = modulo_grid(extra, threads);
    print!("{}", modulo_report(&cells));
    let tight = cells.iter().filter(|c| c.gap == 0).count();
    let res_bound = cells.iter().filter(|c| c.res_mii >= c.rec_mii).count();
    println!(
        "achieved II = certified MII on {tight}/{} cells \
         ({res_bound} resource-bound, {} recurrence-bound); every winner re-validated by check_modulo",
        cells.len(),
        cells.len() - res_bound,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_4\",");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(
        json,
        "  \"subject\": \"modulo soft scheduling for loop pipelining: II search from certified MII = max(ResMII, RecMII), modulo portfolio (height + 4 paper metas + seeded topo orders per candidate II, packed (II, latency, slot) incumbent)\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"cells_total\": {},", cells.len());
    let _ = writeln!(json, "  \"cells_ii_equals_mii\": {tight},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"ops\": {}, \"resources\": \"{}\", \
             \"res_mii\": {}, \"rec_mii\": {}, \"mii\": {}, \"ii\": {}, \"gap\": {}, \
             \"latency\": {}, \"wall_us\": {}, \"winner\": \"{}\"}}{comma}",
            c.kernel,
            c.ops,
            c.resources,
            c.res_mii,
            c.rec_mii,
            c.mii,
            c.ii,
            c.gap,
            c.latency,
            c.wall_us,
            c.winner,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_4 json");
    println!("wrote {out_path}");
}
