//! Delay-model sensitivity sweep: multiplier latency 1..4.
fn main() {
    let resources = hls_ir::ResourceSet::classic(2, 2);
    let rows = hls_bench::delay_sweep::run(&resources, 4);
    println!("Delay-model sweep (2 ALU, 2 MUL; multiplier latency 1..4)");
    println!("{}", hls_bench::delay_sweep::report(&rows));
}
