//! Phase-coupling ablation: soft refinement vs hard patch vs reschedule.
fn main() {
    let rows = hls_bench::coupling::run(4, 2024);
    println!("Phase-coupling ablation (4 injected changes per campaign)");
    println!("{}", hls_bench::coupling::report(&rows));
}
