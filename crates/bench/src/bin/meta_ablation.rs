//! Meta-schedule sensitivity study.
fn main() {
    let resources = hls_ir::ResourceSet::classic(2, 2);
    let rows = hls_bench::meta_ablation::run(&resources, 50);
    println!("Meta-schedule ablation (2 ALU, 2 MUL; 50 random orders)");
    println!("{}", hls_bench::meta_ablation::report(&rows));
}
