fn main() {
    let sizes = [500, 1000, 2000, 5000];
    let points = hls_bench::complexity::run(&sizes, 0);
    for p in &points {
        println!("V={} E={} threaded_us={}", p.ops, p.edges, p.threaded_us);
    }
}
