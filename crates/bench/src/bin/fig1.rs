//! Regenerates the paper's Figure 1 walkthrough (motivating example).
fn main() {
    let measured = hls_bench::fig1::run();
    println!("Figure 1 — phase coupling on the motivating example");
    println!("{}", hls_bench::fig1::report(&measured));
}
