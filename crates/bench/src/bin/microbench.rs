//! Hot-path micro-benchmark driver (BENCH_7).
//!
//! Prints a component table (select / commit per-op cost, `ReachIndex`
//! probe throughput, word-vs-scalar extremum kernels, arena
//! `reset_to`-vs-clone, portfolio wall with and without run reuse),
//! re-runs the single-threaded `schedule_all` sweep, and emits
//! `BENCH_7.json` next to the baseline constants measured at the
//! pre-PR commit.
//!
//! Usage: `microbench [--quick] [--check PATH] [OUTPUT_PATH]`
//!
//! * `--quick` — CI smoke sizes (the JSON carries `"quick": true` so
//!   it is never mistaken for a trajectory artifact);
//! * `--check PATH` — regression gate: measures the 100k-op
//!   single-threaded wall (best of 3) and exits non-zero if it exceeds
//!   the committed artifact's `"wall_100k_us"` by more than 15 %.

use hls_bench::complexity::scaling_sweep;
use hls_bench::microbench::{
    bench_arena, bench_kernels, bench_portfolio_wall, bench_probes, bench_select_commit,
};
use std::fmt::Write as _;

/// Pre-PR baseline: `bench_json` full sweep at commit 8582b1c
/// ("Partition-parallel scheduling…"), min of 3 runs on the same
/// 1-vCPU shared Xeon 2.1 GHz dev host that produced the committed
/// `BENCH_7.json`. Microseconds of `schedule_all` wall per size.
const BASELINE_SWEEP_US: &[(usize, u128)] = &[(1000, 3058), (10000, 36230), (100000, 344120)];

/// CI regression gate headroom over the committed artifact.
const CHECK_TOLERANCE: f64 = 1.15;

fn main() {
    let mut quick = false;
    let mut check: Option<String> = None;
    let mut out_path = "BENCH_7.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--check" {
            check = Some(args.next().expect("--check takes the committed artifact path"));
        } else {
            out_path = arg;
        }
    }

    if let Some(path) = check {
        run_check(&path);
        return;
    }

    // Warm the process so the first timed scenario is not inflated.
    let _ = scaling_sweep(&[256], 0);

    let (sc_ops, probe_ops, wall_sizes): (usize, usize, Vec<usize>) = if quick {
        (4_000, 4_000, vec![500, 1000, 2000])
    } else {
        (20_000, 20_000, vec![1000, 10000, 100000])
    };

    println!("== select / commit (layered DAG, {sc_ops} ops, mid-run state) ==");
    let (select, pair) = bench_select_commit(sc_ops);
    println!("  select        : {:8.0} ns/op (median {:.0})", select.min_ns, select.median_ns);
    println!("  select+commit : {:8.0} ns/op (median {:.0})", pair.min_ns, pair.median_ns);

    println!("== ReachIndex probes ({probe_ops} ops) ==");
    let (pp, sp) = bench_probes(probe_ops);
    let pp_mops = pp.ops_per_sec() / 1e6;
    let sp_mops = sp.ops_per_sec() / 1e6;
    println!("  pair probe    : {pp_mops:8.1} Mops/s ({:.1} ns)", pp.min_ns);
    println!("  set probe     : {sp_mops:8.1} Mops/s ({:.1} ns)", sp.min_ns);
    let k = bench_kernels(probe_ops);
    println!("== min_into kernels ({} lanes/row) ==", k.lanes);
    println!(
        "  converged     : {:8.3} ns/lane word vs {:.3} scalar",
        k.word_converged_ns, k.scalar_converged_ns
    );
    println!(
        "  churning      : {:8.3} ns/lane word vs {:.3} scalar",
        k.word_churn_ns, k.scalar_churn_ns
    );
    println!(
        "  any_le (false): {:8.3} ns/lane word vs {:.3} scalar",
        k.any_le_word_ns, k.any_le_scalar_ns
    );

    println!("== arena (fully scheduled {sc_ops}-op state) ==");
    let (reset, clone) = bench_arena(sc_ops);
    println!("  reset_to      : {:8.0} us", reset.min_ns / 1e3);
    println!("  clone         : {:8.0} us", clone.min_ns / 1e3);

    let (pf_ops, pf_threads, pf_reps) = if quick { (300, 2, 1) } else { (2000, 4, 2) };
    println!("== portfolio wall ({pf_ops} ops, {pf_threads} threads) ==");
    let (pf_arena_us, pf_clone_us) = bench_portfolio_wall(pf_ops, pf_threads, pf_reps);
    println!("  arena reuse   : {:8} us", pf_arena_us);
    println!("  clone-per-run : {:8} us", pf_clone_us);

    println!("== single-threaded schedule_all sweep ==");
    let points = scaling_sweep(&wall_sizes, 0);
    for p in &points {
        let before = BASELINE_SWEEP_US.iter().find(|(n, _)| *n == p.ops);
        match before {
            Some((_, b)) => println!(
                "  {:>7} ops: {:>8} us (pre-PR {:>8} us, {:+.1} %)",
                p.ops,
                p.opt_us,
                b,
                (p.opt_us as f64 / *b as f64 - 1.0) * 100.0
            ),
            None => println!("  {:>7} ops: {:>8} us", p.ops, p.opt_us),
        }
    }
    let wall_100k = points.iter().find(|p| p.ops == 100000).map(|p| p.opt_us);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_7\",");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(
        json,
        "  \"subject\": \"hot-path micro-benchmarks: select/commit per-op cost, ReachIndex probe throughput, word-parallel extremum kernels, arena reuse, portfolio wall\","
    );
    let _ = writeln!(
        json,
        "  \"machine\": \"1 vCPU shared Xeon 2.1 GHz dev container; min-of-N sampling, warmup discarded\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"targets\": {{\"wall_100k_us\": 150000, \"probe_mops\": 5.0}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline\": {{\"provenance\": \"bench_json full sweep at commit 8582b1c, min of 3, same host\", \"sweep_us\": [[1000, 3058], [10000, 36230], [100000, 344120]]}},"
    );
    let _ = writeln!(json, "  \"select_ns_per_op\": {:.1},", select.min_ns);
    let _ = writeln!(json, "  \"select_commit_ns_per_op\": {:.1},", pair.min_ns);
    let _ = writeln!(json, "  \"pair_probe_mops\": {pp_mops:.2},");
    let _ = writeln!(json, "  \"set_probe_mops\": {sp_mops:.2},");
    let _ = writeln!(
        json,
        "  \"kernel_min_into\": {{\"lanes\": {}, \"word_converged_ns_per_lane\": {:.3}, \"scalar_converged_ns_per_lane\": {:.3}, \"word_churn_ns_per_lane\": {:.3}, \"scalar_churn_ns_per_lane\": {:.3}}},",
        k.lanes, k.word_converged_ns, k.scalar_converged_ns, k.word_churn_ns, k.scalar_churn_ns
    );
    let _ = writeln!(
        json,
        "  \"kernel_any_le\": {{\"word_ns_per_lane\": {:.3}, \"scalar_ns_per_lane\": {:.3}}},",
        k.any_le_word_ns, k.any_le_scalar_ns
    );
    let _ = writeln!(json, "  \"arena_reset_us\": {:.1},", reset.min_ns / 1e3);
    let _ = writeln!(json, "  \"template_clone_us\": {:.1},", clone.min_ns / 1e3);
    let _ = writeln!(json, "  \"portfolio_wall_arena_us\": {pf_arena_us},");
    let _ = writeln!(json, "  \"portfolio_wall_clone_us\": {pf_clone_us},");
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(json, "    {{\"ops\": {}, \"wall_us\": {}}}{comma}", p.ops, p.opt_us);
    }
    json.push_str("  ],\n");
    match wall_100k {
        Some(w) => {
            let _ = writeln!(json, "  \"wall_100k_us\": {w},");
        }
        None => {
            let _ = writeln!(json, "  \"wall_100k_us\": null,");
        }
    }
    let _ = writeln!(
        json,
        "  \"notes\": \"The 150 ms 100k-op target is not met on this host (best observed ~310 ms vs the 344 ms pre-PR baseline, ~10 % faster); the remaining wall is split roughly evenly between the window scan and the sdist cascade, both memory-bound here. Probe throughput clears its 5 Mops target by >10x. Kernel split: the early-exit any_le walk is where word-parallelism pays (~2x over the scalar loop, per-probe hot path); for the build-time min/max row merges LLVM's autovectorized simple loop beats the 4-lane word walk on x86_64 — recorded here, acceptable because index build is a one-time cost. Portfolio wall: arena reuse is wall-neutral at this scale (the pristine-template clone it replaces costs ~5 us against multi-ms runs); its benefit is zero steady-state allocation per checkout, not wall time. See EXPERIMENTS.md (BENCH_7).\""
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("writing the bench JSON must succeed");
    println!("wrote {out_path}");
}

/// Regression gate: best-of-3 100k-op wall vs the committed artifact.
fn run_check(artifact: &str) {
    let committed = std::fs::read_to_string(artifact)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {artifact}: {e}"));
    let committed_us: u128 = committed
        .lines()
        .find_map(|l| {
            let l = l.trim();
            l.strip_prefix("\"wall_100k_us\":")
                .map(|v| v.trim_end_matches(',').trim())
        })
        .and_then(|v| v.parse().ok())
        .expect("committed artifact must carry a numeric wall_100k_us");
    let _ = scaling_sweep(&[256], 0);
    let mut best = u128::MAX;
    for _ in 0..3 {
        let points = scaling_sweep(&[100000], 0);
        best = best.min(points[0].opt_us);
    }
    let limit = (committed_us as f64 * CHECK_TOLERANCE) as u128;
    println!(
        "100k-op wall: measured best-of-3 {best} us, committed {committed_us} us, limit {limit} us"
    );
    if best > limit {
        eprintln!("FAIL: 100k-op single-threaded wall regressed more than 15% vs the committed BENCH_7 artifact");
        std::process::exit(1);
    }
    println!("OK: within the 15% regression envelope");
}
