//! Machine-readable perf + memory trajectory for the scheduler hot path.
//!
//! Runs the Theorem 3 scaling study (`hls_bench::complexity`) with the
//! byte-counting allocator installed and emits `BENCH_2.json`: per-size
//! `schedule_all` wall times for the optimized scheduler and the frozen
//! pre-refactor seed, per-size peak heap growth of the optimized engine
//! (the chain-cover reachability index replaces the seed's two dense
//! `Θ(|V|²)`-bit closures, so memory must scale sub-quadratically), the
//! fitted wall-time exponent, and the headline speedup. Earlier
//! trajectory points live in `BENCH_1.json`; `EXPERIMENTS.md` records
//! the interpretation.
//!
//! Usage: `bench_json [--quick] [--sizes N,N,..] [OUTPUT_PATH]`
//! — `--quick` shrinks the sweep for CI smoke runs (the JSON then
//! carries `"quick": true` so it is never mistaken for a trajectory
//! point); `--sizes` overrides the sweep points (used by the large-V CI
//! smoke job).

use hls_bench::complexity::{fit_exponent, report_scaling, scaling_sweep};
use hls_bench::mem::CountingAlloc;
use std::fmt::Write as _;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The seed is ~100–2000× slower than the optimized engine across this
/// range; above the cutoff only the optimized engine is timed.
const REFERENCE_CUTOFF: usize = 5000;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_2.json".to_string();
    let mut sizes: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--sizes" {
            let list = args.next().expect("--sizes takes a comma-separated list");
            sizes = Some(
                list.split(',')
                    .map(|s| s.trim().parse().expect("--sizes entries must be integers"))
                    .collect(),
            );
        } else {
            out_path = arg;
        }
    }

    let sizes: Vec<usize> = match (sizes, quick) {
        (Some(s), _) => s,
        (None, true) => vec![500, 1000, 2000],
        (None, false) => vec![500, 1000, 2000, 5000, 10000, 20000, 50000, 100000],
    };
    let cutoff = if quick { 1000 } else { REFERENCE_CUTOFF };

    // Warm the process (code paging, allocator arenas) so the first
    // measured point is not inflated relative to the rest of the fit.
    let _ = scaling_sweep(&[256], 0);

    let points = scaling_sweep(&sizes, cutoff);
    print!("{}", report_scaling(&points));

    let opt: Vec<(usize, u128)> = points.iter().map(|p| (p.ops, p.opt_us)).collect();
    let slope = fit_exponent(&opt);
    let speedup_at = |n: usize| -> Option<f64> {
        points
            .iter()
            .find(|p| p.ops == n)
            .and_then(|p| p.ref_us.map(|r| r as f64 / p.opt_us.max(1) as f64))
    };
    let headline = speedup_at(if quick { 1000 } else { 5000 });
    let max_point = points.iter().max_by_key(|p| p.ops);
    println!("fitted scaling exponent (optimized): {slope:.3}");
    if let Some(s) = headline {
        println!("speedup vs pre-refactor seed at the headline size: {s:.1}x");
    }
    if let Some(p) = max_point {
        let dense_mb = (p.ops as f64 * p.ops as f64 * 2.0 / 8.0) / (1024.0 * 1024.0);
        println!(
            "peak heap growth at |V|={}: {:.1} MB (dense closure pair alone would need {:.0} MB)",
            p.ops,
            p.peak_bytes as f64 / (1024.0 * 1024.0),
            dense_mb,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_2\",");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(
        json,
        "  \"subject\": \"schedule_all wall time + peak heap growth; chain-cover reachability index vs the dense closures (and the frozen seed)\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": \"layered DFG, bounded mean in-degree ~6, ResourceSet::classic(2,2), topological meta order\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"fitted_exponent_optimized\": {slope:.4},");
    match headline {
        Some(s) => {
            let _ = writeln!(json, "  \"headline_speedup\": {s:.2},");
        }
        None => {
            let _ = writeln!(json, "  \"headline_speedup\": null,");
        }
    }
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let refs = p.ref_us.map_or("null".to_string(), |v| v.to_string());
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"ops\": {}, \"edges\": {}, \"optimized_us\": {}, \"reference_us\": {}, \"diameter\": {}, \"peak_alloc_bytes\": {}}}{comma}",
            p.ops, p.edges, p.opt_us, refs, p.diameter, p.peak_bytes
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("writing the bench JSON must succeed");
    println!("wrote {out_path}");
}
