//! Machine-readable perf trajectory for the scheduler hot path.
//!
//! Runs the Theorem 3 scaling study (`hls_bench::complexity`) and emits
//! `BENCH_1.json`: per-size `schedule_all` wall times for the optimized
//! scheduler and the frozen pre-refactor seed, the measured speedup at
//! `|V| = 5000`, and the fitted scaling exponent of the optimized
//! engine. Future PRs append `BENCH_<n>.json` files to track the
//! trajectory; `EXPERIMENTS.md` records the interpretation.
//!
//! Usage: `bench_json [--quick] [OUTPUT_PATH]` — `--quick` shrinks the
//! sweep for CI smoke runs (the JSON then carries `"quick": true` so it
//! is never mistaken for a trajectory point).

use hls_bench::complexity::{fit_exponent, report_scaling, scaling_sweep};
use std::fmt::Write as _;

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_1.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }

    let (sizes, cutoff): (&[usize], usize) = if quick {
        (&[500, 1000, 2000], 1000)
    } else {
        (&[500, 1000, 2000, 5000, 10000, 20000], 5000)
    };

    let points = scaling_sweep(sizes, cutoff);
    print!("{}", report_scaling(&points));

    let opt: Vec<(usize, u128)> = points.iter().map(|p| (p.ops, p.opt_us)).collect();
    let slope = fit_exponent(&opt);
    let speedup_at = |n: usize| -> Option<f64> {
        points
            .iter()
            .find(|p| p.ops == n)
            .and_then(|p| p.ref_us.map(|r| r as f64 / p.opt_us.max(1) as f64))
    };
    let headline = speedup_at(if quick { 1000 } else { 5000 });
    println!("fitted scaling exponent (optimized): {slope:.3}");
    if let Some(s) = headline {
        println!("speedup vs pre-refactor seed at the headline size: {s:.1}x");
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"BENCH_1\",");
    let _ = writeln!(json, "  \"pr\": 1,");
    let _ = writeln!(
        json,
        "  \"subject\": \"schedule_all wall time, optimized ThreadedScheduler vs frozen seed (ReferenceScheduler)\","
    );
    let _ = writeln!(
        json,
        "  \"workload\": \"layered DFG, bounded mean in-degree ~6, ResourceSet::classic(2,2), topological meta order\","
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"fitted_exponent_optimized\": {slope:.4},");
    match headline {
        Some(s) => {
            let _ = writeln!(json, "  \"headline_speedup\": {s:.2},");
        }
        None => {
            let _ = writeln!(json, "  \"headline_speedup\": null,");
        }
    }
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let refs = p.ref_us.map_or("null".to_string(), |v| v.to_string());
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"ops\": {}, \"edges\": {}, \"optimized_us\": {}, \"reference_us\": {}, \"diameter\": {}}}{comma}",
            p.ops, p.edges, p.opt_us, refs, p.diameter
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the bench JSON must succeed");
    println!("wrote {out_path}");
}
