//! BENCH_5: the scheduler-as-a-service load study.
//!
//! Boots an in-process daemon, estimates its capacity from a
//! sequential warmup, then drives an **open-loop** generator — send
//! times are fixed by the offered rate, not by completions, so
//! overload actually overloads — at 0.5×, 1× and 2× the estimated
//! capacity. Reported per point: schedules/sec achieved, client-side
//! p50/p99 latency of *completed* requests, and the shed rate. The
//! overload point is the contract check: the daemon must shed with
//! typed rejections while the requests it does accept keep a bounded
//! p99 — not buffer without bound and time everything out.
//!
//! A second study measures the schedule cache: server-side service
//! time of a cold submission vs an exact resubmission (hit) vs an
//! ECO-edited resubmission replayed incrementally (eco).

use hls_ir::{canon, generate, textfmt, OpKind};
use hls_serve::{
    BindAddr, CacheStatus, Client, ClientError, RejectKind, RequestOpts, ServeConfig, Server,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One offered-rate point of the open-loop sweep.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Offered rate as a multiple of estimated capacity.
    pub rate_mult: f64,
    /// Offered rate in requests/sec.
    pub offered_rps: f64,
    /// Requests sent.
    pub sent: usize,
    /// Requests answered `OK`.
    pub completed: usize,
    /// Requests shed with a typed retryable rejection (queue or
    /// connection table full).
    pub shed: usize,
    /// Requests rejected with `timeout` (deadline expired).
    pub timeouts: usize,
    /// Other failures (should be 0).
    pub errors: usize,
    /// Median client-observed latency of completed requests, µs.
    pub p50_us: u64,
    /// 99th-percentile client-observed latency of completed
    /// requests, µs.
    pub p99_us: u64,
    /// Completed requests per second of wall time.
    pub achieved_rps: f64,
}

impl LoadPoint {
    /// Shed fraction of all sent requests.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }
}

/// The cache fast-path study.
#[derive(Clone, Copy, Debug)]
pub struct CacheStudy {
    /// Operation count of the studied graph.
    pub ops: usize,
    /// Server-side service time of the cold submission, µs.
    pub cold_us: u64,
    /// Server-side service time of the exact resubmission, µs.
    pub hit_us: u64,
    /// Server-side service time of the ECO-delta resubmission, µs.
    pub eco_us: u64,
}

impl CacheStudy {
    /// Cold time over hit time.
    pub fn hit_speedup(&self) -> f64 {
        self.cold_us as f64 / self.hit_us.max(1) as f64
    }

    /// Cold time over ECO-replay time.
    pub fn eco_speedup(&self) -> f64 {
        self.cold_us as f64 / self.eco_us.max(1) as f64
    }
}

/// The whole BENCH_5 result.
#[derive(Clone, Debug)]
pub struct LoadStudy {
    /// Worker threads of the daemon under test.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Mean service time measured by the warmup, µs.
    pub warmup_mean_us: u64,
    /// Estimated capacity (workers / mean service time), req/s.
    pub capacity_rps: f64,
    /// Per-request deadline used by the sweep, ms.
    pub deadline_ms: u64,
    /// The 0.5× / 1× / 2× points.
    pub points: Vec<LoadPoint>,
    /// The cache study.
    pub cache: CacheStudy,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The request corpus: distinct mid-size DAGs, pre-serialized.
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let ops = 60 + (i % 7) * 12;
            textfmt::to_text(&generate::stress_dag(0xB5_0000 + i as u64, ops))
        })
        .collect()
}

fn serve_config(workers: usize) -> ServeConfig {
    let mut cfg = ServeConfig {
        workers,
        queue_capacity: workers * 2,
        max_connections: 256,
        ..ServeConfig::default()
    };
    // Workers are the parallelism; a portfolio fanning out to every
    // core per request would just thrash under load.
    cfg.flow.portfolio = Some(hls_search::PortfolioConfig {
        threads: 2,
        ..Default::default()
    });
    cfg
}

/// Sequential warmup: measures mean service time (server-reported)
/// and primes code paths.
fn estimate_capacity(addr: &BindAddr, texts: &[String], workers: usize) -> (u64, f64) {
    let mut c = Client::connect(addr).expect("warmup connect");
    let mut total_us = 0u64;
    let mut n = 0u64;
    for text in texts {
        let a = c
            .schedule(
                text,
                &RequestOpts {
                    nocache: true,
                    deadline: Some(Duration::from_secs(10)),
                    ..RequestOpts::default()
                },
            )
            .expect("warmup request");
        total_us += a.micros.max(1);
        n += 1;
    }
    let mean_us = (total_us / n.max(1)).max(1);
    let capacity = workers as f64 / (mean_us as f64 / 1e6);
    (mean_us, capacity)
}

/// One open-loop point: `senders` client threads pull fire slots from
/// a shared schedule; each slot fires at `start + i/rate` regardless
/// of how previous requests fared.
fn run_point(
    addr: &BindAddr,
    texts: &[String],
    rate_mult: f64,
    offered_rps: f64,
    total: usize,
    deadline: Duration,
) -> LoadPoint {
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(total));
    let counts = [(); 4].map(|()| AtomicUsize::new(0));
    let [completed, shed, timeouts, errors] = &counts;
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let senders = 32usize;
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..senders {
            scope.spawn(|| {
                // One persistent connection per sender; a send error
                // reconnects (the server may have closed on us).
                let mut conn: Option<Client> = None;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    if slot >= total {
                        return;
                    }
                    let fire_at = start + interval.mul_f64(slot as f64);
                    if let Some(wait) = fire_at.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let text = &texts[slot % texts.len()];
                    let opts = RequestOpts {
                        nocache: true,
                        deadline: Some(deadline),
                        ..RequestOpts::default()
                    };
                    let sent_at = Instant::now();
                    let outcome = match conn.as_mut() {
                        Some(c) => c.schedule(text, &opts),
                        None => match Client::connect(addr) {
                            Ok(mut c) => {
                                let r = c.schedule(text, &opts);
                                conn = Some(c);
                                r
                            }
                            Err(e) => Err(ClientError::Io(e)),
                        },
                    };
                    match outcome {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            let us = sent_at.elapsed().as_micros() as u64;
                            latencies.lock().unwrap().push(us);
                        }
                        Err(ClientError::Rejected(r)) => match r.kind {
                            RejectKind::Overloaded | RejectKind::Draining => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            RejectKind::Timeout => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            conn = None;
                        }
                    }
                }
            });
        }
    });

    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let done = completed.load(Ordering::Relaxed);
    LoadPoint {
        rate_mult,
        offered_rps,
        sent: total,
        completed: done,
        shed: shed.load(Ordering::Relaxed),
        timeouts: timeouts.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        achieved_rps: done as f64 / wall,
    }
}

/// The cache study: cold vs hit vs ECO replay on a large graph.
fn cache_study(addr: &BindAddr, quick: bool) -> CacheStudy {
    let ops = if quick { 800 } else { 1000 };
    let base = generate::stress_dag(0xEC0_CACE, ops);
    let base_hash = canon::graph_hash(&base);
    let text = textfmt::to_text(&base);
    let slow = RequestOpts {
        deadline: Some(Duration::from_secs(30)),
        ..RequestOpts::default()
    };

    let mut c = Client::connect(addr).expect("cache-study connect");
    let cold = c.schedule(&text, &slow).expect("cold submission");
    assert_eq!(cold.cache, CacheStatus::Miss, "first submission must miss");

    let hit = c.schedule(&text, &slow).expect("resubmission");
    assert_eq!(hit.cache, CacheStatus::Hit, "resubmission must hit");

    // The ECO: a few late ops hung off existing results.
    let mut eco = base.clone();
    let tail = hls_ir::OpId::from_index(ops - 1);
    let a = eco.add_op(OpKind::Add, 1, "eco_a");
    eco.add_dep_edge(tail, a, 0).expect("eco edge");
    let b = eco.add_op(OpKind::Mul, 2, "eco_b");
    eco.add_dep_edge(a, b, 0).expect("eco edge");
    let d = eco.add_op(OpKind::Sub, 1, "eco_c");
    eco.add_dep_edge(b, d, 0).expect("eco edge");
    let eco_answer = c
        .schedule(
            &textfmt::to_text(&eco),
            &RequestOpts {
                base: Some(base_hash),
                ..slow
            },
        )
        .expect("eco submission");
    assert_eq!(
        eco_answer.cache,
        CacheStatus::Eco,
        "ECO resubmission must replay incrementally"
    );

    CacheStudy {
        ops,
        cold_us: cold.micros.max(1),
        hit_us: hit.micros.max(1),
        eco_us: eco_answer.micros.max(1),
    }
}

/// Runs the whole study against a fresh in-process daemon.
pub fn run_load_study(quick: bool) -> LoadStudy {
    let workers = std::thread::available_parallelism()
        .map_or(2, |n| n.get())
        .clamp(2, 4);
    let cfg = serve_config(workers);
    let queue_capacity = cfg.queue_capacity;
    let server =
        Server::start(&BindAddr::Tcp("127.0.0.1:0".into()), cfg).expect("bind load-study server");
    let addr = server.addr().clone();

    let texts = corpus(if quick { 12 } else { 48 });
    let (warmup_mean_us, capacity_rps) = estimate_capacity(&addr, &texts, workers);

    // The deadline bounds tail latency: generous next to the mean
    // service time, small next to the sweep duration.
    let deadline = Duration::from_micros((warmup_mean_us * 20).clamp(200_000, 5_000_000));
    let window_s = if quick { 2.0 } else { 8.0 };

    let points = [0.5, 1.0, 2.0]
        .into_iter()
        .map(|mult| {
            let offered = (capacity_rps * mult).max(1.0);
            let total = (offered * window_s).ceil() as usize;
            run_point(&addr, &texts, mult, offered, total, deadline)
        })
        .collect();

    let cache = cache_study(&addr, quick);
    server.shutdown(Duration::from_secs(10));

    LoadStudy {
        workers,
        queue_capacity,
        warmup_mean_us,
        capacity_rps,
        deadline_ms: deadline.as_millis() as u64,
        points,
        cache,
    }
}

/// Renders the study as the usual aligned table.
pub fn load_report(study: &LoadStudy) -> String {
    let header: Vec<String> = [
        "rate", "offered/s", "sent", "ok", "shed", "timeout", "err", "p50 ms", "p99 ms",
        "achieved/s",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}x", p.rate_mult),
                format!("{:.1}", p.offered_rps),
                p.sent.to_string(),
                p.completed.to_string(),
                format!("{} ({:.0}%)", p.shed, p.shed_rate() * 100.0),
                p.timeouts.to_string(),
                p.errors.to_string(),
                format!("{:.2}", p.p50_us as f64 / 1000.0),
                format!("{:.2}", p.p99_us as f64 / 1000.0),
                format!("{:.1}", p.achieved_rps),
            ]
        })
        .collect();
    let mut out = crate::render_table(&header, &rows);
    out.push_str(&format!(
        "\ncache study ({} ops): cold {:.1} ms, hit {:.3} ms ({:.0}x), eco replay {:.1} ms ({:.1}x)\n",
        study.cache.ops,
        study.cache.cold_us as f64 / 1000.0,
        study.cache.hit_us as f64 / 1000.0,
        study.cache.hit_speedup(),
        study.cache.eco_us as f64 / 1000.0,
        study.cache.eco_speedup(),
    ));
    out
}
