//! BENCH_4: the loop-pipelining study.
//!
//! Runs the modulo portfolio over the classic loop kernels
//! ([`hls_ir::bench_graphs::loops`]) plus seeded random cyclic
//! kernels, across a grid of resource allocations, and records per
//! cell the certified bound (`ResMII`, `RecMII`, `MII`), the achieved
//! II, the gap `II − MII`, the fill latency and the wall time. Every
//! winning schedule is re-validated through
//! `hls_ir::schedule::check_modulo` before it is counted.

use hls_ir::schedule::check_modulo;
use hls_ir::{bench_graphs, generate, PrecedenceGraph, ResourceClass, ResourceSet};
use hls_search::{run_modulo_portfolio, PipelineConfig};
use std::time::Instant;

/// One kernel × allocation cell of the study.
#[derive(Clone, Debug)]
pub struct ModuloCell {
    /// Kernel name.
    pub kernel: String,
    /// Allocation, in the paper's display form.
    pub resources: String,
    /// Operations in the kernel.
    pub ops: usize,
    /// Resource component of the bound.
    pub res_mii: u64,
    /// Recurrence component of the bound.
    pub rec_mii: u64,
    /// The certified bound `max(ResMII, RecMII)`.
    pub mii: u64,
    /// Achieved initiation interval.
    pub ii: u64,
    /// `ii − mii` (0 = provably throughput-optimal).
    pub gap: u64,
    /// Single-iteration latency of the winner.
    pub latency: u64,
    /// Portfolio wall time for this cell, microseconds.
    pub wall_us: u64,
    /// Winning candidate tag.
    pub winner: String,
}

/// The allocation grid of the study.
fn allocations() -> Vec<ResourceSet> {
    vec![
        ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1),
        ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1),
        ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1),
        ResourceSet::classic(2, 3).with(ResourceClass::MemPort, 2),
    ]
}

/// The kernels of the study: the named loop benchmarks plus `extra`
/// seeded random cyclic kernels.
pub fn kernels(extra: usize) -> Vec<(String, PrecedenceGraph)> {
    let mut out: Vec<(String, PrecedenceGraph)> = bench_graphs::loops()
        .into_iter()
        .map(|(n, g)| (n.to_string(), g))
        .collect();
    for i in 0..extra {
        let cfg = generate::CyclicConfig {
            ops: 10 + 4 * i,
            back_edges: 2 + i,
            ..generate::CyclicConfig::default()
        };
        let g = generate::cyclic_kernel(0xB4 + i as u64, &cfg);
        out.push((format!("rand{}", i + 1), g));
    }
    out
}

/// Runs the full grid with `threads` portfolio workers.
///
/// # Panics
///
/// Panics if any cell fails to schedule or its winner fails
/// `check_modulo` — both are correctness bugs the bench must surface.
pub fn modulo_grid(extra_kernels: usize, threads: usize) -> Vec<ModuloCell> {
    let mut cells = Vec::new();
    for (name, g) in kernels(extra_kernels) {
        for r in allocations() {
            let cfg = PipelineConfig {
                threads,
                ..PipelineConfig::default()
            };
            let t0 = Instant::now();
            let out = run_modulo_portfolio(&g, &r, &cfg)
                .unwrap_or_else(|e| panic!("{name} under {r}: {e}"));
            let wall_us = t0.elapsed().as_micros() as u64;
            check_modulo(&g, &r, &out.schedule)
                .unwrap_or_else(|e| panic!("{name} under {r}: invalid winner: {e}"));
            cells.push(ModuloCell {
                kernel: name.clone(),
                resources: r.to_string(),
                ops: g.len(),
                res_mii: out.res_mii,
                rec_mii: out.rec_mii,
                mii: out.mii,
                ii: out.ii,
                gap: out.ii - out.mii,
                latency: out.latency,
                wall_us,
                winner: out.winner_name.clone(),
            });
        }
    }
    cells
}

/// Renders the study as a table.
pub fn modulo_report(cells: &[ModuloCell]) -> String {
    let header: Vec<String> = [
        "kernel", "ops", "resources", "ResMII", "RecMII", "MII", "II", "gap", "latency",
        "wall_us", "winner",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kernel.clone(),
                c.ops.to_string(),
                c.resources.clone(),
                c.res_mii.to_string(),
                c.rec_mii.to_string(),
                c.mii.to_string(),
                c.ii.to_string(),
                c.gap.to_string(),
                c.latency.to_string(),
                c.wall_us.to_string(),
                c.winner.clone(),
            ]
        })
        .collect();
    crate::render_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_kernels_times_allocations_and_mostly_meets_mii() {
        let cells = modulo_grid(1, 2);
        assert_eq!(cells.len(), 5 * 4);
        // Acceptance: achieved II equals the certified MII on a
        // majority of cells.
        let tight = cells.iter().filter(|c| c.gap == 0).count();
        assert!(
            tight * 2 > cells.len(),
            "II = MII on only {tight}/{} cells",
            cells.len()
        );
        for c in &cells {
            assert!(c.ii >= c.mii, "II below the certified bound");
        }
    }

    #[test]
    fn report_renders_every_cell() {
        let cells = modulo_grid(0, 1);
        let text = modulo_report(&cells);
        for c in &cells {
            assert!(text.contains(&c.kernel));
        }
    }
}
