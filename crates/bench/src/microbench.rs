//! Criterion-style micro-benchmarks for the scheduler hot path
//! (BENCH_7).
//!
//! The repo takes no external bench dependency, so this module carries
//! a small shim with the parts of criterion the studies need: warmup,
//! adaptive iteration counts, repeated samples, and min/median
//! statistics (min is the headline — on a shared vCPU every source of
//! noise only *adds* time, so the minimum is the best estimate of the
//! true cost). Each scenario isolates one hot-path ingredient:
//!
//! * [`bench_select_commit`] — `select` alone (read-only, repeatable)
//!   and the full `select`+`commit` pair, per operation, measured
//!   mid-run on a layered DAG state;
//! * [`bench_probes`] — `ReachIndex` pair probes (`reaches`), set
//!   probes (`set_reaches`/`set_reached_by` against a live
//!   [`ChainExtrema`]), and the word-parallel extremum-row kernels vs
//!   their scalar oracles;
//! * [`bench_arena`] — `ThreadedScheduler::reset_to` vs
//!   `template.clone()` on a grown state, the allocation cost the
//!   portfolio arena removes from every run after a worker's first;
//! * [`bench_portfolio_wall`] — an end-to-end portfolio race, arena
//!   reuse vs the `HLS_PORTFOLIO_NO_ARENA` clone-per-run baseline.
//!
//! `bin/microbench.rs` drives these, prints a table, emits
//! `BENCH_7.json`, and in `--check` mode gates CI on the 100k-op
//! single-threaded wall (>15 % regression vs the committed artifact
//! fails the job).

use crate::complexity::sweep_config;
use hls_ir::reach::{kernels, ChainExtrema, ReachIndex};
use hls_ir::{generate, ResourceSet};
use std::hint::black_box;
use std::time::Instant;
use threaded_sched::meta::MetaSchedule;
use threaded_sched::ThreadedScheduler;

/// One timed scenario: `iters` executions per sample, several samples,
/// nanoseconds per iteration of the minimum and median sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Scenario name as printed and serialized.
    pub name: String,
    /// Iterations per sample.
    pub iters: u64,
    /// Best (minimum) per-iteration time across samples, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time across samples, nanoseconds.
    pub median_ns: f64,
}

impl Sample {
    /// Iterations per second at the minimum sample.
    pub fn ops_per_sec(&self) -> f64 {
        if self.min_ns <= 0.0 {
            0.0
        } else {
            1e9 / self.min_ns
        }
    }
}

/// Times `f` — `iters` calls per sample, `samples` samples — and
/// reports per-call statistics. The warmup sample is discarded (first
/// touch pays paging and cache fills the steady state never sees).
pub fn time_fn<F: FnMut()>(name: &str, iters: u64, samples: usize, mut f: F) -> Sample {
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for s in 0..=samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        if s > 0 {
            // s == 0 is warmup.
            per_iter.push(ns);
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Sample {
        name: name.to_string(),
        iters,
        min_ns: per_iter.first().copied().unwrap_or(0.0),
        median_ns: per_iter[per_iter.len() / 2],
    }
}

/// A mid-run scheduling state over a layered DAG: the first
/// `scheduled` operations of the topological meta order committed, the
/// rest pending — the state shape `select`/`commit` see per operation
/// in steady state.
pub struct MidRunState {
    /// The scheduler holding the prefix state.
    pub ts: ThreadedScheduler,
    /// The remaining (unscheduled) suffix of the feed order.
    pub pending: Vec<hls_ir::OpId>,
}

/// Builds the mid-run state deterministically (seed `0x5EED ^ ops`,
/// the BENCH_2 sweep workload).
pub fn mid_run_state(ops: usize, scheduled: usize) -> MidRunState {
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let resources = ResourceSet::classic(2, 2);
    let order = MetaSchedule::Topological
        .order(&g, &resources)
        .expect("layered DAG orders");
    let mut ts = ThreadedScheduler::new(g, resources).expect("layered DAG builds");
    for &v in order.iter().take(scheduled) {
        let p = ts.select(v).expect("feasible");
        ts.commit(p, v);
    }
    MidRunState {
        ts,
        pending: order[scheduled..].to_vec(),
    }
}

/// `select` alone and the `select`+`commit` pair, nanoseconds per
/// operation, on a `ops`-op layered DAG measured from its midpoint.
pub fn bench_select_commit(ops: usize) -> (Sample, Sample) {
    // select is &self and repeatable: cycle over a window of pending
    // ops without mutating the state.
    let st = mid_run_state(ops, ops / 2);
    let window: Vec<_> = st.pending.iter().copied().take(64).collect();
    let mut i = 0usize;
    let select = time_fn("select_ns_per_op", 20_000, 5, || {
        let v = window[i & 63];
        i += 1;
        black_box(st.ts.select(v).expect("feasible"));
    });

    // The pair mutates, so each sample schedules the full order on a
    // state reset in place (the arena reset keeps the samples
    // allocation-free and identical); per-op cost is the full-schedule
    // wall divided by the op count.
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let resources = ResourceSet::classic(2, 2);
    let full_order = MetaSchedule::Topological
        .order(&g, &resources)
        .expect("orders");
    let template = ThreadedScheduler::new(g, resources).expect("builds");
    let mut ts = template.clone();
    let n = full_order.len() as f64;
    let mut pair = time_fn("select_commit_ns_per_op", 1, 3, || {
        assert!(ts.reset_to(&template), "template reuse stays legal");
        for &v in &full_order {
            let p = ts.select(v).expect("feasible");
            ts.commit(p, v);
        }
    });
    pair.min_ns /= n;
    pair.median_ns /= n;
    (select, pair)
}

/// Probe costs on a `ops`-op layered DAG: `(pair_probe, set_probe)`
/// nanoseconds per probe (invert via [`Sample::ops_per_sec`] for the
/// Mops/sec acceptance number).
pub fn bench_probes(ops: usize) -> (Sample, Sample) {
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let n = g.len();
    let reach = ReachIndex::try_build(&g).expect("fits the chain budget");
    // A half-full scheduled set: the extrema shape mid-run probes see.
    let mut ex = ChainExtrema::empty(&reach);
    for v in (0..n).step_by(2) {
        ex.insert(&reach, v);
    }

    // Deterministic index mixing (splitmix-style) so probes stride the
    // index instead of hammering one row.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next_idx = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as usize
    };

    let pair = {
        let mut acc = 0u64;
        let mut f = || {
            let u = next_idx() % n;
            let v = next_idx() % n;
            acc += reach.reaches(u, v) as u64;
        };
        let s = time_fn("pair_probe_ns", 2_000_000, 5, &mut f);
        black_box(acc);
        s
    };

    let mut state2 = 0x2545_F491_4F6C_DD1Du64;
    let mut next_idx2 = move || {
        state2 ^= state2 << 13;
        state2 ^= state2 >> 7;
        state2 ^= state2 << 17;
        state2 as usize
    };
    let set = {
        let mut acc = 0u64;
        let mut f = || {
            let v = next_idx2() % n;
            acc += reach.set_reaches(&ex, v) as u64;
            acc += reach.set_reached_by(&ex, v) as u64;
        };
        // Two probes per iteration; per-probe time halves below.
        let mut s = time_fn("set_probe_ns", 500_000, 5, &mut f);
        s.min_ns /= 2.0;
        s.median_ns /= 2.0;
        black_box(acc);
        s
    };

    (pair, set)
}

/// Word-vs-scalar `min_into` at the chain width of a `ops`-op index,
/// per-lane nanoseconds in both regimes the row merges actually see.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Row width (lanes) the kernels were measured at.
    pub lanes: usize,
    /// Converged rows (`dst` already ≤ `src` everywhere): the common
    /// case once propagation is about to self-limit. Per-lane ns.
    pub word_converged_ns: f64,
    /// Converged rows through the scalar oracle.
    pub scalar_converged_ns: f64,
    /// Churning rows (every other lane shrinks each call): the front
    /// of a propagation wave. Per-lane ns, restore cost subtracted.
    pub word_churn_ns: f64,
    /// Churning rows through the scalar oracle.
    pub scalar_churn_ns: f64,
    /// `any_le` on all-false rows (the full-walk worst case every
    /// "no" probe pays) — the word walk. Per-lane ns.
    pub any_le_word_ns: f64,
    /// `any_le` all-false rows through the scalar oracle.
    pub any_le_scalar_ns: f64,
}

/// Measures [`KernelReport`] — both kernels, both regimes.
pub fn bench_kernels(ops: usize) -> KernelReport {
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let reach = ReachIndex::try_build(&g).expect("fits the chain budget");
    let lanes = reach.chain_count();
    let lf = lanes as f64;

    // Converged: dst is already the elementwise min, nothing changes.
    let src: Vec<u16> = (0..lanes).map(|i| (i as u16).wrapping_mul(7)).collect();
    let mut dst: Vec<u16> = src.iter().map(|&s| s.saturating_sub(1)).collect();
    let word_conv = {
        let s = time_fn("min_into_word_converged", 200_000, 5, || {
            black_box(kernels::min_into(&mut dst, &src));
        });
        s.min_ns / lf
    };
    let mut dst2 = dst.clone();
    let scalar_conv = {
        let s = time_fn("min_into_scalar_converged", 200_000, 5, || {
            black_box(kernels::min_into_scalar(&mut dst2, &src));
        });
        s.min_ns / lf
    };

    // Churn: restore dst each call, then merge a src that shrinks
    // every other lane — the data-dependent-branch case. The restore
    // cost is measured alone and subtracted.
    let pristine: Vec<u16> = vec![0x7FFF; lanes];
    let shrink: Vec<u16> = (0..lanes)
        .map(|i| if i % 2 == 0 { i as u16 } else { u16::MAX })
        .collect();
    let mut dst3 = pristine.clone();
    let restore = time_fn("row_restore", 200_000, 5, || {
        dst3.copy_from_slice(black_box(&pristine));
        black_box(&mut dst3);
    });
    let word_churn = {
        let s = time_fn("min_into_word_churn", 200_000, 5, || {
            dst3.copy_from_slice(black_box(&pristine));
            black_box(kernels::min_into(&mut dst3, &shrink));
        });
        ((s.min_ns - restore.min_ns) / lf).max(0.0)
    };
    let scalar_churn = {
        let s = time_fn("min_into_scalar_churn", 200_000, 5, || {
            dst3.copy_from_slice(black_box(&pristine));
            black_box(kernels::min_into_scalar(&mut dst3, &shrink));
        });
        ((s.min_ns - restore.min_ns) / lf).max(0.0)
    };

    // any_le worst case: every lane answers "no", the whole row is
    // walked — the shape a failed set probe pays. An early-exit loop
    // defeats autovectorization, so this is where the 4-lane word
    // walk earns its keep.
    let hi: Vec<u16> = vec![1000; lanes];
    let lo: Vec<u16> = vec![1; lanes];
    let any_word = {
        let s = time_fn("any_le_word_false", 500_000, 5, || {
            black_box(kernels::any_le(black_box(&hi), black_box(&lo)));
        });
        s.min_ns / lf
    };
    let any_scalar = {
        let s = time_fn("any_le_scalar_false", 500_000, 5, || {
            black_box(kernels::any_le_scalar(black_box(&hi), black_box(&lo)));
        });
        s.min_ns / lf
    };

    KernelReport {
        lanes,
        word_converged_ns: word_conv,
        scalar_converged_ns: scalar_conv,
        word_churn_ns: word_churn,
        scalar_churn_ns: scalar_churn,
        any_le_word_ns: any_word,
        any_le_scalar_ns: any_scalar,
    }
}

/// `reset_to` vs `clone` of a fully-scheduled `ops`-op state:
/// microseconds per pristine scheduler obtained.
pub fn bench_arena(ops: usize) -> (Sample, Sample) {
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let resources = ResourceSet::classic(2, 2);
    let order = MetaSchedule::Topological
        .order(&g, &resources)
        .expect("orders");
    let template = ThreadedScheduler::new(g, resources).expect("builds");
    // Grow a state from a *clone of the template* — `reset_to` pins
    // the shared graph core by pointer identity, so a scheduler built
    // from scratch over an equal graph would (correctly) be refused.
    let mut grown = template.clone();
    for &v in &order {
        let p = grown.select(v).expect("feasible");
        grown.commit(p, v);
    }
    let reset = time_fn("arena_reset_ns", 200, 5, || {
        assert!(grown.reset_to(&template));
        black_box(grown.scheduled_count());
    });
    let clone = time_fn("template_clone_ns", 200, 5, || {
        black_box(template.clone().scheduled_count());
    });
    (reset, clone)
}

/// End-to-end portfolio wall on a `ops`-op layered DAG, arena reuse
/// vs the clone-per-run baseline (`HLS_PORTFOLIO_NO_ARENA`), in
/// microseconds. Runs each variant `repeats` times and keeps the
/// minimum. The race result is identical either way — asserted here.
pub fn bench_portfolio_wall(ops: usize, threads: usize, repeats: usize) -> (u128, u128) {
    let g = generate::layered_dag(0x5EED ^ ops as u64, &sweep_config(ops));
    let resources = ResourceSet::classic(2, 2);
    let cfg = hls_search::portfolio::PortfolioConfig {
        threads,
        ..Default::default()
    };
    let run = |label: &str| -> (u128, u64) {
        let mut best_us = u128::MAX;
        let mut diameter = 0;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let out = hls_search::portfolio::run_portfolio(&g, &resources, &cfg)
                .unwrap_or_else(|e| panic!("portfolio ({label}) must complete: {e}"));
            best_us = best_us.min(t0.elapsed().as_micros());
            diameter = out.diameter;
        }
        (best_us, diameter)
    };
    // SAFETY-free env dance: the knob is read per checkout, and the
    // portfolio threads of one variant are joined before the next
    // variant starts, so the two variants never overlap.
    std::env::remove_var("HLS_PORTFOLIO_NO_ARENA");
    let (arena_us, d_arena) = run("arena");
    std::env::set_var("HLS_PORTFOLIO_NO_ARENA", "1");
    let (clone_us, d_clone) = run("clone-per-run");
    std::env::remove_var("HLS_PORTFOLIO_NO_ARENA");
    assert_eq!(
        d_arena, d_clone,
        "arena reuse must not change the race result"
    );
    (arena_us, clone_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_shim_reports_sane_statistics() {
        let s = time_fn("spin", 1000, 3, || {
            black_box(42u64);
        });
        assert!(s.min_ns >= 0.0);
        assert!(s.median_ns >= s.min_ns);
        assert!(s.ops_per_sec() > 0.0);
    }

    #[test]
    fn mid_run_state_splits_the_order() {
        let st = mid_run_state(400, 200);
        assert_eq!(st.ts.scheduled_count(), 200);
        assert_eq!(st.pending.len(), 200);
    }

    #[test]
    fn portfolio_wall_variants_agree_on_the_result() {
        // Smoke-sized: the assertion inside is the point.
        let (arena, clone) = bench_portfolio_wall(300, 2, 1);
        assert!(arena > 0 && clone > 0);
    }
}
