//! Delay-model sensitivity sweep (extends the paper's evaluation).
//!
//! The paper fixes the classical `mul = 2` model. This study sweeps the
//! multiplier latency and checks that the threaded-vs-list relationship
//! is not an artifact of one delay model: for every multiplier latency,
//! every benchmark and every paper meta schedule, the threaded length
//! must track the list scheduler's.

use hls_baselines::{list_schedule, Priority};
use hls_ir::{bench_graphs, DelayModel, OpKind, PrecedenceGraph, ResourceSet};
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

/// One sweep cell.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Multiplier latency in cycles.
    pub mul_delay: u64,
    /// List-scheduler length.
    pub list: u64,
    /// Threaded lengths under meta schedules 1–4.
    pub metas: [u64; 4],
}

fn with_mul_delay(g: &PrecedenceGraph, mul: u64) -> PrecedenceGraph {
    let dm = DelayModel::classic().with_mul(mul);
    let mut out = g.clone();
    for v in out.op_ids() {
        if out.kind(v) == OpKind::Mul {
            out.set_delay(v, dm.delay_of(OpKind::Mul));
        }
    }
    out
}

/// Sweeps multiplier latency 1..=`max_mul` under the given allocation.
///
/// # Panics
///
/// Panics if a benchmark fails to schedule (cannot happen with the
/// shipped set and a resource set containing ALUs and multipliers).
pub fn run(resources: &ResourceSet, max_mul: u64) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for (name, g) in bench_graphs::all() {
        for mul in 1..=max_mul {
            let g = with_mul_delay(&g, mul);
            let list = list_schedule(&g, resources, Priority::CriticalPath)
                .expect("schedulable")
                .length(&g);
            let mut metas = [0u64; 4];
            for (i, meta) in MetaSchedule::PAPER.into_iter().enumerate() {
                let order = meta.order(&g, resources).expect("valid order");
                let mut ts =
                    ThreadedScheduler::new(g.clone(), resources.clone()).expect("valid");
                ts.schedule_all(order).expect("schedulable");
                metas[i] = ts.diameter();
            }
            rows.push(SweepRow {
                benchmark: name,
                mul_delay: mul,
                list,
                metas,
            });
        }
    }
    rows
}

/// Formats the sweep table.
pub fn report(rows: &[SweepRow]) -> String {
    let header = vec![
        "BM".to_string(),
        "mul".to_string(),
        "list".to_string(),
        "meta1".to_string(),
        "meta2".to_string(),
        "meta3".to_string(),
        "meta4".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.mul_delay.to_string(),
                r.list.to_string(),
                r.metas[0].to_string(),
                r.metas[1].to_string(),
                r.metas[2].to_string(),
                r.metas[3].to_string(),
            ]
        })
        .collect();
    crate::render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_tracks_list_across_delay_models() {
        // Finding (recorded in EXPERIMENTS.md): the structured meta
        // orders stay within ~15% of the list scheduler across delay
        // models, but the plain DFS order (meta 1) drifts further as
        // multiplier latency grows — the list-based order (meta 4)
        // stays tightest.
        for row in run(&ResourceSet::classic(2, 2), 3) {
            let slack = (row.list / 5).max(2);
            for (i, &len) in row.metas.iter().enumerate() {
                assert!(
                    len.abs_diff(row.list) <= slack,
                    "{} mul={} meta{}: {} vs list {}",
                    row.benchmark,
                    row.mul_delay,
                    i + 1,
                    len,
                    row.list
                );
            }
            assert!(
                row.metas[3].abs_diff(row.list) <= 2,
                "{} mul={}: meta4 must track list closely ({} vs {})",
                row.benchmark,
                row.mul_delay,
                row.metas[3],
                row.list
            );
        }
    }

    #[test]
    fn longer_multipliers_never_shorten_schedules() {
        let rows = run(&ResourceSet::classic(2, 1), 3);
        for pair in rows.windows(2) {
            if pair[0].benchmark == pair[1].benchmark {
                assert!(pair[1].list >= pair[0].list);
            }
        }
    }
}
