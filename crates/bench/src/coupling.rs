//! Phase-coupling ablation: the cost of absorbing late design changes.
//!
//! Section 1 of the paper argues that spill code and wire delays
//! invalidate hard schedules. This study injects such changes into
//! scheduled benchmarks and compares three reactions:
//!
//! 1. **soft refinement** — schedule the new vertices into the existing
//!    threaded state (the paper's proposal);
//! 2. **hard patch** — the trivial fix: open new time steps
//!    (Figure 1(c)/(d)), always paying the full inserted delay;
//! 3. **reschedule** — run the list scheduler from scratch on the
//!    modified behavior (the expensive design-iteration the paper wants
//!    to avoid).
//!
//! Soft refinement should track the reschedule quality while touching
//! only the inserted vertices.

use hls_baselines::{list_schedule, Priority};
use hls_ir::{bench_graphs, OpId, OpKind, PrecedenceGraph, ResourceClass, ResourceSet};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;
use threaded_sched::{meta::MetaSchedule, refine, ThreadedScheduler};

/// The change injected into a scheduled design.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Change {
    /// Spill the value crossing one edge (store + load).
    Spill,
    /// One extra cycle of interconnect delay on one edge.
    WireDelay,
}

impl Change {
    fn chain(self) -> Vec<(OpKind, u64, String)> {
        match self {
            Change::Spill => vec![
                (OpKind::Store, 1, "st".to_string()),
                (OpKind::Load, 1, "ld".to_string()),
            ],
            Change::WireDelay => vec![(OpKind::WireDelay, 1, "wd".to_string())],
        }
    }

    /// Name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Change::Spill => "spill",
            Change::WireDelay => "wire-delay",
        }
    }
}

/// Result of one injection campaign on one benchmark.
#[derive(Clone, Debug)]
pub struct CouplingRow {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Injected change kind.
    pub change: Change,
    /// Number of injected changes.
    pub injections: usize,
    /// Baseline schedule length before any change.
    pub baseline: u64,
    /// Length after all changes, absorbed by soft refinement.
    pub soft: u64,
    /// Length after all changes via repeated hard patching.
    pub hard_patch: u64,
    /// Length after rescheduling the modified behavior from scratch.
    pub reschedule: u64,
}

/// Runs one campaign: schedule, then inject `count` changes on random
/// (seeded) edges, absorbing them with all three strategies.
///
/// # Panics
///
/// Panics if the benchmark cannot be scheduled under `resources` (the
/// shipped configurations always can).
pub fn campaign(
    name: &'static str,
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    change: Change,
    count: usize,
    seed: u64,
) -> CouplingRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let order = MetaSchedule::ListBased
        .order(g, resources)
        .expect("benchmark schedulable");
    let mut soft = ThreadedScheduler::new(g.clone(), resources.clone()).expect("valid");
    soft.schedule_all(order).expect("schedulable");
    let baseline = soft.diameter();

    // Hard patch track.
    let mut patch_graph = g.clone();
    let mut patch_sched = soft.extract_hard();

    for _ in 0..count {
        // Pick a random *original-behavior* edge still present in the
        // soft scheduler's working graph (the same edge must exist in the
        // patch track, which evolves in lockstep).
        let candidates: Vec<(OpId, OpId)> = soft
            .graph()
            .edges()
            .filter(|&(u, w)| patch_graph.has_edge(u, w))
            .collect();
        let &(u, w) = candidates.choose(&mut rng).expect("graphs keep edges");
        match change {
            Change::Spill => {
                refine::insert_spill(&mut soft, u, w).expect("mem port present");
            }
            Change::WireDelay => {
                refine::insert_wire_delay(&mut soft, u, w, 1).expect("edge exists");
            }
        }
        let patched = refine::patch_hard_splice(
            &patch_graph,
            &patch_sched,
            resources,
            u,
            w,
            change.chain(),
        )
        .expect("patchable");
        patch_graph = patched.graph;
        patch_sched = patched.schedule;
    }

    let reschedule = list_schedule(soft.graph(), resources, Priority::CriticalPath)
        .expect("modified behavior schedulable")
        .length(soft.graph());

    CouplingRow {
        benchmark: name,
        change,
        injections: count,
        baseline,
        soft: soft.diameter(),
        hard_patch: patch_sched.length(&patch_graph),
        reschedule,
    }
}

/// Runs spill and wire-delay campaigns over all four benchmarks.
pub fn run(count: usize, seed: u64) -> Vec<CouplingRow> {
    let resources = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
    let mut rows = Vec::new();
    for (name, g) in bench_graphs::all() {
        for change in [Change::Spill, Change::WireDelay] {
            rows.push(campaign(name, &g, &resources, change, count, seed));
        }
    }
    rows
}

/// Formats the campaign table.
pub fn report(rows: &[CouplingRow]) -> String {
    let header = vec![
        "BM".to_string(),
        "change".to_string(),
        "#".to_string(),
        "baseline".to_string(),
        "soft refine".to_string(),
        "hard patch".to_string(),
        "reschedule".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.to_string(),
                r.change.name().to_string(),
                r.injections.to_string(),
                r.baseline.to_string(),
                r.soft.to_string(),
                r.hard_patch.to_string(),
                r.reschedule.to_string(),
            ]
        })
        .collect();
    crate::render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_never_loses_to_the_hard_patch() {
        for row in run(3, 11) {
            assert!(
                row.soft <= row.hard_patch,
                "{} {}: soft {} > patch {}",
                row.benchmark,
                row.change.name(),
                row.soft,
                row.hard_patch
            );
            assert!(row.soft >= row.baseline, "Lemma 4: diameter is monotone");
        }
    }

    #[test]
    fn wire_delays_are_often_absorbed_for_free() {
        let rows = run(1, 5);
        let wire: Vec<_> = rows
            .iter()
            .filter(|r| r.change == Change::WireDelay)
            .collect();
        // The hard patch always pays the inserted step; soft refinement
        // must beat or match it on every benchmark.
        assert!(wire.iter().all(|r| r.soft <= r.hard_patch));
    }
}
