//! BENCH_3: the parallel portfolio + feedback refinement study.
//!
//! Two questions, mirroring the acceptance criteria of the portfolio
//! work:
//!
//! 1. **Quality** ([`fig3_portfolio`]): on every Figure-3 benchmark ×
//!    resource configuration, is the portfolio diameter ≤ the best
//!    single paper meta schedule, and how often do the random
//!    populations or the refinement loop beat all four?
//! 2. **Cost** ([`thread_sweep`]): on the BENCH_2 layered-DFG sweep
//!    workload, what does the 8-strategy portfolio cost in wall time
//!    at 1/2/4/8 threads, against the wall time of the single winning
//!    meta schedule? The early-abort protocol (certified
//!    final-diameter lower bound vs the shared incumbent) is what
//!    keeps the portfolio near 1× even without spare cores: on the
//!    sweep workload the resource floor is tight, so every losing
//!    strategy aborts after its first scheduled operation.

use hls_ir::{bench_graphs, generate, ResourceSet};
use hls_search::{base_candidates, race, race_workers, run_portfolio, PortfolioConfig};
use std::time::Instant;
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

/// The portfolio configuration BENCH_3 uses everywhere: the default
/// 8 strategies with a fixed seed set (results must be reproducible),
/// parameterised over threads.
pub fn bench_config(threads: usize) -> PortfolioConfig {
    PortfolioConfig {
        threads,
        ..PortfolioConfig::default()
    }
}

/// One cell of the Figure-3 portfolio-quality table.
#[derive(Clone, Debug)]
pub struct Fig3Cell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Resource-configuration label.
    pub config: &'static str,
    /// Best diameter over the four paper meta schedules, run singly.
    pub best_single: u64,
    /// Name of the meta schedule achieving `best_single`.
    pub best_single_name: &'static str,
    /// Portfolio diameter before refinement.
    pub portfolio: u64,
    /// Portfolio diameter after feedback refinement.
    pub refined: u64,
    /// The certified schedule lower bound (graph diameter ∨ resource
    /// floor); `refined == lower_bound` means provably optimal.
    pub lower_bound: u64,
    /// The winning strategy's name.
    pub winner: String,
}

/// Runs the portfolio-quality study over the Figure-3 benchmarks and
/// resource configurations.
///
/// # Panics
///
/// Panics if any schedule fails (cannot happen with the shipped set).
pub fn fig3_portfolio(threads: usize) -> Vec<Fig3Cell> {
    let mut cells = Vec::new();
    for (name, g) in bench_graphs::all() {
        for (label, r) in crate::fig3::paper_configs() {
            let (best_single_name, best_single) = MetaSchedule::PAPER
                .into_iter()
                .map(|m| {
                    (m.name(), crate::fig3::threaded_length(&g, &r, m).expect("benchmark"))
                })
                .min_by_key(|&(_, d)| d)
                .expect("four metas");
            let out = run_portfolio(&g, &r, &bench_config(threads)).expect("benchmark");
            assert!(
                out.diameter <= best_single,
                "{name}/{label}: portfolio must not lose to a single meta"
            );
            cells.push(Fig3Cell {
                benchmark: name,
                config: label,
                best_single,
                best_single_name,
                portfolio: out.initial_diameter,
                refined: out.diameter,
                lower_bound: out.lower_bound,
                winner: out.winner_name,
            });
        }
    }
    cells
}

/// Formats the Figure-3 portfolio table.
pub fn fig3_report(cells: &[Fig3Cell]) -> String {
    let header = vec![
        "BM".to_string(),
        "config".to_string(),
        "best single".to_string(),
        "portfolio".to_string(),
        "refined".to_string(),
        "bound".to_string(),
        "winner".to_string(),
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.to_string(),
                c.config.to_string(),
                format!("{} ({})", c.best_single, c.best_single_name),
                c.portfolio.to_string(),
                c.refined.to_string(),
                c.lower_bound.to_string(),
                c.winner.clone(),
            ]
        })
        .collect();
    crate::render_table(&header, &rows)
}

/// One thread-count measurement of the portfolio race.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Requested thread cap.
    pub threads: usize,
    /// Workers actually spawned (`min(threads, strategies, cores)` —
    /// the race never oversubscribes physical cores).
    pub workers: usize,
    /// Wall time of the 8-strategy race, microseconds (orders are
    /// computed inside the race workers).
    pub wall_us: u128,
    /// Runs that completed.
    pub completed: usize,
    /// Runs pruned by the early-abort protocol.
    pub aborted: usize,
    /// Total operations fed across all runs, as a fraction of
    /// `strategies × |V|` — the work-conserving view of pruning.
    pub work_frac: f64,
    /// The (deterministic) winning diameter.
    pub diameter: u64,
}

/// The portfolio-cost study on one layered-DFG sweep workload.
#[derive(Clone, Debug)]
pub struct SweepStudy {
    /// Operation count of the workload.
    pub ops: usize,
    /// Per paper meta schedule: `(name, wall µs, diameter)` of a
    /// single run (order construction + schedule).
    pub singles: Vec<(&'static str, u128, u64)>,
    /// Wall time of the *quality-best* single meta — the strategy one
    /// would have to run to match the portfolio's base quality.
    pub best_single_us: u128,
    /// The race measured at each requested thread count.
    pub points: Vec<SweepPoint>,
}

/// Measures the 8-strategy portfolio race at each thread count on the
/// BENCH_2 sweep workload (`hls_bench::complexity::sweep_config`),
/// plus the single-meta baselines.
///
/// # Panics
///
/// Panics if the generated workload fails to schedule.
pub fn thread_sweep(ops: usize, thread_counts: &[usize]) -> SweepStudy {
    let resources = ResourceSet::classic(2, 2);
    let g = generate::layered_dag(0x5EED ^ ops as u64, &crate::complexity::sweep_config(ops));
    let singles: Vec<(&'static str, u128, u64)> = MetaSchedule::PAPER
        .into_iter()
        .map(|m| {
            let t0 = Instant::now();
            let order = m.order(&g, &resources).expect("generated DAG");
            let mut ts =
                ThreadedScheduler::new(g.clone(), resources.clone()).expect("valid graph");
            ts.schedule_all(order).expect("schedulable");
            (m.name(), t0.elapsed().as_micros(), ts.diameter())
        })
        .collect();
    let best_single_us = singles
        .iter()
        .min_by_key(|&&(_, us, d)| (d, us))
        .map(|&(_, us, _)| us)
        .expect("four metas");

    let candidates = base_candidates(&bench_config(1));
    let points = thread_counts
        .iter()
        .map(|&threads| {
            let t0 = Instant::now();
            let out = race(&g, &resources, &candidates, threads, None, &hls_ir::Budget::NONE)
                .expect("schedulable");
            let wall_us = t0.elapsed().as_micros();
            let win = out.best.expect("unbounded race completes");
            let completed = out.reports.iter().filter(|r| r.diameter.is_some()).count();
            let fed: usize = out.reports.iter().map(|r| r.scheduled).sum();
            SweepPoint {
                threads,
                workers: race_workers(threads, candidates.len()),
                wall_us,
                completed,
                aborted: out.reports.len() - completed,
                work_frac: fed as f64 / (candidates.len() * g.len()) as f64,
                diameter: win.diameter,
            }
        })
        .collect();

    SweepStudy {
        ops,
        singles,
        best_single_us,
        points,
    }
}

/// Formats the thread-sweep table.
pub fn sweep_report(study: &SweepStudy) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "single-meta baselines at |V|={} (name, wall us, diameter):\n",
        study.ops
    ));
    for &(name, us, d) in &study.singles {
        out.push_str(&format!("  {name:<14} {us:>10}  {d}\n"));
    }
    let header = vec![
        "threads".to_string(),
        "workers".to_string(),
        "wall (us)".to_string(),
        "vs best single".to_string(),
        "completed".to_string(),
        "aborted".to_string(),
        "work frac".to_string(),
        "diameter".to_string(),
    ];
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                p.workers.to_string(),
                p.wall_us.to_string(),
                format!("{:.2}x", p.wall_us as f64 / study.best_single_us.max(1) as f64),
                p.completed.to_string(),
                p.aborted.to_string(),
                format!("{:.3}", p.work_frac),
                p.diameter.to_string(),
            ]
        })
        .collect();
    out.push_str(&crate::render_table(&header, &rows));
    out
}

/// One row of the refinement study.
#[derive(Clone, Debug)]
pub struct RefineRow {
    /// Generator seed of the workload.
    pub seed: u64,
    /// Edge density of the random DAG.
    pub density: f64,
    /// Resource-configuration label.
    pub resources: &'static str,
    /// Portfolio diameter before refinement.
    pub base: u64,
    /// Diameter after the feedback loop.
    pub refined: u64,
    /// The certified schedule lower bound.
    pub lower_bound: u64,
    /// Refinement rounds executed.
    pub rounds: usize,
}

/// The refinement-benefit study: full portfolios (refinement on, the
/// default configuration) over unstructured random DAGs under tight
/// resources — the regime where the base portfolio leaves slack on the
/// table and cone perturbations can claw it back. Figure-3 benchmarks
/// and the layered sweep rarely refine (the base portfolio already
/// sits at or next to the certified bound there); this is where the
/// loop earns its keep.
///
/// # Panics
///
/// Panics if a workload fails to schedule.
pub fn refinement_study(max_seed: u64) -> Vec<RefineRow> {
    let dm = hls_ir::DelayModel::classic();
    let mut rows = Vec::new();
    for seed in 1..=max_seed {
        for density in [0.05f64, 0.1, 0.2] {
            for (label, r) in [
                ("1+/-,1*", ResourceSet::classic(1, 1)),
                ("2+/-,1*", ResourceSet::classic(2, 1)),
            ] {
                let g = generate::random_dag(seed, 120, density, &dm);
                let out = run_portfolio(&g, &r, &bench_config(2)).expect("schedulable");
                assert!(out.diameter <= out.initial_diameter);
                rows.push(RefineRow {
                    seed,
                    density,
                    resources: label,
                    base: out.initial_diameter,
                    refined: out.diameter,
                    lower_bound: out.lower_bound,
                    rounds: out.refine_rounds,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_cells_cover_all_benchmarks_and_never_lose() {
        let cells = fig3_portfolio(2);
        assert_eq!(cells.len(), 4 * 3);
        for c in &cells {
            assert!(c.refined <= c.portfolio);
            assert!(c.portfolio <= c.best_single);
            assert!(c.refined >= c.lower_bound);
        }
        let text = fig3_report(&cells);
        assert!(text.contains("HAL") && text.contains("portfolio"));
    }

    #[test]
    fn thread_sweep_is_deterministic_in_diameter_across_thread_counts() {
        let study = thread_sweep(400, &[1, 2]);
        assert_eq!(study.points.len(), 2);
        assert_eq!(study.points[0].diameter, study.points[1].diameter);
        assert!(study.points.iter().all(|p| p.completed >= 1));
        let text = sweep_report(&study);
        assert!(text.contains("vs best single"));
    }

    #[test]
    fn refinement_study_improves_somewhere_and_never_regresses() {
        let rows = refinement_study(4);
        assert_eq!(rows.len(), 4 * 3 * 2);
        for row in &rows {
            assert!(row.refined <= row.base);
            assert!(row.refined >= row.lower_bound);
        }
        assert!(
            rows.iter().any(|r| r.refined < r.base),
            "the feedback loop must fire on at least one tight-resource workload"
        );
    }
}
