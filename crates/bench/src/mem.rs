//! Byte-counting global allocator for memory-scaling studies.
//!
//! [`CountingAlloc`] wraps the system allocator and tracks the current
//! and peak number of live heap bytes in two process-wide atomics. It
//! is *installed* only by the binaries that want memory metrics
//! (`#[global_allocator] static A: CountingAlloc = CountingAlloc;` in
//! `bench_json`); library consumers and tests that link this module
//! without installing it simply read zeros, so the counters never
//! perturb ordinary runs.
//!
//! The counters use relaxed atomics: the studies are single-threaded,
//! and even concurrent use only risks a slightly stale peak, never a
//! torn value.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] delegating to [`System`] while counting live and
/// peak bytes. See the [module docs](self).
pub struct CountingAlloc;

impl CountingAlloc {
    fn record_alloc(size: u64) {
        let cur = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(cur, Ordering::Relaxed);
    }

    fn record_dealloc(size: u64) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: delegates allocation verbatim to `System`; the bookkeeping
// only touches atomics and never the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Account as alloc(new) then dealloc(old): a moving realloc
            // briefly holds both blocks, and the peak must see that
            // overlap (delta accounting would under-report it).
            Self::record_alloc(new_size as u64);
            Self::record_dealloc(layout.size() as u64);
        }
        p
    }
}

/// Live heap bytes right now (0 unless [`CountingAlloc`] is installed).
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`] (or process
/// start).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Restarts peak tracking from the current live size, so a subsequent
/// [`peak_bytes`] − (baseline) measures one phase in isolation.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The allocator is not installed in the test harness, so only the
    // pass-through accessors are exercised here; end-to-end counting is
    // covered by the `bench_json` binary (which installs it) in CI.
    #[test]
    fn uninstalled_counters_read_zero_and_reset_is_safe() {
        super::reset_peak();
        assert_eq!(super::current_bytes(), 0);
        assert_eq!(super::peak_bytes(), 0);
    }
}
