//! Figure 3: scheduling results of benchmarks under resource constraints.
//!
//! For each benchmark (HAL, AR, EF, FIR), each scheduler (threaded
//! scheduling under meta schedules 1–4, and the traditional list
//! scheduler) and each resource allocation (`2 ALU 2 MUL`, `4 ALU 4 MUL`,
//! `2 ALU 1 MUL`), the experiment reports the schedule length in control
//! states. The paper's claim: the threaded scheduler matches the list
//! scheduler with few exceptions.

use hls_baselines::{list_schedule, Priority};
use hls_ir::{bench_graphs, PrecedenceGraph, ResourceSet};
use threaded_sched::{meta::MetaSchedule, SchedError, ThreadedScheduler};

/// The three resource allocations of the paper's columns.
pub fn paper_configs() -> Vec<(&'static str, ResourceSet)> {
    vec![
        ("2+/-,2*", ResourceSet::classic(2, 2)),
        ("4+/-,4*", ResourceSet::classic(4, 4)),
        ("2+/-,1*", ResourceSet::classic(2, 1)),
    ]
}

/// The paper's reported Figure 3 values, for the paper-vs-measured
/// comparison. Row order: meta1..meta4, list; column order as
/// [`paper_configs`].
pub fn paper_values() -> Vec<(&'static str, [[u64; 3]; 5])> {
    vec![
        (
            "HAL",
            [
                [8, 6, 14],
                [8, 6, 14],
                [8, 6, 13],
                [8, 6, 13],
                [8, 6, 13],
            ],
        ),
        (
            "AR",
            [
                [19, 11, 34],
                [19, 11, 34],
                [19, 11, 34],
                [19, 11, 34],
                [19, 11, 34],
            ],
        ),
        (
            "EF",
            [
                [19, 17, 24],
                [19, 17, 24],
                [19, 17, 24],
                [19, 17, 24],
                [19, 17, 24],
            ],
        ),
        (
            "FIR",
            [
                [11, 7, 19],
                [11, 7, 19],
                [11, 7, 19],
                [11, 7, 19],
                [11, 7, 19],
            ],
        ),
    ]
}

/// One row of the regenerated table.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Benchmark name (HAL, AR, EF, FIR).
    pub benchmark: &'static str,
    /// Scheduler name (`meta sched1..4` or `list sched`).
    pub scheduler: &'static str,
    /// Schedule length per resource configuration.
    pub lengths: Vec<u64>,
}

/// Schedules `g` with the threaded scheduler fed by `meta`, returning the
/// schedule length (state diameter).
///
/// # Errors
///
/// Propagates scheduler errors ([`SchedError`]).
pub fn threaded_length(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    meta: MetaSchedule,
) -> Result<u64, SchedError> {
    let order = meta.order(g, resources)?;
    let mut ts = ThreadedScheduler::new(g.clone(), resources.clone())?;
    ts.schedule_all(order)?;
    Ok(ts.diameter())
}

/// Runs the full Figure 3 experiment.
///
/// # Panics
///
/// Panics if any scheduler fails on a benchmark (cannot happen with the
/// shipped benchmark set and configs).
pub fn run() -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for (name, g) in bench_graphs::all() {
        for meta in MetaSchedule::PAPER {
            let lengths: Vec<u64> = paper_configs()
                .iter()
                .map(|(_, r)| threaded_length(&g, r, meta).expect("benchmark schedules"))
                .collect();
            rows.push(Fig3Row {
                benchmark: name,
                scheduler: meta.name(),
                lengths,
            });
        }
        let lengths: Vec<u64> = paper_configs()
            .iter()
            .map(|(_, r)| {
                list_schedule(&g, r, Priority::CriticalPath)
                    .expect("benchmark schedules")
                    .length(&g)
            })
            .collect();
        rows.push(Fig3Row {
            benchmark: name,
            scheduler: "list sched",
            lengths,
        });
    }
    rows
}

/// Formats the regenerated table side by side with the paper's values.
pub fn report(rows: &[Fig3Row]) -> String {
    let paper = paper_values();
    let configs = paper_configs();
    let mut header = vec!["BM".to_string(), "Sched. Alg.".to_string()];
    for (label, _) in &configs {
        header.push(format!("{label} (meas)"));
        header.push("(paper)".to_string());
    }
    let mut out_rows = Vec::new();
    for row in rows {
        let bench_idx = paper
            .iter()
            .position(|(n, _)| *n == row.benchmark)
            .expect("benchmark in paper table");
        let sched_idx = match row.scheduler {
            "meta sched1" => 0,
            "meta sched2" => 1,
            "meta sched3" => 2,
            "meta sched4" => 3,
            _ => 4,
        };
        let mut cells = vec![row.benchmark.to_string(), row.scheduler.to_string()];
        for (c, &len) in row.lengths.iter().enumerate() {
            cells.push(len.to_string());
            cells.push(paper[bench_idx].1[sched_idx][c].to_string());
        }
        out_rows.push(cells);
    }
    crate::render_table(&header, &out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_row_matches_the_paper_exactly() {
        let g = bench_graphs::fir();
        for (i, (_, r)) in paper_configs().iter().enumerate() {
            let expect = [11u64, 7, 19][i];
            for meta in MetaSchedule::PAPER {
                let len = threaded_length(&g, r, meta).unwrap();
                assert_eq!(len, expect, "FIR {} config {i}", meta.name());
            }
        }
    }

    #[test]
    fn threaded_matches_list_on_most_cells() {
        // The paper's qualitative claim: with few exceptions the threaded
        // scheduler achieves the list scheduler's length.
        let rows = run();
        let mut total = 0;
        let mut matches = 0;
        for (name, _) in bench_graphs::all() {
            let list_row = rows
                .iter()
                .find(|r| r.benchmark == name && r.scheduler == "list sched")
                .unwrap()
                .lengths
                .clone();
            for r in rows.iter().filter(|r| r.benchmark == name && r.scheduler != "list sched") {
                for (c, &len) in r.lengths.iter().enumerate() {
                    total += 1;
                    if len <= list_row[c] + 1 {
                        matches += 1;
                    }
                    assert!(
                        len + 2 >= list_row[c],
                        "{name}/{}: threaded much better than list?",
                        r.scheduler
                    );
                }
            }
        }
        assert!(
            matches * 10 >= total * 9,
            "threaded should be within one step of list on ≥90% of cells ({matches}/{total})"
        );
    }

    #[test]
    fn report_contains_all_rows() {
        let rows = run();
        let text = report(&rows);
        for s in ["HAL", "AR", "EF", "FIR", "meta sched1", "list sched"] {
            assert!(text.contains(s), "{s} missing");
        }
    }
}
