//! Criterion bench over the Figure 3 workloads: scheduling each
//! benchmark DFG with every scheduler under the paper's allocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hls_ir::bench_graphs;
use std::hint::black_box;
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

fn bench_fig3_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_workloads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, g) in bench_graphs::all() {
        for (label, resources) in hls_bench::fig3::paper_configs() {
            for meta in MetaSchedule::PAPER {
                let order = meta.order(&g, &resources).unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/{}", meta.name()), label),
                    &order,
                    |b, order| {
                        b.iter(|| {
                            let mut ts =
                                ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
                            ts.schedule_all(order.iter().copied()).unwrap();
                            black_box(ts.diameter())
                        })
                    },
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/list"), label),
                &(),
                |b, ()| {
                    b.iter(|| {
                        let out = hls_baselines::list_schedule(
                            &g,
                            &resources,
                            hls_baselines::Priority::CriticalPath,
                        )
                        .unwrap();
                        black_box(out.length(&g))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_workloads);
criterion_main!(benches);
