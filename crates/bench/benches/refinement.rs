//! Criterion bench for incremental refinement: absorbing one change into
//! an existing soft schedule vs rescheduling the modified behavior.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hls_ir::{bench_graphs, ResourceClass, ResourceSet};
use std::hint::black_box;
use threaded_sched::{meta::MetaSchedule, refine, ThreadedScheduler};

fn scheduled(name: &str) -> ThreadedScheduler {
    let (_, g) = bench_graphs::all()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap();
    let r = ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1);
    let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
    let mut ts = ThreadedScheduler::new(g, r).unwrap();
    ts.schedule_all(order).unwrap();
    ts
}

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for name in ["HAL", "AR", "EF", "FIR"] {
        let base = scheduled(name);
        let edge = base.graph().edges().next().unwrap();
        group.bench_with_input(BenchmarkId::new("soft_wire_delay", name), &(), |b, ()| {
            b.iter(|| {
                let mut ts = base.clone();
                black_box(refine::insert_wire_delay(&mut ts, edge.0, edge.1, 1).unwrap());
            })
        });
        group.bench_with_input(BenchmarkId::new("reschedule_list", name), &(), |b, ()| {
            b.iter(|| {
                let mut g = base.graph().clone();
                g.splice_on_edge(
                    edge.0,
                    edge.1,
                    [(hls_ir::OpKind::WireDelay, 1, "wd".to_string())],
                )
                .unwrap();
                let out = hls_baselines::list_schedule(
                    &g,
                    base.resources(),
                    hls_baselines::Priority::CriticalPath,
                )
                .unwrap();
                black_box(out.length(&g))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
