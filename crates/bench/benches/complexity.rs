//! Criterion bench for Theorem 3: per-graph-size scheduling cost of
//! Algorithm 1 vs the naive speculative scheduler vs list scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hls_ir::{generate, ResourceSet};
use std::hint::black_box;
use threaded_sched::{meta::MetaSchedule, ExhaustiveScheduler, ThreadedScheduler};

fn bench_scaling(c: &mut Criterion) {
    let resources = ResourceSet::classic(2, 2);
    let mut group = c.benchmark_group("theorem3_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[64usize, 128, 256, 512] {
        let cfg = generate::LayeredConfig {
            ops: n,
            width: (n / 8).max(2),
            edge_prob: 0.25,
            ..generate::LayeredConfig::default()
        };
        let g = generate::layered_dag(0xC0FFEE ^ n as u64, &cfg);
        let order = MetaSchedule::Topological.order(&g, &resources).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, _| {
            b.iter(|| {
                let mut ts = ThreadedScheduler::new(g.clone(), resources.clone()).unwrap();
                ts.schedule_all(order.iter().copied()).unwrap();
                black_box(ts.diameter())
            })
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive_speculative", n), &n, |b, _| {
                b.iter(|| {
                    let mut ex =
                        ExhaustiveScheduler::new(g.clone(), resources.clone()).unwrap();
                    ex.schedule_all(order.iter().copied()).unwrap();
                    black_box(ex.diameter())
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("list", n), &n, |b, _| {
            b.iter(|| {
                let out = hls_baselines::list_schedule(
                    &g,
                    &resources,
                    hls_baselines::Priority::CriticalPath,
                )
                .unwrap();
                black_box(out.length(&g))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
