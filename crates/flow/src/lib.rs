//! The end-to-end HLS flow built around the soft scheduler.
//!
//! This is the system the paper's Section 1 sketches: scheduling runs
//! *once*, softly; the later phases — SSA φ resolution, register
//! allocation with spilling, functional-unit binding, floorplanning and
//! wire-delay estimation — refine the threaded schedule instead of
//! invalidating it. The final operation→step mapping is extracted only
//! at the very end ("the hard decision can be delayed to the desired
//! stage, for example, after place and route").
//!
//! Pipeline ([`run_flow`] / [`run_flow_source`]):
//!
//! 1. threaded (soft) scheduling under a meta schedule;
//! 2. register allocation (left-edge), spilling until the register
//!    budget fits — spills are *absorbed* by the soft schedule;
//! 3. φ resolution: same-register φs vanish, others become moves;
//! 4. FU binding (threads are the binding) and interconnect estimation;
//! 5. floorplan placement (simulated annealing) and wire-delay
//!    annotation — long transfers are absorbed as wire-delay vertices;
//! 6. hard-schedule extraction, validation, FSMD and RTL emission.

// Fallibility is the crate's contract: every failure mode of the flow
// is a typed `FlowError`/`SimError`, never an unwrap (`DESIGN.md` §9).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod degrade;
mod flow;
mod fsmd;
pub mod sim;

pub use degrade::{
    run_flow_degraded, DegradeReason, DegradeRung, DegradeStep, DegradedOutcome,
};
pub use flow::{
    eco_flow, run_flow, run_flow_dfg, run_flow_source, EcoBase, FlowConfig, FlowError,
    FlowOutcome, FlowReport, PipelineReport,
};
pub use hls_phys::Floorplan;
pub use fsmd::{Fsmd, MicroOp};
pub use sim::{eval_dfg, simulate_datapath, synth_inputs, SimError};
