//! The graceful-degradation ladder.
//!
//! A budgeted flow should come back with *something* — the best answer
//! its budget allowed, plus an honest record of what it had to give
//! up. [`run_flow_degraded`] walks a fixed ladder of scheduling
//! strategies, each cheaper and more predictable than the last, and
//! settles on the first rung that produces a validated design:
//!
//! 1. [`DegradeRung::Portfolio`] — the parallel portfolio with
//!    feedback refinement, under half the budget;
//! 2. [`DegradeRung::SingleMeta`] — the single configured meta order,
//!    under three quarters of the (original) budget;
//! 3. [`DegradeRung::ListSchedule`] — plain list scheduling, under
//!    the full remaining budget;
//! 4. [`DegradeRung::BoundOnly`] — no schedule at all: the certified
//!    lower bound ([`ThreadedScheduler::schedule_lower_bound`]), which
//!    needs no commits and therefore no budget.
//!
//! A rung is abandoned only for *recoverable* failures — its budget
//! slice expired ([`DegradeReason::Timeout`]), it panicked
//! ([`DegradeReason::Poisoned`]), or it failed in a way a simpler
//! strategy may avoid ([`DegradeReason::Error`]); the reason is
//! recorded in [`DegradedOutcome::degraded`] so callers can tell a
//! first-choice answer from a fallback. Failures that every rung
//! would share (a malformed graph, a missing unit class) surface from
//! the last schedule-producing rung as the flow's own typed error.
//!
//! Under a pure step-quota budget the ladder is deterministic: which
//! rung answers, and with what design, reproduces across thread
//! counts (`crates/flow/tests/degradation.rs`).

use crate::flow::{FlowConfig, FlowError, FlowOutcome};
use hls_ir::PrecedenceGraph;
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

/// One rung of the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeRung {
    /// Parallel portfolio + feedback refinement (the full engine).
    Portfolio,
    /// The single configured meta order.
    SingleMeta,
    /// Plain list scheduling.
    ListSchedule,
    /// No schedule: only the certified lower bound is reported.
    BoundOnly,
}

impl DegradeRung {
    /// Display name of the rung.
    pub fn name(self) -> &'static str {
        match self {
            DegradeRung::Portfolio => "portfolio",
            DegradeRung::SingleMeta => "single-meta",
            DegradeRung::ListSchedule => "list-schedule",
            DegradeRung::BoundOnly => "bound-only",
        }
    }

    /// Ladder depth: 0 for the full portfolio down to 3 for
    /// bound-only. Monotone in budget starvation — a larger budget
    /// never answers from a *deeper* rung than a smaller one (the
    /// concurrent-load suite asserts this).
    pub fn rank(self) -> u8 {
        match self {
            DegradeRung::Portfolio => 0,
            DegradeRung::SingleMeta => 1,
            DegradeRung::ListSchedule => 2,
            DegradeRung::BoundOnly => 3,
        }
    }

    /// The rung with the given [`rank`](Self::rank), if any — the
    /// inverse used when a rung tag crosses the serve wire format.
    pub fn from_name(name: &str) -> Option<DegradeRung> {
        [
            DegradeRung::Portfolio,
            DegradeRung::SingleMeta,
            DegradeRung::ListSchedule,
            DegradeRung::BoundOnly,
        ]
        .into_iter()
        .find(|r| r.name() == name)
    }
}

/// Why a rung was abandoned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The rung's budget slice expired.
    Timeout,
    /// The rung panicked (message preserved; the panic never left the
    /// ladder).
    Poisoned(String),
    /// The rung failed in a way a simpler strategy may avoid.
    Error(String),
}

/// One abandoned rung: what was tried and why it was given up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradeStep {
    /// The rung that was tried.
    pub rung: DegradeRung,
    /// Why it was abandoned.
    pub reason: DegradeReason,
}

/// What a degraded flow settled on.
#[derive(Debug)]
pub struct DegradedOutcome {
    /// The rung that answered.
    pub rung: DegradeRung,
    /// The produced design — `None` exactly when `rung` is
    /// [`DegradeRung::BoundOnly`].
    pub outcome: Option<FlowOutcome>,
    /// The certified lower bound on any schedule of this behavior
    /// under these resources. Always present, even bound-only.
    pub lower_bound: u64,
    /// The rungs abandoned on the way down, in ladder order — empty
    /// when the portfolio answered first try.
    pub degraded: Vec<DegradeStep>,
}

/// Is this failure worth descending a rung for, and if so why?
fn recoverable(e: &FlowError) -> Option<DegradeReason> {
    match e {
        FlowError::Timeout => Some(DegradeReason::Timeout),
        FlowError::Poisoned(msg) => Some(DegradeReason::Poisoned(msg.clone())),
        // Structural rejections no rung can fix: descending would just
        // re-fail slower.
        FlowError::NeedsPipeline
        | FlowError::Lang(_)
        | FlowError::Malformed(_)
        | FlowError::ResourceExhausted(_) => None,
        other => Some(DegradeReason::Error(other.to_string())),
    }
}

/// Runs the flow down the degradation ladder; see the
/// [module docs](self).
///
/// # Errors
///
/// Only failures no rung can recover from: structural rejections
/// ([`FlowError::NeedsPipeline`], [`FlowError::Malformed`],
/// [`FlowError::ResourceExhausted`], front-end errors) and a
/// bound-only rung that itself cannot validate the graph.
pub fn run_flow_degraded(
    graph: &PrecedenceGraph,
    config: &FlowConfig,
) -> Result<DegradedOutcome, FlowError> {
    let mut degraded = Vec::new();

    // Rung configs: each swaps only the scheduling strategy and its
    // budget slice; the rest of the flow (spilling, placement, FSMD)
    // is identical, so a lower rung's answer is a complete design.
    let rungs = [
        (DegradeRung::Portfolio, {
            let mut c = config.clone();
            c.portfolio = Some(config.portfolio.clone().unwrap_or_default());
            c.budget = config.budget.slice(1, 2);
            c
        }),
        (DegradeRung::SingleMeta, {
            let mut c = config.clone();
            c.portfolio = None;
            c.budget = config.budget.slice(3, 4);
            c
        }),
        (DegradeRung::ListSchedule, {
            let mut c = config.clone();
            c.portfolio = None;
            c.meta = MetaSchedule::ListBased;
            c.budget = config.budget;
            c
        }),
    ];

    for (rung, rung_cfg) in rungs {
        let attempt = {
            let _span = hls_obs::obs_span!(DegradeRung, rung.name(), u64::from(rung.rank()));
            crate::run_flow(graph.clone(), &rung_cfg)
        };
        match attempt {
            Ok(mut outcome) => {
                answered_at(rung);
                outcome.report.rung = Some(rung.name());
                let lower_bound = outcome.scheduler.schedule_lower_bound();
                return Ok(DegradedOutcome {
                    rung,
                    outcome: Some(outcome),
                    lower_bound,
                    degraded,
                });
            }
            Err(e) => match recoverable(&e) {
                Some(reason) => {
                    demotion(rung, &reason);
                    degraded.push(DegradeStep { rung, reason });
                }
                None => return Err(e),
            },
        }
    }

    // Bound-only: the certified lower bound needs graph validation and
    // the chain-cover index but not a single commit, so it answers
    // even with a fully exhausted budget. Loop kernels are bounded on
    // their one-iteration kernel DAG.
    let g = if graph.has_loop_edges() {
        graph.kernel_dag()
    } else {
        graph.clone()
    };
    let lower_bound =
        ThreadedScheduler::new(g, config.resources.clone())?.schedule_lower_bound();
    answered_at(DegradeRung::BoundOnly);
    Ok(DegradedOutcome {
        rung: DegradeRung::BoundOnly,
        outcome: None,
        lower_bound,
        degraded,
    })
}

/// Counts a ladder demotion by typed reason and drops a ring marker
/// naming the abandoned rung, so traces and STATS both show every
/// transition. A poisoned rung is a caught panic, so it additionally
/// freezes a flight-recorder post-mortem — the ladder absorbs the
/// crash, but the evidence survives.
fn demotion(rung: DegradeRung, reason: &DegradeReason) {
    match reason {
        DegradeReason::Timeout => hls_obs::obs_count!(DegradeTimeout),
        DegradeReason::Poisoned(msg) => {
            hls_obs::obs_count!(DegradePoisoned);
            hls_obs::flight::dump(&format!("ladder rung '{}' poisoned: {msg}", rung.name()));
        }
        DegradeReason::Error(_) => hls_obs::obs_count!(DegradeError),
    }
    hls_obs::obs_instant!(DegradeRung, rung.name(), u64::from(rung.rank()));
}

/// Counts which rung finally answered.
fn answered_at(rung: DegradeRung) {
    match rung {
        DegradeRung::Portfolio => hls_obs::obs_count!(AnsweredPortfolio),
        DegradeRung::SingleMeta => hls_obs::obs_count!(AnsweredSingleMeta),
        DegradeRung::ListSchedule => hls_obs::obs_count!(AnsweredListSchedule),
        DegradeRung::BoundOnly => hls_obs::obs_count!(AnsweredBoundOnly),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    fn base_config() -> FlowConfig {
        FlowConfig::default()
    }

    #[test]
    fn unlimited_budget_answers_on_the_portfolio_rung() {
        let cfg = base_config();
        let out = run_flow_degraded(&bench_graphs::ewf(), &cfg).unwrap();
        assert_eq!(out.rung, DegradeRung::Portfolio);
        assert!(out.degraded.is_empty());
        let flow = out.outcome.expect("a schedule was produced");
        assert!(flow.report.final_states >= out.lower_bound);
    }

    #[test]
    fn exhausted_budget_degrades_to_the_bound_only_report() {
        // A zero-step quota starves every schedule-producing rung; the
        // ladder still answers with the certified bound, and records
        // each abandoned rung as a timeout.
        let cfg = FlowConfig {
            budget: hls_ir::Budget::steps(0),
            ..base_config()
        };
        let out = run_flow_degraded(&bench_graphs::ewf(), &cfg).unwrap();
        assert_eq!(out.rung, DegradeRung::BoundOnly);
        assert!(out.outcome.is_none());
        assert!(out.lower_bound > 0);
        assert_eq!(out.degraded.len(), 3);
        assert!(out
            .degraded
            .iter()
            .all(|s| s.reason == DegradeReason::Timeout));
    }

    #[test]
    fn structural_failures_are_not_degraded_away() {
        // A loop-carrying behavior without the pipeline seat fails
        // identically on every rung — the ladder must surface the
        // typed error, not burn the budget re-failing.
        let cfg = base_config();
        let err = run_flow_degraded(&bench_graphs::mac_loop(), &cfg).unwrap_err();
        assert_eq!(err, FlowError::NeedsPipeline);
    }

    #[test]
    fn mid_budget_lands_on_a_lower_schedule_rung() {
        // Enough steps for one plain run but not for the portfolio's
        // half-slice: the ladder descends yet still returns a design.
        let g = bench_graphs::ewf();
        let n = g.len() as u64;
        let cfg = FlowConfig {
            budget: hls_ir::Budget::steps(n + n / 2),
            ..base_config()
        };
        let out = run_flow_degraded(&g, &cfg).unwrap();
        assert_ne!(out.rung, DegradeRung::BoundOnly, "budget affords a schedule");
        let flow = out.outcome.expect("a schedule was produced");
        flow.scheduler.check_invariants().unwrap();
        assert!(flow.report.final_states >= out.lower_bound);
    }
}
