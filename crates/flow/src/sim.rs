//! Value-level simulation: functional verification of scheduled,
//! register-allocated designs.
//!
//! Two interpreters over the same operand semantics:
//!
//! * [`eval_dfg`] — the *reference*: evaluates the dataflow graph in
//!   dependence order, ignoring the schedule entirely;
//! * [`simulate_datapath`] — the *implementation*: executes the hard
//!   schedule cycle by cycle against a real register file (values are
//!   written when operations finish and **clobbered** when the register
//!   is reused), reading chained values only in their forwarding window.
//!
//! If scheduling, spilling, φ resolution or wire-delay refinement ever
//! broke a lifetime, the two would disagree — so
//! `simulate == reference` is an executable end-to-end soundness check
//! for the entire flow.

use hls_alloc::RegAllocation;
use hls_ir::{algo, HardSchedule, OpId, OpKind, Operand, PrecedenceGraph};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Simulation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// An operation has no recorded operands (run
    /// [`hls_ir::sim_operands::infer`] first).
    NoOperands(OpId),
    /// A named input has no supplied value.
    MissingInput(String),
    /// The schedule does not cover this operation.
    Unscheduled(OpId),
    /// An operand's register was overwritten before its last use — the
    /// lifetime/allocation is broken.
    Clobbered {
        /// The reading operation.
        reader: OpId,
        /// The producer whose value was lost.
        producer: OpId,
    },
    /// A chained (register-less) value was read outside its forwarding
    /// window.
    ForwardingMiss {
        /// The reading operation.
        reader: OpId,
        /// The producer of the chained value.
        producer: OpId,
    },
    /// The graph is cyclic — simulation needs a DAG (loop kernels are
    /// simulated through their one-iteration kernel DAG).
    Cyclic,
    /// An operand references a producer that never ran — the graph's
    /// operand lists are inconsistent with its edges.
    DanglingOperand(OpId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoOperands(v) => write!(f, "operation {v} has no operands"),
            SimError::MissingInput(n) => write!(f, "no value supplied for input `{n}`"),
            SimError::Unscheduled(v) => write!(f, "operation {v} is unscheduled"),
            SimError::Clobbered { reader, producer } => {
                write!(f, "{reader} read a clobbered register value of {producer}")
            }
            SimError::ForwardingMiss { reader, producer } => {
                write!(f, "{reader} missed the forwarding window of {producer}")
            }
            SimError::Cyclic => write!(f, "simulation requires an acyclic graph"),
            SimError::DanglingOperand(p) => {
                write!(f, "operand references {p}, which never produced a value")
            }
        }
    }
}

impl Error for SimError {}

fn apply(kind: OpKind, args: &[i64]) -> i64 {
    let a = args.first().copied().unwrap_or(0);
    let b = args.get(1).copied().unwrap_or(0);
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        OpKind::Cmp => i64::from(a < b),
        OpKind::Shl => a.wrapping_shl((b & 63) as u32),
        OpKind::Logic => a & b,
        // Pass-throughs: memory, moves, wires, placeholders.
        OpKind::Load | OpKind::Store | OpKind::Move | OpKind::WireDelay | OpKind::Nop => a,
        // φ selects on its first operand: (cond, then, else).
        OpKind::Phi => {
            let c = a;
            let t = b;
            let e = args.get(2).copied().unwrap_or(0);
            if c != 0 {
                t
            } else {
                e
            }
        }
    }
}

/// Reference evaluation of the DFG in dependence order.
///
/// # Errors
///
/// [`SimError::NoOperands`] / [`SimError::MissingInput`];
/// [`SimError::Cyclic`] on a cyclic graph.
pub fn eval_dfg(
    g: &PrecedenceGraph,
    inputs: &BTreeMap<String, i64>,
) -> Result<BTreeMap<OpId, i64>, SimError> {
    let order = algo::topo_order(g).map_err(|_| SimError::Cyclic)?;
    let mut values: BTreeMap<OpId, i64> = BTreeMap::new();
    for v in order {
        if g.operands(v).is_empty() {
            return Err(SimError::NoOperands(v));
        }
        let mut args = Vec::with_capacity(g.operands(v).len());
        for operand in g.operands(v) {
            args.push(operand_value(operand, inputs, |p| values.get(&p).copied())?);
        }
        values.insert(v, apply(g.kind(v), &args));
    }
    Ok(values)
}

fn operand_value(
    operand: &Operand,
    inputs: &BTreeMap<String, i64>,
    mut lookup: impl FnMut(OpId) -> Option<i64>,
) -> Result<i64, SimError> {
    match operand {
        Operand::Const(c) => Ok(*c),
        Operand::Input(name) => inputs
            .get(name)
            .copied()
            .ok_or_else(|| SimError::MissingInput(name.clone())),
        Operand::Op(p) => lookup(*p).ok_or(SimError::DanglingOperand(*p)),
    }
}

/// Cycle-accurate execution of a hard schedule against the register
/// file implied by `regs`.
///
/// # Errors
///
/// All [`SimError`] variants; in a correct flow this function returns
/// exactly [`eval_dfg`]'s values.
pub fn simulate_datapath(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    regs: &RegAllocation,
    inputs: &BTreeMap<String, i64>,
) -> Result<BTreeMap<OpId, i64>, SimError> {
    // Issue order by start step.
    let mut ops: Vec<OpId> = g.op_ids().collect();
    for &v in &ops {
        if sched.start(v).is_none() {
            return Err(SimError::Unscheduled(v));
        }
    }
    ops.sort_by_key(|&v| (sched.start(v), v));

    // Register file: register -> (producer, value). Timing convention
    // (matching edge-triggered hardware and the left-edge allocator's
    // half-open intervals): a value finishing at step `t` is latched at
    // the clock edge entering `t`; a consumer starting at step `t`
    // samples its operands *at that same edge*, i.e. it sees the
    // pre-edge register state plus a forwarding path for values landing
    // exactly at `t`. Writes therefore commit strictly before the
    // reader's start step.
    let mut regfile: BTreeMap<usize, (OpId, i64)> = BTreeMap::new();
    let mut produced: BTreeMap<OpId, i64> = BTreeMap::new();
    // Pending writes sorted by finish step.
    let mut writes: Vec<(u64, OpId, usize, i64)> = Vec::new();

    for &v in &ops {
        let Some(now) = sched.start(v) else {
            return Err(SimError::Unscheduled(v));
        };
        // Commit all writes that land strictly before `now`.
        writes.sort_by_key(|&(t, p, _, _)| (t, p));
        let (ready, pending): (Vec<_>, Vec<_>) =
            writes.into_iter().partition(|&(t, _, _, _)| t < now);
        writes = pending;
        for (_, p, r, val) in ready {
            regfile.insert(r, (p, val));
        }

        if g.operands(v).is_empty() {
            return Err(SimError::NoOperands(v));
        }
        let mut args = Vec::with_capacity(g.operands(v).len());
        for operand in g.operands(v) {
            let value = match operand {
                Operand::Const(c) => *c,
                Operand::Input(name) => inputs
                    .get(name)
                    .copied()
                    .ok_or_else(|| SimError::MissingInput(name.clone()))?,
                Operand::Op(p) => {
                    let p = *p;
                    let pf = sched.finish(g, p).ok_or(SimError::Unscheduled(p))?;
                    if g.kind(p) == OpKind::Store && pf <= now {
                        // A stored value lives in background memory: one
                        // location per spill, never clobbered within the
                        // block. The matching Load reads it directly.
                        *produced.get(&p).ok_or(SimError::DanglingOperand(p))?
                    } else if pf == now {
                        // Same-edge forwarding (chained or just-latched).
                        *produced.get(&p).ok_or(SimError::DanglingOperand(p))?
                    } else {
                        match regs.register_of(p) {
                            Some(r) => match regfile.get(&r) {
                                Some(&(holder, val)) if holder == p => val,
                                _ => {
                                    return Err(SimError::Clobbered {
                                        reader: v,
                                        producer: p,
                                    })
                                }
                            },
                            None => {
                                // Register-less value read outside its
                                // forwarding window.
                                return Err(SimError::ForwardingMiss {
                                    reader: v,
                                    producer: p,
                                });
                            }
                        }
                    }
                }
            };
            args.push(value);
        }
        let result = apply(g.kind(v), &args);
        produced.insert(v, result);
        if let Some(r) = regs.register_of(v) {
            writes.push((now + g.delay(v), v, r, result));
        }
    }
    Ok(produced)
}

/// Convenience: deterministic pseudo-random inputs for every named
/// input reachable in `g` (seeded, for reproducible tests).
pub fn synth_inputs(g: &PrecedenceGraph, seed: i64) -> BTreeMap<String, i64> {
    let mut inputs = BTreeMap::new();
    for v in g.op_ids() {
        for operand in g.operands(v) {
            if let Operand::Input(name) = operand {
                // Simple splitmix-style hash of name + seed.
                let mut h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64);
                for b in name.bytes() {
                    h = h.wrapping_mul(31).wrapping_add(b as i64);
                }
                inputs.insert(name.clone(), (h % 97) - 48);
            }
        }
    }
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, sim_operands, ResourceSet};

    fn scheduled(
        g: &PrecedenceGraph,
        alus: usize,
        muls: usize,
    ) -> (HardSchedule, RegAllocation) {
        let out = hls_baselines::list_schedule(
            g,
            &ResourceSet::classic(alus, muls),
            hls_baselines::Priority::CriticalPath,
        )
        .unwrap();
        let ls = hls_alloc::lifetimes::lifetimes(g, &out.schedule).unwrap();
        (out.schedule, hls_alloc::left_edge::allocate(&ls))
    }

    #[test]
    fn datapath_matches_reference_on_all_benchmarks() {
        for (name, mut g) in bench_graphs::all() {
            sim_operands::infer(&mut g);
            let inputs = synth_inputs(&g, 7);
            let reference = eval_dfg(&g, &inputs).unwrap();
            for (alus, muls) in [(2, 2), (4, 4), (2, 1)] {
                let (sched, regs) = scheduled(&g, alus, muls);
                let got = simulate_datapath(&g, &sched, &regs, &inputs).unwrap();
                assert_eq!(got, reference, "{name} under {alus}+{muls}*");
            }
        }
    }

    #[test]
    fn operand_order_matters_for_sub() {
        let mut g = PrecedenceGraph::new();
        let s = g.add_op(OpKind::Sub, 1, "s");
        g.set_operands(
            s,
            vec![Operand::Const(10), Operand::Const(3)],
        );
        let vals = eval_dfg(&g, &BTreeMap::new()).unwrap();
        assert_eq!(vals[&s], 7);
    }

    #[test]
    fn phi_selects_by_condition() {
        let mut g = PrecedenceGraph::new();
        let phi = g.add_op(OpKind::Phi, 0, "phi");
        g.set_operands(
            phi,
            vec![Operand::Const(1), Operand::Const(42), Operand::Const(7)],
        );
        assert_eq!(eval_dfg(&g, &BTreeMap::new()).unwrap()[&phi], 42);
        g.set_operands(
            phi,
            vec![Operand::Const(0), Operand::Const(42), Operand::Const(7)],
        );
        assert_eq!(eval_dfg(&g, &BTreeMap::new()).unwrap()[&phi], 7);
    }

    #[test]
    fn clobbered_register_is_detected() {
        // Two producers forced into one register with overlapping uses.
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        let c = g.add_op(OpKind::Add, 1, "c");
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        sim_operands::infer(&mut g);
        let mut sched = HardSchedule::new(3);
        sched.assign(a, 0, Some(0));
        sched.assign(b, 1, Some(0));
        sched.assign(c, 4, Some(0));
        // A *broken* allocation: both values in register 0.
        let ls = vec![
            hls_alloc::Lifetime { producer: a, birth: 1, death: 4 },
            hls_alloc::Lifetime { producer: b, birth: 4, death: 5 },
        ];
        let regs = hls_alloc::left_edge::allocate(&ls);
        assert_eq!(regs.register_of(a), regs.register_of(b), "forced collision");
        let err = simulate_datapath(&g, &sched, &regs, &synth_inputs(&g, 1)).unwrap_err();
        assert!(matches!(err, SimError::Clobbered { .. }), "{err}");
    }

    #[test]
    fn missing_input_is_reported() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        g.set_operands(a, vec![Operand::Input("x".into()), Operand::Const(1)]);
        let err = eval_dfg(&g, &BTreeMap::new()).unwrap_err();
        assert_eq!(err, SimError::MissingInput("x".into()));
    }

    #[test]
    fn spilled_design_still_computes_the_same_values() {
        use threaded_sched::{meta::MetaSchedule, refine, ThreadedScheduler};
        let mut g = bench_graphs::hal();
        sim_operands::infer(&mut g);
        let inputs = synth_inputs(&g, 3);
        let reference = eval_dfg(&g, &inputs).unwrap();

        let r = ResourceSet::classic(2, 2).with(hls_ir::ResourceClass::MemPort, 1);
        let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        // Spill two arbitrary values through memory.
        let edges: Vec<_> = ts.graph().edges().take(2).collect();
        for (u, w) in edges {
            refine::insert_spill(&mut ts, u, w).unwrap();
        }
        let sched = ts.extract_hard();
        let ls = hls_alloc::lifetimes::lifetimes(ts.graph(), &sched).unwrap();
        let regs = hls_alloc::left_edge::allocate(&ls);
        let got = simulate_datapath(ts.graph(), &sched, &regs, &inputs).unwrap();
        for (op, val) in &reference {
            assert_eq!(got.get(op), Some(val), "value of {op} changed by spilling");
        }
    }
}
