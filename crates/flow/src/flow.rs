//! The flow driver.

use hls_alloc::{left_edge, lifetimes, spill, RegAllocation};
use hls_ir::{
    schedule as sched_check, DelayModel, HardSchedule, OpKind, PrecedenceGraph, ResourceClass,
    ResourceSet,
};
use hls_phys::{annotate, place, Floorplan, PlaceConfig, WireModel};
use threaded_sched::{meta::MetaSchedule, refine, SchedError, ThreadedScheduler};

use std::error::Error;
use std::fmt;

/// Configuration of the end-to-end flow.
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Functional-unit allocation. A memory port is required if spilling
    /// can occur (register budget set).
    pub resources: ResourceSet,
    /// Register-file size; `None` disables spilling.
    pub register_budget: Option<usize>,
    /// Operation feed order for the soft scheduler. Ignored when
    /// [`FlowConfig::portfolio`] is set.
    pub meta: MetaSchedule,
    /// When set, scheduling runs the parallel portfolio + feedback
    /// refinement ([`hls_search::run_portfolio`]) instead of the
    /// single `meta` order, and the flow proceeds from the portfolio
    /// winner's state. The result is deterministic for a fixed
    /// configuration regardless of the portfolio's thread count.
    pub portfolio: Option<hls_search::PortfolioConfig>,
    /// When set, the behavior is treated as a *loop kernel*: the
    /// modulo portfolio ([`hls_search::run_modulo_portfolio`]) derives
    /// a loop-pipelined schedule first — achieved II, certified MII
    /// and fill latency land in [`FlowReport::pipeline`], the winning
    /// [`hls_ir::ModuloSchedule`] in [`FlowOutcome::modulo`] — and the
    /// rest of the flow (registers, placement, FSMD) proceeds on the
    /// one-iteration [`kernel DAG`](PrecedenceGraph::kernel_dag).
    /// Behaviors without loop-carried edges are legal too (the kernel
    /// DAG is then the behavior itself and the II is purely
    /// resource-bound). `None` keeps the acyclic-only flow: a graph
    /// carrying loop edges is rejected with
    /// [`FlowError::NeedsPipeline`] (the acyclic scheduler would
    /// silently misread inter-iteration dependencies as
    /// same-iteration ones).
    pub pipeline: Option<hls_search::PipelineConfig>,
    /// When set, the initial soft schedule of a *large* behavior is
    /// built by the partition-parallel engine
    /// ([`threaded_sched::ParallelScheduler`]): balanced min-cut
    /// partition, per-block scheduling on worker threads, seam stitch,
    /// then materialisation back into a live [`ThreadedScheduler`] so
    /// every downstream phase (spilling, φ resolution, wire-delay
    /// absorption, ECO) works unchanged. The seat adopts
    /// [`FlowConfig::meta`] as its block meta order, and behaviors at
    /// or below the config's `sequential_cutoff` take the flow's
    /// ordinary sequential branch (budget included) — small flows are
    /// bit-identical with or without this seat. Ignored when
    /// [`FlowConfig::portfolio`] or [`FlowConfig::pipeline`] is set
    /// (those seats own scheduling), and not threaded through the
    /// degradation ladder. The flow budget is not enforced inside the
    /// partitioned run — this seat *is* the fast path for graphs big
    /// enough to need a budget.
    pub parallel: Option<threaded_sched::parallel::ParallelConfig>,
    /// Floorplan grid (width, height); must fit `resources.k()` cells.
    pub grid: (usize, usize),
    /// Interconnect delay model.
    pub wire_model: WireModel,
    /// Placement annealing parameters.
    pub place: PlaceConfig,
    /// Delay model (for φ-resolution move delay).
    pub delays: DelayModel,
    /// Budget of the scheduling phases (the portfolio race, the modulo
    /// portfolio, or the single-meta run). Combined pointwise
    /// ([`hls_ir::Budget::tighter`]) with any budget already carried
    /// by the portfolio/pipeline seats. An expired budget surfaces as
    /// [`FlowError::Timeout`]; [`crate::run_flow_degraded`] instead
    /// walks the degradation ladder. The default is unlimited.
    pub budget: hls_ir::Budget,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            resources: ResourceSet::classic(2, 1).with(ResourceClass::MemPort, 1),
            register_budget: None,
            meta: MetaSchedule::ListBased,
            portfolio: None,
            pipeline: None,
            parallel: None,
            grid: (2, 2),
            wire_model: WireModel::default(),
            place: PlaceConfig::default(),
            delays: DelayModel::classic(),
            budget: hls_ir::Budget::NONE,
        }
    }
}

/// Loop-pipelining quantities reported when [`FlowConfig::pipeline`]
/// is set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineReport {
    /// Achieved initiation interval (steady-state steps per
    /// iteration).
    pub ii: u64,
    /// The certified lower bound `max(ResMII, RecMII)`; `ii == mii`
    /// is provably throughput-optimal.
    pub mii: u64,
    /// Single-iteration latency (pipeline fill depth).
    pub latency: u64,
}

/// Quantities reported by the flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowReport {
    /// Loop-pipelining results, when the pipeline seat was configured.
    pub pipeline: Option<PipelineReport>,
    /// Diameter right after soft scheduling.
    pub initial_states: u64,
    /// Spills absorbed.
    pub spills: usize,
    /// φ operations resolved to moves.
    pub phis_to_moves: usize,
    /// φ operations resolved to nothing (same register both sides).
    pub phis_voided: usize,
    /// Wire-delay vertices absorbed after placement.
    pub wire_delays: usize,
    /// Final schedule length (control states).
    pub final_states: u64,
    /// Registers used by the final allocation.
    pub registers: usize,
    /// Total traffic-weighted wirelength of the placement.
    pub wirelength: u64,
    /// The degradation-ladder rung that produced this answer
    /// ([`crate::DegradeRung::name`]), or `None` when the flow ran
    /// directly (no ladder involved). Clients use this to see *why*
    /// they got a degraded answer.
    pub rung: Option<&'static str>,
}

/// Everything the flow produces.
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// The winning loop-pipelined schedule of the original kernel,
    /// when [`FlowConfig::pipeline`] was set (it validates under
    /// `hls_ir::schedule::check_modulo` against the input behavior).
    pub modulo: Option<hls_ir::ModuloSchedule>,
    /// The soft scheduler holding the final refined state (and the
    /// refined behavior graph). [`eco_flow`] extends this state
    /// directly when the design is resubmitted with a delta.
    pub scheduler: ThreadedScheduler,
    /// The extracted, validated hard schedule.
    pub schedule: HardSchedule,
    /// Final register allocation.
    pub registers: RegAllocation,
    /// The annealed floorplan.
    pub floorplan: Floorplan,
    /// The controller/datapath model.
    pub fsmd: crate::Fsmd,
    /// Headline numbers.
    pub report: FlowReport,
}

/// Errors of the end-to-end flow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// The behavior carries loop-carried (positive-distance) edges
    /// but [`FlowConfig::pipeline`] is not set — the acyclic flow
    /// would drop the inter-iteration semantics.
    NeedsPipeline,
    /// The front end rejected the source.
    Lang(hls_lang::LangError),
    /// The scheduler failed.
    Sched(SchedError),
    /// The extracted schedule failed validation (internal bug guard).
    Invalid(String),
    /// Lifetime extraction failed (internal bug guard).
    Lifetime(String),
    /// The [`FlowConfig::budget`] expired before a schedule was
    /// produced. [`crate::run_flow_degraded`] turns this into a
    /// descent down the degradation ladder instead.
    Timeout,
    /// A scheduling phase panicked; the panic was contained at the
    /// flow boundary and the message preserved. No panic crosses the
    /// public API.
    Poisoned(String),
    /// The textual DFG input did not parse ([`crate::run_flow_dfg`]).
    Malformed(String),
    /// An input exceeded a structural capacity limit (e.g. the
    /// reachability index's vertex budget).
    ResourceExhausted(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NeedsPipeline => write!(
                f,
                "behavior has loop-carried edges; set FlowConfig::pipeline to schedule it"
            ),
            FlowError::Lang(e) => write!(f, "front end: {e}"),
            FlowError::Sched(e) => write!(f, "scheduler: {e}"),
            FlowError::Invalid(msg) => write!(f, "invalid extracted schedule: {msg}"),
            FlowError::Lifetime(msg) => write!(f, "lifetime extraction: {msg}"),
            FlowError::Timeout => write!(f, "flow budget expired before a schedule was produced"),
            FlowError::Poisoned(msg) => write!(f, "scheduling phase panicked: {msg}"),
            FlowError::Malformed(msg) => write!(f, "malformed DFG input: {msg}"),
            FlowError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
        }
    }
}

impl Error for FlowError {}

impl From<hls_lang::LangError> for FlowError {
    fn from(e: hls_lang::LangError) -> Self {
        FlowError::Lang(e)
    }
}

impl From<SchedError> for FlowError {
    fn from(e: SchedError) -> Self {
        match e {
            SchedError::Timeout => FlowError::Timeout,
            SchedError::Poisoned(msg) => FlowError::Poisoned(msg),
            SchedError::ResourceExhausted(msg) => FlowError::ResourceExhausted(msg),
            other => FlowError::Sched(other),
        }
    }
}

/// Compiles behavioral source and runs the full flow.
///
/// # Errors
///
/// Any [`FlowError`].
pub fn run_flow_source(source: &str, config: &FlowConfig) -> Result<FlowOutcome, FlowError> {
    let compiled = hls_lang::compile(source, &config.delays)?;
    run_flow(compiled.graph, config)
}

/// Parses a textual DFG ([`hls_ir::textfmt`]) and runs the full flow.
///
/// # Errors
///
/// [`FlowError::Malformed`] when the text does not parse (carrying
/// the parser's line/column diagnostic); otherwise any [`FlowError`].
pub fn run_flow_dfg(text: &str, config: &FlowConfig) -> Result<FlowOutcome, FlowError> {
    let graph =
        hls_ir::textfmt::from_text(text).map_err(|e| FlowError::Malformed(e.to_string()))?;
    run_flow(graph, config)
}

/// Runs the full flow on an already-built behavior graph.
///
/// No panic crosses this boundary: anything unwinding out of a flow
/// phase is caught and returned as [`FlowError::Poisoned`].
///
/// # Errors
///
/// Any [`FlowError`].
pub fn run_flow(graph: PrecedenceGraph, config: &FlowConfig) -> Result<FlowOutcome, FlowError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_flow_inner(graph, config)))
        .unwrap_or_else(|payload| {
            Err(FlowError::Poisoned(threaded_sched::panic_message(
                payload.as_ref(),
            )))
        })
}

/// A finished design an ECO resubmission can extend incrementally:
/// the post-flow scheduler state, the id map from the graph *as
/// submitted* to that state, and the placement to reuse. The serve
/// layer's schedule cache stores one of these per entry.
#[derive(Clone, Debug)]
pub struct EcoBase {
    /// The post-flow scheduler (spills, φ rewrites and wire delays
    /// already absorbed).
    pub scheduler: ThreadedScheduler,
    /// Submitted-graph op index → op id in `scheduler`'s behavior.
    /// For a cold outcome this is the identity over the submitted
    /// graph; each [`eco_flow`] extends it with the delta ids.
    pub map: Vec<hls_ir::OpId>,
    /// The annealed floorplan of the base design. The delta rides on
    /// it — placement does not rerun.
    pub floorplan: Floorplan,
}

impl EcoBase {
    /// The base for a cold outcome of `submitted`: identity map onto
    /// the outcome's scheduler and floorplan.
    pub fn of_outcome(submitted_ops: usize, out: &FlowOutcome) -> EcoBase {
        EcoBase {
            scheduler: out.scheduler.clone(),
            map: (0..submitted_ops).map(hls_ir::OpId::from_index).collect(),
            floorplan: out.floorplan.clone(),
        }
    }
}

/// Absorbs an ECO delta into a finished design: `target` (the graph
/// as resubmitted) must extend the base graph behind `base` — the
/// caller checks [`PrecedenceGraph::extends`]; this function trusts
/// `base.map`. The delta cone is scheduled incrementally onto the
/// cached post-flow state
/// ([`ThreadedScheduler::refine_graft`](threaded_sched::ThreadedScheduler::refine_graft)),
/// wire delays are annotated for the *new* edges only against the
/// cached floorplan, and the design is re-extracted, re-validated and
/// re-built. Nothing already absorbed — spills, φ rewrites, the
/// existing wire delays, the placement — is recomputed; that is what
/// makes resubmission fast.
///
/// Returns the new outcome plus the extended [`EcoBase`] for
/// re-caching under the resubmitted graph's hash. Like [`run_flow`],
/// no panic crosses this boundary.
///
/// # Errors
///
/// [`FlowError::Sched`] with
/// [`SchedError::NotAnExtension`] when the delta cannot ride the
/// cached state (loop edges, or delta ops of kind `Phi`, which need
/// the flow's register-aware resolution); [`FlowError::Timeout`] on
/// budget expiry; otherwise the errors of the finishing phases.
/// Callers fall back to the cold flow on non-timeout errors.
pub fn eco_flow(
    base: EcoBase,
    target: &PrecedenceGraph,
    config: &FlowConfig,
    budget: &hls_ir::Budget,
) -> Result<(FlowOutcome, EcoBase), FlowError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        eco_flow_inner(base, target, config, budget)
    }))
    .unwrap_or_else(|payload| {
        Err(FlowError::Poisoned(threaded_sched::panic_message(
            payload.as_ref(),
        )))
    })
}

fn eco_flow_inner(
    mut base: EcoBase,
    target: &PrecedenceGraph,
    config: &FlowConfig,
    budget: &hls_ir::Budget,
) -> Result<(FlowOutcome, EcoBase), FlowError> {
    let _span = hls_obs::obs_span!(EcoGraft, "", target.len() as u64);
    hls_obs::obs_count!(EcoGrafts);
    // Delta φs would need register allocation to resolve; that is the
    // cold flow's job, not the delta path's.
    for i in base.map.len()..target.len() {
        if target.kind(hls_ir::OpId::from_index(i)) == OpKind::Phi {
            return Err(FlowError::Sched(SchedError::NotAnExtension));
        }
    }

    let mut ts = base.scheduler;
    let initial_states = ts.diameter();
    let before_len = ts.graph().len();
    let added = ts
        .refine_graft(target, &mut base.map, budget)
        .map_err(|e| match e {
            SchedError::Timeout => FlowError::Timeout,
            other => FlowError::Sched(other),
        })?;

    // Wire delays for the delta only: edges between pre-existing ops
    // already carry theirs (as absorbed delay vertices), so only
    // transfers touching a grafted op are new.
    let hard = ts.extract_hard();
    let matrix = hls_phys::traffic_matrix(ts.graph(), &hard, &config.resources);
    let transfers = annotate(ts.graph(), &hard, &base.floorplan, config.wire_model);
    let mut wire_delays = 0usize;
    for t in transfers {
        if t.from.index() < before_len && t.to.index() < before_len {
            continue;
        }
        if budget.expired((added.len() + wire_delays) as u64) {
            return Err(FlowError::Timeout);
        }
        refine::insert_wire_delay(&mut ts, t.from, t.to, t.cycles)?;
        wire_delays += 1;
    }
    let wirelength = base.floorplan.wirelength(&matrix);

    // Extract, validate, build — identical to the cold flow's step 6.
    let schedule = ts.extract_hard();
    sched_check::validate(ts.graph(), &config.resources, &schedule)
        .map_err(|e| FlowError::Invalid(e.to_string()))?;
    let final_states = ts.diameter();
    let ls = lifetimes::lifetimes(ts.graph(), &schedule)
        .map_err(|e| FlowError::Lifetime(e.to_string()))?;
    let registers = left_edge::allocate(&ls);
    let fsmd = crate::Fsmd::build(ts.graph(), &schedule, &registers, &config.resources);

    let report = FlowReport {
        pipeline: None,
        initial_states,
        spills: 0,
        phis_to_moves: 0,
        phis_voided: 0,
        wire_delays,
        final_states,
        registers: registers.register_count(),
        wirelength,
        rung: None,
    };
    let next_base = EcoBase {
        scheduler: ts.clone(),
        map: base.map,
        floorplan: base.floorplan.clone(),
    };
    let outcome = FlowOutcome {
        modulo: None,
        scheduler: ts,
        schedule,
        registers,
        floorplan: base.floorplan,
        fsmd,
        report,
    };
    Ok((outcome, next_base))
}

fn run_flow_inner(graph: PrecedenceGraph, config: &FlowConfig) -> Result<FlowOutcome, FlowError> {
    // 0. Loop pipelining: modulo-schedule the kernel (acyclic
    // behaviors are kernels without recurrences), then hand the
    // one-iteration kernel DAG to the rest of the flow. Without the
    // pipeline seat, a graph with loop edges fails scheduling
    // validation below, exactly as before.
    let mut pipeline = None;
    let mut modulo = None;
    let graph = match &config.pipeline {
        Some(pcfg) => {
            let pcfg = hls_search::PipelineConfig {
                budget: pcfg.budget.tighter(&config.budget),
                ..pcfg.clone()
            };
            let out = hls_search::run_modulo_portfolio(&graph, &config.resources, &pcfg)?;
            pipeline = Some(PipelineReport {
                ii: out.ii,
                mii: out.mii,
                latency: out.latency,
            });
            modulo = Some(out.schedule);
            graph.kernel_dag()
        }
        None => {
            if graph.has_loop_edges() {
                return Err(FlowError::NeedsPipeline);
            }
            graph
        }
    };

    // 1. Soft scheduling — a single meta order, the parallel
    // portfolio + feedback refinement, or (for large behaviors) the
    // partition-parallel engine materialised back into a live state.
    // The meta/portfolio paths honour the flow budget and stop within
    // one commit of expiry; the partitioned path is the fast path and
    // runs unbudgeted (see [`FlowConfig::parallel`]).
    let _sched_span = hls_obs::obs_span!(FlowSchedule, "", graph.len() as u64);
    let ts = match (&config.portfolio, &config.parallel) {
        (Some(pcfg), _) => {
            let pcfg = hls_search::PortfolioConfig {
                budget: pcfg.budget.tighter(&config.budget),
                ..pcfg.clone()
            };
            hls_search::run_portfolio(&graph, &config.resources, &pcfg)?.winner
        }
        (None, Some(par)) if pipeline.is_none() && graph.len() > par.sequential_cutoff => {
            // The seat adopts the flow's meta order so the
            // below-cutoff path is bit-identical to the plain flow.
            let par = threaded_sched::ParallelConfig { meta: config.meta, ..par.clone() };
            let ps =
                threaded_sched::ParallelScheduler::new(graph, config.resources.clone(), par)?;
            let run = ps.run()?;
            ps.materialize(&run)?
        }
        _ => {
            let order = config.meta.order(&graph, &config.resources)?;
            let mut ts = ThreadedScheduler::new(graph, config.resources.clone())?;
            match ts.schedule_all_budgeted(order, &config.budget, |_| false)? {
                threaded_sched::RunOutcome::DeadlineExpired { .. } => {
                    return Err(FlowError::Timeout)
                }
                _ => ts,
            }
        }
    };
    drop(_sched_span);
    finish_flow(ts, pipeline, modulo, config)
}

/// The post-scheduling phases (spilling, φ resolution, placement,
/// extraction, FSMD) — shared by [`run_flow`] and the degradation
/// ladder, which swaps only the scheduling rung.
pub(crate) fn finish_flow(
    mut ts: ThreadedScheduler,
    pipeline: Option<PipelineReport>,
    modulo: Option<hls_ir::ModuloSchedule>,
    config: &FlowConfig,
) -> Result<FlowOutcome, FlowError> {
    let initial_states = ts.diameter();

    // 2. Register allocation with spilling, absorbed softly. Spilling
    // stops at the budget, on stall (pressure no longer dropping — the
    // remaining pressure is inherent), or at a hard bound.
    let spill_span = hls_obs::obs_span!(FlowSpill);
    let mut spills = 0usize;
    if let Some(budget) = config.register_budget {
        let max_spills = ts.graph().len();
        let mut best_pressure = usize::MAX;
        let mut stalled = 0usize;
        while spills < max_spills {
            let hard = ts.extract_hard();
            let ls = lifetimes::lifetimes(ts.graph(), &hard)
                .map_err(|e| FlowError::Lifetime(e.to_string()))?;
            let pressure = left_edge::allocate(&ls).register_count();
            if pressure <= budget {
                break;
            }
            if pressure < best_pressure {
                best_pressure = pressure;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= 3 {
                    break;
                }
            }
            let Some(decision) = spill::pick_spill(ts.graph(), &ls) else {
                break;
            };
            refine::insert_spill(&mut ts, decision.producer, decision.consumer)?;
            spills += 1;
        }
    }

    drop(spill_span);

    // 3. φ resolution: same-register sources vanish, others become moves.
    let phi_span = hls_obs::obs_span!(FlowPhi);
    let hard = ts.extract_hard();
    let ls = lifetimes::lifetimes(ts.graph(), &hard)
        .map_err(|e| FlowError::Lifetime(e.to_string()))?;
    let regs = left_edge::allocate(&ls);
    let mut phis_to_moves = 0usize;
    let mut phis_voided = 0usize;
    let phi_ops: Vec<_> = ts
        .graph()
        .op_ids()
        .filter(|&v| ts.graph().kind(v) == OpKind::Phi)
        .collect();
    for phi in phi_ops {
        // Data sources are every predecessor that produces a value
        // (the condition also feeds the φ; it selects, it is not data —
        // but for register comparison only value sources matter).
        let srcs: Vec<_> = ts.graph().preds(phi).to_vec();
        let regs_of: Vec<Option<usize>> = srcs.iter().map(|&p| regs.register_of(p)).collect();
        let all_same = regs_of.len() >= 2
            && regs_of.iter().skip(1).all(|r| *r == regs_of[1])
            && regs_of[1].is_some();
        if all_same {
            ts.retype_op(phi, OpKind::Nop, 0);
            phis_voided += 1;
        } else {
            ts.retype_op(phi, OpKind::Move, config.delays.delay_of(OpKind::Move));
            phis_to_moves += 1;
        }
    }

    drop(phi_span);

    // 4–5. Binding is the thread assignment; place and absorb wire
    // delays.
    let place_span = hls_obs::obs_span!(FlowPlace);
    let hard = ts.extract_hard();
    let start_fp =
        Floorplan::row_major(config.resources.k(), config.grid.0, config.grid.1);
    let matrix = hls_phys::traffic_matrix(ts.graph(), &hard, &config.resources);
    let floorplan = place(&start_fp, &matrix, &config.place);
    let wirelength = floorplan.wirelength(&matrix);
    let transfers = annotate(ts.graph(), &hard, &floorplan, config.wire_model);
    let wire_delays = transfers.len();
    for t in transfers {
        refine::insert_wire_delay(&mut ts, t.from, t.to, t.cycles)?;
    }

    drop(place_span);

    // 6. Extract, validate, build the FSMD.
    let _extract_span = hls_obs::obs_span!(FlowExtract);
    let schedule = ts.extract_hard();
    sched_check::validate(ts.graph(), &config.resources, &schedule)
        .map_err(|e| FlowError::Invalid(e.to_string()))?;
    let final_states = ts.diameter();
    let ls = lifetimes::lifetimes(ts.graph(), &schedule)
        .map_err(|e| FlowError::Lifetime(e.to_string()))?;
    let registers = left_edge::allocate(&ls);
    let fsmd = crate::Fsmd::build(ts.graph(), &schedule, &registers, &config.resources);

    let report = FlowReport {
        pipeline,
        initial_states,
        spills,
        phis_to_moves,
        phis_voided,
        wire_delays,
        final_states,
        registers: registers.register_count(),
        wirelength,
        rung: None,
    };
    Ok(FlowOutcome {
        modulo,
        scheduler: ts,
        schedule,
        registers,
        floorplan,
        fsmd,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    const HAL_SRC: &str = "
        input x, dx, u, y, a;
        output x1, y1, u1, c;
        t1 = 3 * x;  t2 = u * dx;  t3 = 3 * y;
        t4 = t1 * t2;
        t5 = t3 * dx;
        s1 = u - t4;
        u1 = s1 - t5;
        y1 = y + u * dx;
        x1 = x + dx;
        c = x1 < a;
    ";

    #[test]
    fn full_flow_from_source_produces_valid_hardware() {
        let out = run_flow_source(HAL_SRC, &FlowConfig::default()).unwrap();
        assert!(out.report.final_states >= out.report.initial_states);
        assert!(out.report.registers > 0);
        assert_eq!(out.fsmd.states, out.report.final_states);
        out.scheduler.check_invariants().unwrap();
    }

    #[test]
    fn register_budget_triggers_spills() {
        let cfg = FlowConfig {
            register_budget: Some(1),
            ..FlowConfig::default()
        };
        let out = run_flow_source(HAL_SRC, &cfg).unwrap();
        assert!(out.report.spills > 0, "budget 1 must force spilling");
        // The spilled design still validates and fits the budget.
        assert!(out.report.registers <= 3, "pressure must drop near budget");
    }

    #[test]
    fn parallel_seat_is_identical_below_cutoff_and_valid_when_forced() {
        // Below the cutoff the parallel seat takes the sequential path
        // inside the parallel engine: the flow is bit-identical.
        let seq = run_flow(bench_graphs::ewf(), &FlowConfig::default()).unwrap();
        let cfg = FlowConfig {
            parallel: Some(threaded_sched::ParallelConfig::default()),
            ..FlowConfig::default()
        };
        let par = run_flow(bench_graphs::ewf(), &cfg).unwrap();
        assert_eq!(par.report, seq.report);

        // Forcing the partition path still yields a flow-worthy state:
        // every downstream phase ran and the outcome validates.
        let forced = FlowConfig {
            parallel: Some(threaded_sched::ParallelConfig {
                parts: 4,
                sequential_cutoff: 0,
                ..threaded_sched::ParallelConfig::default()
            }),
            ..FlowConfig::default()
        };
        let out = run_flow(bench_graphs::ewf(), &forced).unwrap();
        out.scheduler.check_invariants().unwrap();
        sched_check::validate(out.scheduler.graph(), &forced.resources, &out.schedule).unwrap();
        assert!(out.report.final_states >= out.report.initial_states);
    }

    /// The parallel-seat dispatch at *exactly* `sequential_cutoff`
    /// (ISSUE 9 satellite): the seat engages only for `len > cutoff`,
    /// so behaviors of `cutoff - 1` and exactly `cutoff` ops must be
    /// bit-identical to the plain flow — full report and hard
    /// schedule — while `cutoff + 1` partitions and still validates.
    /// (The 8191/8192/8193 sizes against the default 8192 cutoff are
    /// pinned engine-level in `threaded-sched`'s `parallel_golden`
    /// suite; the flow-level dispatch is cutoff-relative, tested here
    /// at a CI-sized cutoff.)
    #[test]
    fn parallel_seat_dispatch_at_exact_cutoff() {
        let cutoff = 60usize;
        for ops in [cutoff - 1, cutoff, cutoff + 1] {
            let g = hls_ir::generate::layered_dag(
                0x8192 ^ ops as u64,
                &hls_ir::generate::LayeredConfig { ops, ..Default::default() },
            );
            let seq = run_flow(g.clone(), &FlowConfig::default()).unwrap();
            let cfg = FlowConfig {
                parallel: Some(threaded_sched::ParallelConfig {
                    sequential_cutoff: cutoff,
                    ..threaded_sched::ParallelConfig::default()
                }),
                ..FlowConfig::default()
            };
            let par = run_flow(g, &cfg).unwrap();
            par.scheduler.check_invariants().unwrap();
            sched_check::validate(par.scheduler.graph(), &cfg.resources, &par.schedule)
                .unwrap();
            if ops <= cutoff {
                assert_eq!(par.report, seq.report, "{ops} ops: report diverged at the cutoff");
                for v in par.scheduler.graph().op_ids() {
                    assert_eq!(
                        par.schedule.start(v),
                        seq.schedule.start(v),
                        "{ops} ops: start of {v}"
                    );
                    assert_eq!(par.schedule.unit(v), seq.schedule.unit(v), "{ops} ops: unit of {v}");
                }
            } else {
                assert!(
                    par.report.final_states >= par.report.initial_states,
                    "{ops} ops: partitioned flow must still complete"
                );
            }
        }
    }

    #[test]
    fn tight_wire_model_inserts_wire_delays() {
        let cfg = FlowConfig {
            wire_model: WireModel::new(1),
            grid: (4, 1), // a strip stretches distances
            ..FlowConfig::default()
        };
        let out = run_flow(bench_graphs::ewf(), &cfg).unwrap();
        assert!(out.report.wire_delays > 0);
        assert!(out.report.final_states >= out.report.initial_states);
    }

    #[test]
    fn pipeline_seat_runs_the_cyclic_kernel_through_the_flow() {
        use hls_ir::schedule::check_modulo;
        let g = bench_graphs::mac_loop();
        let cfg = FlowConfig {
            resources: ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1),
            pipeline: Some(hls_search::PipelineConfig::default()),
            ..FlowConfig::default()
        };
        // Without the pipeline seat a loop-carrying behavior is
        // rejected — even an *acyclic* one like the FIR delay line,
        // whose inter-iteration edges the acyclic scheduler would
        // silently misread as same-iteration.
        let acyclic_only = FlowConfig {
            pipeline: None,
            ..cfg.clone()
        };
        assert_eq!(
            run_flow(g.clone(), &acyclic_only).unwrap_err(),
            FlowError::NeedsPipeline
        );
        assert_eq!(
            run_flow(bench_graphs::fir_loop(4), &acyclic_only).unwrap_err(),
            FlowError::NeedsPipeline
        );
        let out = run_flow(g.clone(), &cfg).unwrap();
        let p = out.report.pipeline.expect("pipeline seat reports");
        assert_eq!(p.ii, p.mii, "MAC pipelines at the certified bound");
        let ms = out.modulo.expect("modulo schedule kept");
        assert_eq!(check_modulo(&g, &cfg.resources, &ms), Ok(()));
        // Downstream hardware came from the one-iteration kernel DAG.
        assert_eq!(out.fsmd.microops.len(), out.scheduler.graph().len());
        out.scheduler.check_invariants().unwrap();
    }

    #[test]
    fn pipeline_seat_accepts_acyclic_behaviors() {
        let cfg = FlowConfig {
            pipeline: Some(hls_search::PipelineConfig::default()),
            ..FlowConfig::default()
        };
        let out = run_flow_source(HAL_SRC, &cfg).unwrap();
        let p = out.report.pipeline.expect("reported");
        assert_eq!(p.mii, p.ii);
        assert!(p.latency >= p.ii || p.ii == 1);
    }

    #[test]
    fn phis_are_resolved_one_way_or_another() {
        let src = "
            input a, b; output o;
            if (a < b) { s = a + 1; } else { s = b + 2; }
            o = s * 3;
        ";
        let out = run_flow_source(src, &FlowConfig::default()).unwrap();
        assert_eq!(out.report.phis_to_moves + out.report.phis_voided, 1);
        // No Phi survives in the final behavior.
        assert!(out
            .scheduler
            .graph()
            .op_ids()
            .all(|v| out.scheduler.graph().kind(v) != OpKind::Phi));
    }

    #[test]
    fn portfolio_flow_matches_or_beats_the_single_meta_flow() {
        let single = run_flow(bench_graphs::ewf(), &FlowConfig::default()).unwrap();
        let cfg = FlowConfig {
            portfolio: Some(hls_search::PortfolioConfig {
                threads: 2,
                ..hls_search::PortfolioConfig::default()
            }),
            ..FlowConfig::default()
        };
        let port = run_flow(bench_graphs::ewf(), &cfg).unwrap();
        // The portfolio contains the single meta, so its soft schedule
        // cannot be longer; the rest of the flow still validates.
        assert!(port.report.initial_states <= single.report.initial_states);
        assert!(port.report.final_states >= port.report.initial_states);
        port.scheduler.check_invariants().unwrap();
    }

    #[test]
    fn front_end_errors_propagate() {
        let err = run_flow_source("output o;", &FlowConfig::default()).unwrap_err();
        assert!(matches!(err, FlowError::Lang(_)));
    }

    #[test]
    fn missing_units_propagate_as_sched_errors() {
        let cfg = FlowConfig {
            resources: ResourceSet::classic(2, 0), // no multiplier
            ..FlowConfig::default()
        };
        let err = run_flow(bench_graphs::hal(), &cfg).unwrap_err();
        assert!(matches!(err, FlowError::Sched(_)));
    }
}
