//! Property: the whole scheduling/allocation stack preserves program
//! semantics on randomized workloads — the strongest end-to-end check
//! this repository runs.

use hls_ir::{generate, sim_operands, ResourceClass, ResourceSet};
use hls_flow::sim::{eval_dfg, simulate_datapath, synth_inputs};
use proptest::prelude::*;
use threaded_sched::{meta::MetaSchedule, refine, ThreadedScheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Threaded scheduling + left-edge allocation compute exactly the
    /// reference values on random layered DFGs, for every meta order.
    #[test]
    fn scheduled_datapath_matches_reference(
        seed in 0u64..500,
        ops in 6usize..40,
        alus in 1usize..4,
        muls in 1usize..3,
        meta_idx in 0usize..5,
        input_seed in -50i64..50,
    ) {
        let mut g = generate::layered_dag(seed, &generate::LayeredConfig {
            ops,
            width: (ops / 4).max(2),
            ..generate::LayeredConfig::default()
        });
        sim_operands::infer(&mut g);
        let inputs = synth_inputs(&g, input_seed);
        let reference = eval_dfg(&g, &inputs).unwrap();

        let r = ResourceSet::classic(alus, muls);
        let meta = [
            MetaSchedule::Dfs,
            MetaSchedule::Topological,
            MetaSchedule::PathBased,
            MetaSchedule::ListBased,
            MetaSchedule::Random(seed),
        ][meta_idx];
        let order = meta.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        let sched = ts.extract_hard();
        let ls = hls_alloc::lifetimes::lifetimes(ts.graph(), &sched).unwrap();
        let regs = hls_alloc::left_edge::allocate(&ls);
        let got = simulate_datapath(ts.graph(), &sched, &regs, &inputs).unwrap();
        prop_assert_eq!(got, reference);
    }

    /// Values survive arbitrary spill + wire-delay refinement chains.
    #[test]
    fn refined_datapath_matches_reference(
        seed in 0u64..300,
        ops in 8usize..30,
        picks in prop::collection::vec(0usize..64, 1..4),
    ) {
        let mut g = generate::layered_dag(seed, &generate::LayeredConfig {
            ops,
            width: (ops / 4).max(2),
            ..generate::LayeredConfig::default()
        });
        sim_operands::infer(&mut g);
        let inputs = synth_inputs(&g, seed as i64);
        let reference = eval_dfg(&g, &inputs).unwrap();

        let r = ResourceSet::classic(2, 2).with(ResourceClass::MemPort, 1);
        let order = MetaSchedule::ListBased.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        for (i, pick) in picks.iter().enumerate() {
            let edges: Vec<_> = ts
                .graph()
                .edges()
                // Never splice the memory dependence inside a previous
                // spill (st -> ld); everything else is fair game.
                .filter(|&(u, _)| ts.graph().kind(u) != hls_ir::OpKind::Store)
                .collect();
            let (u, w) = edges[pick % edges.len()];
            if i % 2 == 0 {
                refine::insert_spill(&mut ts, u, w).unwrap();
            } else {
                refine::insert_wire_delay(&mut ts, u, w, 1).unwrap();
            }
        }
        let sched = ts.extract_hard();
        let ls = hls_alloc::lifetimes::lifetimes(ts.graph(), &sched).unwrap();
        let regs = hls_alloc::left_edge::allocate(&ls);
        let got = simulate_datapath(ts.graph(), &sched, &regs, &inputs).unwrap();
        for (op, val) in &reference {
            prop_assert_eq!(got.get(op), Some(val));
        }
    }
}
