//! Degradation determinism (`DESIGN.md` §9).
//!
//! Under a pure step-quota budget the degradation ladder must be a
//! *function* of `(graph, config)`: the rung that answers, the rungs
//! abandoned on the way down, and the produced design's headline
//! numbers reproduce exactly across portfolio thread counts. Wall
//! clocks are the only nondeterministic input, and a step quota
//! removes them.

use hls_flow::{run_flow_degraded, DegradeReason, DegradeRung, FlowConfig};
use hls_ir::{bench_graphs, Budget};

/// Everything observable about a degraded run, for equality.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    rung: DegradeRung,
    abandoned: Vec<(DegradeRung, &'static str)>,
    final_states: Option<u64>,
    lower_bound: u64,
}

fn fingerprint(quota: u64, threads: usize) -> Fingerprint {
    let cfg = FlowConfig {
        portfolio: Some(hls_search::PortfolioConfig {
            threads,
            ..Default::default()
        }),
        budget: Budget::steps(quota),
        ..FlowConfig::default()
    };
    let out = run_flow_degraded(&bench_graphs::ewf(), &cfg).expect("the ladder always answers");
    Fingerprint {
        rung: out.rung,
        abandoned: out
            .degraded
            .iter()
            .map(|s| {
                let reason = match &s.reason {
                    DegradeReason::Timeout => "timeout",
                    DegradeReason::Poisoned(_) => "poisoned",
                    DegradeReason::Error(_) => "error",
                };
                (s.rung, reason)
            })
            .collect(),
        final_states: out.outcome.as_ref().map(|o| o.report.final_states),
        lower_bound: out.lower_bound,
    }
}

#[test]
fn degradation_is_deterministic_across_thread_counts() {
    let n = bench_graphs::ewf().len() as u64;
    // Quotas chosen to land on different rungs: starved, partial
    // (enough for one plain run but not the portfolio's half-slice),
    // and unconstrained-in-practice.
    for quota in [0, n / 2, n, n + n / 2, 10 * n] {
        let baseline = fingerprint(quota, 1);
        for threads in [2, 8] {
            let fp = fingerprint(quota, threads);
            assert_eq!(
                baseline, fp,
                "quota {quota}: 1 thread vs {threads} threads disagree"
            );
        }
        eprintln!(
            "quota {quota}: rung {:?}, {} rungs abandoned",
            baseline.rung,
            baseline.abandoned.len()
        );
    }
}

#[test]
fn the_quota_sweep_actually_covers_multiple_rungs() {
    // Guard against the sweep silently collapsing onto one rung (which
    // would make the determinism check vacuous).
    let n = bench_graphs::ewf().len() as u64;
    let rungs: Vec<DegradeRung> = [0, n + n / 2, 10 * n]
        .into_iter()
        .map(|q| fingerprint(q, 2).rung)
        .collect();
    assert_eq!(rungs[0], DegradeRung::BoundOnly);
    assert_eq!(rungs[2], DegradeRung::Portfolio);
    assert_ne!(rungs[1], DegradeRung::BoundOnly, "mid budget affords a schedule");
}
