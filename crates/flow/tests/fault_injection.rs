//! The seeded fault-injection property suite (`DESIGN.md` §9).
//!
//! One process, one property, hammered 512+ ways: **every** call into
//! the public flow API returns either a checker-valid design or a
//! typed [`FlowError`] — under injected panics at arbitrary commit
//! counts, under step-quota and skewed-wall-clock deadlines, and on
//! byte-mutated wire-format inputs. A single panic escaping, or a
//! single `Ok` carrying an invalid schedule, fails the suite.
//!
//! This file is its own integration-test binary on purpose: the
//! fault-injection plans are process-global, so keeping them here
//! isolates them from every other test process.

use hls_flow::{
    run_flow, run_flow_degraded, run_flow_dfg, DegradeRung, FlowConfig, FlowError, FlowOutcome,
};
use hls_ir::faultinject::{arm, mutate_bytes, FaultPlan};
use hls_ir::{bench_graphs, textfmt, Budget};
use std::time::Duration;

const MUTATION_TRIALS: u64 = 192;
const PANIC_TRIALS: u64 = 160;
const DEADLINE_TRIALS: u64 = 160;

/// CI's smoke job re-runs the suite over disjoint seed windows by
/// setting `FAULTINJECT_SEED_OFFSET`; locally the offset is 0.
fn seed_offset() -> u64 {
    std::env::var("FAULTINJECT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A produced design must satisfy the independent checkers; an error
/// must simply *be* one (it is typed by construction — reaching this
/// function at all means nothing unwound through the API).
fn audit(result: &Result<FlowOutcome, FlowError>) {
    if let Ok(out) = result {
        out.scheduler
            .check_invariants()
            .expect("Ok outcome must pass the scheduler's invariant checker");
        hls_ir::schedule::validate(out.scheduler.graph(), &resources(), &out.schedule)
            .expect("Ok outcome must carry a validated hard schedule");
    }
}

fn resources() -> hls_ir::ResourceSet {
    FlowConfig::default().resources
}

fn portfolio_config(budget: Budget) -> FlowConfig {
    FlowConfig {
        portfolio: Some(hls_search::PortfolioConfig {
            threads: 2,
            ..Default::default()
        }),
        budget,
        ..FlowConfig::default()
    }
}

#[test]
fn seeded_trials_never_abort_and_never_return_invalid_schedules() {
    let base_text = textfmt::to_text(&bench_graphs::ewf());
    let n = bench_graphs::ewf().len() as u64;
    let mut trials = 0u64;
    #[derive(Default)]
    struct Counters {
        oks: u64,
        errs: u64,
        poisoned: u64,
        timeouts: u64,
        malformed: u64,
    }
    impl Counters {
        fn tally(&mut self, r: &Result<FlowOutcome, FlowError>) {
            audit(r);
            match r {
                Ok(_) => self.oks += 1,
                Err(e) => {
                    self.errs += 1;
                    match e {
                        FlowError::Poisoned(_) => self.poisoned += 1,
                        FlowError::Timeout => self.timeouts += 1,
                        FlowError::Malformed(_) => self.malformed += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    let mut c = Counters::default();

    // --- Mutated wire-format bytes ------------------------------------
    // Deterministic per seed; mostly parse rejections, occasionally a
    // still-well-formed graph that must then schedule cleanly.
    let offset = seed_offset();
    for seed in offset..offset + MUTATION_TRIALS {
        let bytes = mutate_bytes(seed, base_text.as_bytes());
        let text = String::from_utf8_lossy(&bytes);
        let r = run_flow_dfg(&text, &FlowConfig::default());
        c.tally(&r);
        trials += 1;
    }
    assert!(c.malformed > 0, "the mutator must actually break some inputs");

    // --- Injected panics at seeded commit counts ----------------------
    // An untargeted plan hits every scheduler run in this process; the
    // portfolio's catch_unwind isolation and the flow's own boundary
    // must contain all of them.
    for seed in offset..offset + PANIC_TRIALS {
        let k = 1 + seed % 48;
        let _armed = arm(FaultPlan::panic_at(k));
        if seed % 4 == 0 {
            // The ladder under fire: every schedule-producing rung is
            // poisoned for small k, yet the bound-only rung commits
            // nothing and must still answer.
            let out = run_flow_degraded(&bench_graphs::ewf(), &portfolio_config(Budget::NONE))
                .expect("the ladder always answers for a well-formed graph");
            if let Some(flow) = &out.outcome {
                audit(&Ok(flow.clone()));
                c.oks += 1;
            } else {
                assert_eq!(out.rung, DegradeRung::BoundOnly);
                assert!(out.lower_bound > 0);
                c.errs += 1;
                c.poisoned += 1;
            }
        } else {
            let r = run_flow(bench_graphs::ewf(), &portfolio_config(Budget::NONE));
            c.tally(&r);
        }
        trials += 1;
    }
    assert!(
        c.poisoned > 0,
        "small commit counts must actually poison some runs"
    );

    // --- Deadlines: step quotas and skewed wall clocks ----------------
    for seed in offset..offset + DEADLINE_TRIALS {
        let budget = if seed % 2 == 0 {
            Budget::steps(seed % (3 * n))
        } else {
            // A wall deadline made deterministic-ish by a virtual
            // clock: each commit advances `now()` by 3ms, so a 40ms
            // deadline expires after ~a dozen commits without waiting.
            Budget::deadline_in(Duration::from_millis(40))
        };
        let _armed = (seed % 2 == 1).then(|| {
            arm(FaultPlan {
                clock_skew_per_commit: Duration::from_millis(3),
                ..FaultPlan::default()
            })
        });
        if seed % 3 == 0 {
            let out = run_flow_degraded(&bench_graphs::ewf(), &FlowConfig {
                budget,
                ..FlowConfig::default()
            })
            .expect("the ladder absorbs every deadline");
            if let Some(flow) = &out.outcome {
                audit(&Ok(flow.clone()));
                c.oks += 1;
            } else {
                c.errs += 1;
                c.timeouts += 1;
            }
        } else {
            let r = run_flow(bench_graphs::ewf(), &FlowConfig {
                budget,
                ..FlowConfig::default()
            });
            c.tally(&r);
        }
        trials += 1;
    }
    assert!(c.timeouts > 0, "starved budgets must actually expire");
    assert!(c.oks > 0, "generous budgets must still complete");

    assert_eq!(trials, MUTATION_TRIALS + PANIC_TRIALS + DEADLINE_TRIALS);
    assert!(trials >= 512, "the suite promises at least 512 trials");
    assert_eq!(c.oks + c.errs, trials, "every trial is an Ok or a typed error");
    eprintln!(
        "fault injection: {trials} trials — {} ok, {} typed errors \
         ({} poisoned, {} timeouts, {} malformed)",
        c.oks, c.errs, c.poisoned, c.timeouts, c.malformed
    );
}

#[test]
fn mutated_inputs_fail_identically_per_seed() {
    // The harness itself must be reproducible: same seed, same bytes,
    // same top-level outcome. The armed *empty* plan injects nothing
    // but holds the arming lock, so no concurrent test can arm a real
    // plan between the paired runs.
    let _quiesce = arm(FaultPlan::default());
    let base_text = textfmt::to_text(&bench_graphs::hal());
    for seed in [7u64, 1999, 0xDAC] {
        let bytes = mutate_bytes(seed, base_text.as_bytes());
        assert_eq!(bytes, mutate_bytes(seed, base_text.as_bytes()));
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let a = run_flow_dfg(&text, &FlowConfig::default()).map(|o| o.report);
        let b = run_flow_dfg(&text, &FlowConfig::default()).map(|o| o.report);
        match (a, b) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra.final_states, rb.final_states),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!("seed {seed} diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn a_panic_in_the_single_meta_path_is_a_typed_poisoned_error() {
    // No portfolio, no worker isolation — the flow's own catch_unwind
    // boundary is the last line of defense, and it must hold.
    let _armed = arm(FaultPlan::panic_at(2));
    let err = run_flow(bench_graphs::ewf(), &FlowConfig::default()).unwrap_err();
    let FlowError::Poisoned(msg) = err else {
        panic!("expected Poisoned, got {err:?}");
    };
    assert!(msg.contains("injected panic"), "message preserved: {msg}");
}

#[test]
fn clock_skew_expires_a_wall_deadline_without_waiting() {
    // 10s of virtual skew per commit blows a 1s deadline on the very
    // first check; the flow returns Timeout in well under a second.
    let _armed = arm(FaultPlan {
        clock_skew_per_commit: Duration::from_secs(10),
        ..FaultPlan::default()
    });
    let started = std::time::Instant::now();
    let err = run_flow(
        bench_graphs::ewf(),
        &FlowConfig {
            budget: Budget::deadline_in(Duration::from_secs(1)),
            ..FlowConfig::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, FlowError::Timeout);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "the deadline fired on the virtual clock, not the real one"
    );
}
