//! The degradation ladder under concurrent load.
//!
//! Many threads race `run_flow_degraded` with a mix of step quotas —
//! from starved to generous — over shared inputs. The properties:
//!
//! 1. every call returns an answer with an honest rung tag or a
//!    typed `FlowError` — nothing panics, nothing hangs;
//! 2. for a fixed quota the answering rung is deterministic across
//!    threads (step budgets are wall-clock-free);
//! 3. rung *rank* is monotone: a larger quota never answers from a
//!    deeper (worse) rung than a smaller one.

use hls_flow::{run_flow_degraded, DegradeRung, FlowConfig, FlowError};
use hls_ir::{bench_graphs, Budget};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[test]
fn mixed_deadlines_under_concurrency_degrade_honestly_and_monotonically() {
    let g = bench_graphs::ewf();
    let n = g.len() as u64;
    // Starved → generous. 0 must land bound-only; the largest must
    // afford the portfolio.
    let quotas: Vec<u64> = vec![0, n / 2, n + n / 2, 4 * n, 100 * n];

    let results: Mutex<BTreeMap<u64, Vec<DegradeRung>>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for round in 0..4 {
            for &q in &quotas {
                let g = &g;
                let results = &results;
                scope.spawn(move || {
                    let cfg = FlowConfig {
                        budget: Budget::steps(q),
                        ..FlowConfig::default()
                    };
                    match run_flow_degraded(g, &cfg) {
                        Ok(out) => {
                            // The rung tag is honest: bound-only means
                            // no design, every other rung carries one
                            // meeting its own certified bound.
                            match &out.outcome {
                                None => assert_eq!(out.rung, DegradeRung::BoundOnly),
                                Some(flow) => {
                                    assert_ne!(out.rung, DegradeRung::BoundOnly);
                                    flow.scheduler.check_invariants().unwrap();
                                    assert!(flow.report.final_states >= out.lower_bound);
                                }
                            }
                            // The wire tag round-trips (what the serve
                            // layer sends).
                            assert_eq!(
                                DegradeRung::from_name(out.rung.name()),
                                Some(out.rung),
                                "round {round}: rung tag must round-trip"
                            );
                            results.lock().unwrap().entry(q).or_default().push(out.rung);
                        }
                        // A typed error is an acceptable answer shape —
                        // but ewf is well-formed, so none is expected.
                        Err(e) => panic!("well-formed input must not error (quota {q}): {e}"),
                    }
                });
            }
        }
    });

    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), quotas.len(), "every quota answered");

    // Determinism: all concurrent runs of one quota agree.
    for (q, rungs) in &results {
        assert_eq!(rungs.len(), 4);
        assert!(
            rungs.windows(2).all(|w| w[0] == w[1]),
            "quota {q} answered from different rungs across threads: {rungs:?}"
        );
    }

    // Monotonicity: more budget never answers deeper.
    let ranks: Vec<(u64, u8)> = results.iter().map(|(q, r)| (*q, r[0].rank())).collect();
    for pair in ranks.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1,
            "rank regressed with budget: {ranks:?}"
        );
    }
    // The endpoints pin the ladder: starvation answers bound-only,
    // abundance answers portfolio.
    assert_eq!(results[&0][0], DegradeRung::BoundOnly);
    assert_eq!(results[&(100 * n)][0], DegradeRung::Portfolio);
}

#[test]
fn structural_failures_stay_typed_under_concurrent_mixed_traffic() {
    // Loop kernels without the pipeline seat are a *terminal* error on
    // every rung; racing them against degradable traffic must not
    // blur the two response shapes.
    let kernel = bench_graphs::mac_loop();
    let dag = bench_graphs::hal();
    std::thread::scope(|scope| {
        for i in 0..8 {
            let kernel = &kernel;
            let dag = &dag;
            scope.spawn(move || {
                let cfg = FlowConfig {
                    budget: Budget::steps(if i % 2 == 0 { 0 } else { 10_000 }),
                    ..FlowConfig::default()
                };
                let err = run_flow_degraded(kernel, &cfg).unwrap_err();
                assert_eq!(err, FlowError::NeedsPipeline);
                let out = run_flow_degraded(dag, &cfg).unwrap();
                assert!(out.lower_bound > 0);
            });
        }
    });
}
