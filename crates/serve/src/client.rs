//! The client: one connection, typed errors, retry with backoff.
//!
//! [`Client::schedule`] submits one graph and blocks for its answer.
//! [`Client::schedule_with_retry`] wraps that in reconnect + capped
//! exponential backoff with deterministic jitter, retrying exactly
//! the failures the server marked retryable (overload, drain,
//! timeout) plus transport errors — and *never* terminal rejections
//! (malformed, too large, unsupported), which would fail identically
//! forever.

use crate::protocol::{
    self, Accepted, ProtoError, Rejected, Request, Response,
};
use crate::server::{BindAddr, Stream};
use std::io::{self, BufRead, BufReader, Write};
use std::time::Duration;

/// Per-request knobs.
#[derive(Clone, Debug, Default)]
pub struct RequestOpts {
    /// Deadline hint sent to the server (clamped by its
    /// `max_deadline`).
    pub deadline: Option<Duration>,
    /// Deterministic step quota combined into the server-side budget.
    pub steps: Option<u64>,
    /// Canonical hash of a base graph this one extends (ECO fast
    /// path).
    pub base: Option<u128>,
    /// Bypass the schedule cache.
    pub nocache: bool,
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, write, read, premature close).
    Io(io::Error),
    /// The server answered with a typed rejection.
    Rejected(Rejected),
    /// The server answered with something unparsable.
    Protocol(ProtoError),
}

impl ClientError {
    /// Should an identical resubmission be attempted?
    pub fn retryable(&self) -> bool {
        match self {
            // A broken pipe may be a restarting or drained server.
            ClientError::Io(_) => true,
            ClientError::Rejected(r) => r.kind.retryable(),
            ClientError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Rejected(r) => {
                write!(f, "rejected ({}): {}", r.kind.name(), r.msg)
            }
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Retry schedule: capped exponential backoff with multiplicative
/// jitter in `[0.5, 1.5)` from a seeded xorshift, so tests are
/// reproducible and synchronized clients don't stampede in lockstep.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retry.
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Upper clamp on any single backoff.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
            seed: 0x5eed,
        }
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

impl RetryPolicy {
    /// The pause after failed attempt number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // Jitter factor in [0.5, 1.5): spreads retries of clients
        // that failed at the same instant.
        let r = xorshift(self.seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9));
        let factor = 0.5 + (r % 1024) as f64 / 1024.0;
        Duration::from_secs_f64(exp.as_secs_f64() * factor)
    }
}

/// A connected client. One in-flight request at a time.
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the transport.
    pub fn connect(addr: &BindAddr) -> io::Result<Client> {
        let stream = Stream::connect(addr)?;
        // The response wait is bounded: a wedged server surfaces as a
        // timeout error, not a hung client.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            next_id: 1,
        })
    }

    /// Submits `text` and blocks for the matching answer.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — typed rejections come back as
    /// [`ClientError::Rejected`] with the server's retry verdict.
    pub fn schedule(&mut self, text: &str, opts: &RequestOpts) -> Result<Accepted, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            bytes: text.len(),
            deadline_ms: opts.deadline.map(|d| d.as_millis() as u64),
            steps: opts.steps,
            base: opts.base,
            nocache: opts.nocache,
        };
        let header = protocol::format_request_header(&req);
        self.writer.write_all(header.as_bytes())?;
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;

        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            let resp = protocol::parse_response(&line).map_err(ClientError::Protocol)?;
            // Answers for ids this client no longer waits on (e.g.
            // from an abandoned earlier exchange) are skipped.
            if resp.id() != id && resp.id() != 0 {
                continue;
            }
            return match resp {
                Response::Accepted(a) => Ok(a),
                Response::Rejected(r) => Err(ClientError::Rejected(r)),
                // A stray STATS reply belongs to no scheduling
                // exchange; keep waiting for our answer.
                Response::Stats(_) => continue,
            };
        }
    }

    /// Queries the daemon's live metrics snapshot (`STATS` verb) and
    /// returns the flat JSON body. Answered inline by the connection
    /// thread, so it works even while the daemon is draining or its
    /// workers are saturated.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — transport failures, a typed rejection (e.g.
    /// a malformed query), or an unparsable reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let header = protocol::format_stats_header(id);
        self.writer.write_all(header.as_bytes())?;
        self.writer.flush()?;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            let resp = protocol::parse_response(&line).map_err(ClientError::Protocol)?;
            if resp.id() != id && resp.id() != 0 {
                continue;
            }
            return match resp {
                Response::Stats(s) => Ok(s.json),
                Response::Rejected(r) => Err(ClientError::Rejected(r)),
                Response::Accepted(_) => continue,
            };
        }
    }

    /// Connects, submits, and retries retryable failures under
    /// `policy`, reconnecting on each attempt (the previous
    /// connection may be half-dead).
    ///
    /// # Errors
    ///
    /// The last [`ClientError`] once attempts are exhausted, or the
    /// first terminal one.
    pub fn schedule_with_retry(
        addr: &BindAddr,
        text: &str,
        opts: &RequestOpts,
        policy: &RetryPolicy,
    ) -> Result<Accepted, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            let outcome = Client::connect(addr)
                .map_err(ClientError::from)
                .and_then(|mut c| c.schedule(text, opts));
            match outcome {
                Ok(a) => return Ok(a),
                Err(e) if e.retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Io(io::Error::other("no attempts made"))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RejectKind;

    #[test]
    fn backoff_grows_is_capped_and_jittered() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 7,
        };
        let waits: Vec<Duration> = (0..8).map(|a| p.backoff(a)).collect();
        // Exponential-ish growth up to the cap (jitter is ±50%).
        assert!(waits[0] >= Duration::from_millis(5) && waits[0] < Duration::from_millis(15));
        assert!(waits[3] > waits[0]);
        for w in &waits {
            assert!(*w < Duration::from_millis(300), "{w:?} exceeds jittered cap");
        }
        // Deterministic for a fixed seed.
        assert_eq!(p.backoff(2), p.backoff(2));
        // Different seeds de-synchronize.
        let q = RetryPolicy { seed: 8, ..p };
        assert_ne!(p.backoff(1), q.backoff(1));
    }

    #[test]
    fn retryability_follows_the_server_verdict() {
        let rej = |kind| {
            ClientError::Rejected(Rejected {
                id: 1,
                kind,
                msg: String::new(),
                trace: 0,
            })
        };
        assert!(rej(RejectKind::Overloaded).retryable());
        assert!(rej(RejectKind::Timeout).retryable());
        assert!(!rej(RejectKind::Malformed).retryable());
        assert!(!rej(RejectKind::Poisoned).retryable());
        assert!(ClientError::Io(io::ErrorKind::BrokenPipe.into()).retryable());
        assert!(!ClientError::Protocol(ProtoError("x".into())).retryable());
    }
}
