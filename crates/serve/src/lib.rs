//! Scheduler-as-a-service: a crash-isolated, overload-safe daemon
//! around the soft-scheduling flow.
//!
//! The daemon ([`Server`]) accepts behavior graphs in the
//! [`hls_ir::textfmt`] wire format over TCP or a Unix socket, runs the
//! degradation-ladder flow ([`hls_flow::run_flow_degraded`]) on a
//! fixed worker pool, and streams one-line results back. Its load
//! discipline is explicit:
//!
//! * **bounded admission** — requests enter a fixed-capacity queue;
//!   when it is full they are *shed* with a typed, retryable
//!   `overloaded` rejection instead of buffered without bound;
//! * **deadlines** — each request carries (or inherits) a wall-clock
//!   deadline that is threaded into the flow's [`hls_ir::Budget`], so
//!   a slow request degrades down the ladder
//!   (portfolio → single-meta → list → bound-only) rather than
//!   holding a worker hostage;
//! * **crash isolation** — every request runs under
//!   `catch_unwind` inside its own fault-injection
//!   [`hls_ir::faultinject::RunScope`]; a panic poisons *that
//!   request's* answer (`ERR … kind=poisoned`) and nothing else;
//! * **graceful drain** — on SIGTERM the daemon stops accepting,
//!   finishes what is running, and answers what is queued bound-only;
//! * **schedule cache** — answers are cached under a canonical
//!   content hash ([`hls_ir::canon`]); a resubmitted graph answers
//!   from the cache, and an ECO-edited graph that *extends* a cached
//!   one replays only the delta through the incremental engine.
//!
//! The [`Client`] pairs the daemon with retry + exponential backoff
//! that distinguishes retryable rejections (overload, timeout) from
//! terminal ones (malformed input).

// The daemon must not bring itself down on behalf of one request:
// every fallible step on the request path is a typed error.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ScheduleCache};
pub use client::{Client, ClientError, RequestOpts, RetryPolicy};
pub use protocol::{
    Accepted, CacheStatus, ProtoError, Rejected, RejectKind, Request, Response,
};
pub use server::{BindAddr, ServeConfig, ServeStats, Server};
