//! The scheduling daemon.
//!
//! ```text
//! served [tcp:HOST:PORT | unix:/PATH] [--workers N] [--queue N]
//!        [--conns N] [--max-bytes N] [--deadline-ms N]
//!        [--max-deadline-ms N] [--cache N] [--pipeline]
//! ```
//!
//! Listens until SIGTERM/SIGINT, then drains gracefully: stops
//! accepting, lets running requests finish under their deadlines,
//! answers queued ones bound-only, prints final counters and exits 0.

use hls_serve::{BindAddr, ServeConfig, Server};
use std::time::Duration;

/// SIGTERM/SIGINT latch. `signal(2)` is in every libc the std binary
/// already links; declaring it directly avoids a crate dependency.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stopped() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: served [tcp:HOST:PORT | unix:/PATH] [--workers N] [--queue N] [--conns N]\n\
         \x20             [--max-bytes N] [--deadline-ms N] [--max-deadline-ms N] [--cache N]\n\
         \x20             [--pipeline]"
    );
    std::process::exit(2)
}

fn parse_args() -> (BindAddr, ServeConfig) {
    let mut addr = BindAddr::Tcp("127.0.0.1:7411".into());
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        fn numeric(args: &mut dyn Iterator<Item = String>) -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        }
        match arg.as_str() {
            "--workers" => cfg.workers = numeric(&mut args) as usize,
            "--queue" => cfg.queue_capacity = numeric(&mut args) as usize,
            "--conns" => cfg.max_connections = numeric(&mut args) as usize,
            "--max-bytes" => cfg.max_request_bytes = numeric(&mut args) as usize,
            "--deadline-ms" => cfg.default_deadline = Duration::from_millis(numeric(&mut args)),
            "--max-deadline-ms" => cfg.max_deadline = Duration::from_millis(numeric(&mut args)),
            "--cache" => cfg.cache_capacity = numeric(&mut args) as usize,
            "--pipeline" => {
                cfg.flow.pipeline = Some(hls_search::PipelineConfig::default());
            }
            "--help" | "-h" => usage(),
            other => match BindAddr::parse(other) {
                Ok(a) => addr = a,
                Err(e) => {
                    eprintln!("served: {e}");
                    usage()
                }
            },
        }
    }
    (addr, cfg)
}

fn main() {
    let (addr, cfg) = parse_args();
    sig::install();
    let server = match Server::start(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("served: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("served: listening on {}", server.addr());

    while !sig::stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }

    eprintln!("served: draining");
    let stats = server.shutdown(Duration::from_secs(10));
    eprintln!(
        "served: done — received={} admitted={} completed={} shed={} drained={} \
         malformed={} toolarge={} timeouts={} poisoned={} cache_hits={} eco_hits={} \
         bound_only={}",
        stats.received,
        stats.admitted,
        stats.completed,
        stats.shed,
        stats.drain_rejects,
        stats.malformed,
        stats.toolarge,
        stats.timeouts,
        stats.poisoned,
        stats.cache_hits,
        stats.eco_hits,
        stats.bound_only,
    );
}
