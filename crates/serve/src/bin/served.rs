//! The scheduling daemon.
//!
//! ```text
//! served [tcp:HOST:PORT | unix:/PATH] [--workers N] [--queue N]
//!        [--conns N] [--max-bytes N] [--deadline-ms N]
//!        [--max-deadline-ms N] [--cache N] [--pipeline]
//!        [--trace FILE]
//! ```
//!
//! Listens until SIGTERM/SIGINT, then drains gracefully: stops
//! accepting, lets running requests finish under their deadlines,
//! answers queued ones bound-only, prints final counters and exits 0.
//!
//! Log verbosity is controlled by `HLS_LOG`
//! (`error|warn|info|debug|trace|off`, default `info`). `--trace
//! FILE` turns the span recorder on for the daemon's lifetime and
//! writes a Chrome `trace_event` timeline to FILE on shutdown (open
//! it in `chrome://tracing` or Perfetto).

use hls_obs::{obs_error, obs_info};
use hls_serve::{BindAddr, ServeConfig, Server};
use std::time::Duration;

/// SIGTERM/SIGINT latch. `signal(2)` is in every libc the std binary
/// already links; declaring it directly avoids a crate dependency.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stopped() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: served [tcp:HOST:PORT | unix:/PATH] [--workers N] [--queue N] [--conns N]\n\
         \x20             [--max-bytes N] [--deadline-ms N] [--max-deadline-ms N] [--cache N]\n\
         \x20             [--pipeline] [--trace FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> (BindAddr, ServeConfig, Option<std::path::PathBuf>) {
    let mut addr = BindAddr::Tcp("127.0.0.1:7411".into());
    let mut cfg = ServeConfig::default();
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        fn numeric(args: &mut dyn Iterator<Item = String>) -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        }
        match arg.as_str() {
            "--workers" => cfg.workers = numeric(&mut args) as usize,
            "--queue" => cfg.queue_capacity = numeric(&mut args) as usize,
            "--conns" => cfg.max_connections = numeric(&mut args) as usize,
            "--max-bytes" => cfg.max_request_bytes = numeric(&mut args) as usize,
            "--deadline-ms" => cfg.default_deadline = Duration::from_millis(numeric(&mut args)),
            "--max-deadline-ms" => cfg.max_deadline = Duration::from_millis(numeric(&mut args)),
            "--cache" => cfg.cache_capacity = numeric(&mut args) as usize,
            "--pipeline" => {
                cfg.flow.pipeline = Some(hls_search::PipelineConfig::default());
            }
            "--trace" => {
                trace_out = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--help" | "-h" => usage(),
            other => match BindAddr::parse(other) {
                Ok(a) => addr = a,
                Err(e) => {
                    obs_error!("served", "{e}");
                    usage()
                }
            },
        }
    }
    (addr, cfg, trace_out)
}

fn main() {
    let (addr, cfg, trace_out) = parse_args();
    sig::install();
    if trace_out.is_some() {
        hls_obs::set_enabled(true);
    }
    let server = match Server::start(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            obs_error!("served", "bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    obs_info!("served", "listening on {}", server.addr());

    while !sig::stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }

    obs_info!("served", "draining");
    let stats = server.shutdown(Duration::from_secs(10));
    obs_info!(
        "served",
        "done — received={} admitted={} completed={} shed={} drained={} \
         malformed={} toolarge={} timeouts={} poisoned={} cache_hits={} eco_hits={} \
         bound_only={}",
        stats.received,
        stats.admitted,
        stats.completed,
        stats.shed,
        stats.drain_rejects,
        stats.malformed,
        stats.toolarge,
        stats.timeouts,
        stats.poisoned,
        stats.cache_hits,
        stats.eco_hits,
        stats.bound_only,
    );
    if let Some(path) = trace_out {
        let json = hls_obs::export::chrome_trace_json(&hls_obs::recorder::snapshot_events());
        match std::fs::write(&path, json) {
            Ok(()) => obs_info!("served", "trace written to {}", path.display()),
            Err(e) => obs_error!("served", "writing trace {}: {e}", path.display()),
        }
    }
}
