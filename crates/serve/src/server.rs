//! The daemon: admission, bounded queue, worker pool, drain.
//!
//! ```text
//!            accept loop                bounded queue           workers
//!  client ──► conn thread ── header ──► sync_channel(cap) ──► catch_unwind {
//!               │   │                     │ full? shed           RunScope
//!               │   └ size check          ▼                      cache / ECO
//!               │     toolarge         typed ERR                 run_flow_degraded
//!               ▼                      overloaded                }
//!             writer ◄──────────────── one-line response ────────┘
//! ```
//!
//! Load discipline in one sentence: *everything unbounded is
//! refused, everything slow is degraded, everything crashing is
//! contained.* The queue has a fixed capacity and [`try_send`]
//! semantics (shed, never buffer); the connection table has a fixed
//! capacity; request bodies have a byte limit enforced before the
//! body is read; deadlines become [`hls_ir::Budget`] wall clocks so
//! the ladder degrades instead of overrunning; panics are caught per
//! request under a `serve:req<id>` fault-injection scope.
//!
//! [`try_send`]: std::sync::mpsc::SyncSender::try_send

use crate::cache::{CachedAnswer, CacheStats, ScheduleCache};
use crate::protocol::{
    self, Accepted, CacheStatus, RejectKind, Rejected, Request, Response, MAX_HEADER_BYTES,
};
use hls_flow::{eco_flow, run_flow_degraded, EcoBase, FlowConfig, FlowError};
use hls_ir::faultinject::{self, RunScope};
use hls_ir::textfmt::{self, Limits};
use hls_ir::{canon, Budget};
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recovers the inner value of a poisoned lock: the daemon's shared
/// state (stats, cache, writers) stays usable after a caught panic.
fn unpoisoned<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindAddr {
    /// `tcp:<host>:<port>` (port 0 picks an ephemeral port).
    Tcp(String),
    /// `unix:<path>` (a stale socket file is replaced).
    #[cfg(unix)]
    Unix(PathBuf),
}

impl BindAddr {
    /// Parses `tcp:host:port` or `unix:/path`.
    pub fn parse(s: &str) -> Result<BindAddr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.rsplit_once(':').is_none() {
                return Err(format!("tcp address `{rest}` needs host:port"));
            }
            return Ok(BindAddr::Tcp(rest.to_string()));
        }
        #[cfg(unix)]
        if let Some(rest) = s.strip_prefix("unix:") {
            return Ok(BindAddr::Unix(PathBuf::from(rest)));
        }
        Err(format!("bad bind address `{s}` (want tcp:host:port or unix:/path)"))
    }
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindAddr::Tcp(a) => write!(f, "tcp:{a}"),
            #[cfg(unix)]
            BindAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A connected byte stream over either transport.
pub(crate) enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }

    pub(crate) fn connect(addr: &BindAddr) -> io::Result<Stream> {
        match addr {
            BindAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(Stream::Tcp),
            #[cfg(unix)]
            BindAddr::Unix(p) => UnixStream::connect(p).map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads running the flow.
    pub workers: usize,
    /// Admission queue capacity; a full queue sheds with
    /// [`RejectKind::Overloaded`].
    pub queue_capacity: usize,
    /// Concurrent connection cap; beyond it new connections are
    /// refused with [`RejectKind::Overloaded`].
    pub max_connections: usize,
    /// Request body byte cap (also the parser's
    /// [`Limits::max_bytes`]).
    pub max_request_bytes: usize,
    /// Deadline applied when the request carries none.
    pub default_deadline: Duration,
    /// Upper clamp on any requested deadline.
    pub max_deadline: Duration,
    /// Schedule-cache entry cap (0 disables the cache).
    pub cache_capacity: usize,
    /// Flow configuration shared by all requests. Its `budget` is
    /// combined (pointwise tighter) with each request's own deadline
    /// budget.
    pub flow: FlowConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_connections: 64,
            max_request_bytes: 1 << 20,
            default_deadline: Duration::from_millis(2_000),
            max_deadline: Duration::from_secs(30),
            cache_capacity: 256,
            flow: FlowConfig::default(),
        }
    }
}

/// Counter snapshot of a running (or stopped) daemon.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Request headers successfully read.
    pub received: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests answered with an `OK` line.
    pub completed: u64,
    /// Requests shed by the full queue or connection table.
    pub shed: u64,
    /// Requests refused because the daemon was draining.
    pub drain_rejects: u64,
    /// Malformed headers or bodies.
    pub malformed: u64,
    /// Requests over the size limits.
    pub toolarge: u64,
    /// Deadline expiries (in queue or in flow).
    pub timeouts: u64,
    /// Requests whose flow panicked (caught; answered `poisoned` or
    /// degraded).
    pub poisoned: u64,
    /// Exact cache hits.
    pub cache_hits: u64,
    /// ECO-delta replays answered from a cached base.
    pub eco_hits: u64,
    /// Bound-only answers (deepest ladder rung).
    pub bound_only: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Schedule-cache counters.
    pub cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    drain_rejects: AtomicU64,
    malformed: AtomicU64,
    toolarge: AtomicU64,
    timeouts: AtomicU64,
    poisoned: AtomicU64,
    cache_hits: AtomicU64,
    eco_hits: AtomicU64,
    bound_only: AtomicU64,
    queue_depth: AtomicU64,
    in_flight: AtomicU64,
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// How often blocked threads wake to poll the lifecycle state.
const POLL: Duration = Duration::from_millis(25);

struct Inner {
    state: AtomicU8,
    stats: Counters,
    conns: AtomicUsize,
    cache: Mutex<ScheduleCache>,
    cfg: ServeConfig,
    limits: Limits,
}

impl Inner {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }
}

/// One admitted unit of work.
struct Job {
    req: Request,
    text: String,
    /// Wall deadline on the fault-injectable clock, so injected skew
    /// exercises the same expiry paths real overload does.
    deadline: Instant,
    /// When the job entered the queue (real clock), for the
    /// queue-wait histogram.
    enqueued: Instant,
    /// Trace id stamped on whatever response answers this request.
    trace: u64,
    writer: Arc<Mutex<Stream>>,
}

/// A running daemon. Dropping the handle without calling
/// [`shutdown`](Server::shutdown) stops it non-gracefully.
pub struct Server {
    inner: Arc<Inner>,
    addr: BindAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    tx: Option<SyncSender<Job>>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds `addr` and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from binding or thread spawning.
    pub fn start(addr: &BindAddr, cfg: ServeConfig) -> io::Result<Server> {
        let (listener, bound, unix_path) = match addr {
            BindAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let actual = l.local_addr()?;
                (Listener::Tcp(l), BindAddr::Tcp(actual.to_string()), None)
            }
            #[cfg(unix)]
            BindAddr::Unix(p) => {
                // A stale socket file from a previous run blocks the
                // bind; replacing it is the conventional remedy.
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                (Listener::Unix(l), BindAddr::Unix(p.clone()), Some(p.clone()))
            }
        };
        listener.set_nonblocking(true)?;

        let limits = Limits {
            max_bytes: cfg.max_request_bytes,
            ..Limits::serving()
        };
        let inner = Arc::new(Inner {
            state: AtomicU8::new(RUNNING),
            stats: Counters::default(),
            conns: AtomicUsize::new(0),
            cache: Mutex::new(ScheduleCache::new(cfg.cache_capacity, limits.max_ops)),
            cfg: cfg.clone(),
            limits,
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for w in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, &rx))?,
            );
        }

        let accept = {
            let inner = Arc::clone(&inner);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&inner, &listener, &tx))?
        };

        Ok(Server {
            inner,
            addr: bound,
            accept: Some(accept),
            workers,
            tx: Some(tx),
            #[cfg(unix)]
            unix_path,
        })
    }

    /// The actually bound address (resolves `port 0`).
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    /// Stops admitting: new connections and new requests are refused
    /// with `draining`; queued work is answered bound-only; running
    /// work finishes under its own deadline.
    pub fn drain(&self) {
        let _ = self.inner.state.compare_exchange(
            RUNNING,
            DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Number of admitted-but-unanswered requests (queued or in
    /// flight).
    pub fn pending(&self) -> u64 {
        let s = &self.inner.stats;
        s.queue_depth.load(Ordering::Acquire) + s.in_flight.load(Ordering::Acquire)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            received: s.received.load(Ordering::Relaxed),
            admitted: s.admitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            drain_rejects: s.drain_rejects.load(Ordering::Relaxed),
            malformed: s.malformed.load(Ordering::Relaxed),
            toolarge: s.toolarge.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            poisoned: s.poisoned.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            eco_hits: s.eco_hits.load(Ordering::Relaxed),
            bound_only: s.bound_only.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            cache: unpoisoned(self.inner.cache.lock()).stats(),
        }
    }

    /// Drains, waits for in-flight work (bounded by `grace`), stops
    /// every thread and returns the final counters.
    pub fn shutdown(mut self, grace: Duration) -> ServeStats {
        self.drain();
        let gave_up = Instant::now() + grace;
        while self.pending() > 0 && Instant::now() < gave_up {
            std::thread::sleep(POLL);
        }
        self.inner.state.store(STOPPED, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Dropping the sender lets workers observe disconnection once
        // the queue is empty; connection threads exit on their next
        // poll tick.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(p) = self.unix_path.take() {
            let _ = std::fs::remove_file(p);
        }
        self.stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.state.store(STOPPED, Ordering::Release);
        drop(self.tx.take());
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(p) = self.unix_path.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn send_line(writer: &Arc<Mutex<Stream>>, resp: &Response) {
    let line = protocol::format_response(resp);
    let mut w = unpoisoned(writer.lock());
    // A vanished client is its own problem; the daemon must not be.
    let _ = w.write_all(line.as_bytes()).and_then(|()| w.flush());
}

fn accept_loop(inner: &Arc<Inner>, listener: &Listener, tx: &SyncSender<Job>) {
    loop {
        if inner.state() == STOPPED {
            return;
        }
        match listener.accept() {
            Ok(stream) => {
                let refuse = |kind: RejectKind, msg: &str| {
                    let resp = Response::Rejected(Rejected {
                        id: 0,
                        kind,
                        msg: msg.to_string(),
                        trace: 0,
                    });
                    if let Ok(clone) = stream.try_clone() {
                        send_line(&Arc::new(Mutex::new(clone)), &resp);
                    }
                };
                if inner.state() != RUNNING {
                    inner.stats.drain_rejects.fetch_add(1, Ordering::Relaxed);
                    refuse(RejectKind::Draining, "server is draining");
                    continue;
                }
                if inner.conns.load(Ordering::Acquire) >= inner.cfg.max_connections {
                    inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                    refuse(
                        RejectKind::Overloaded,
                        &format!(
                            "connection table full (capacity {})",
                            inner.cfg.max_connections
                        ),
                    );
                    continue;
                }
                inner.conns.fetch_add(1, Ordering::AcqRel);
                hls_obs::obs_gauge_add!(Connections, 1);
                let inner2 = Arc::clone(inner);
                let tx2 = tx.clone();
                let spawned = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        connection_loop(&inner2, stream, &tx2);
                        inner2.conns.fetch_sub(1, Ordering::AcqRel);
                        hls_obs::obs_gauge_add!(Connections, -1);
                    });
                if spawned.is_err() {
                    inner.conns.fetch_sub(1, Ordering::AcqRel);
                    hls_obs::obs_gauge_add!(Connections, -1);
                    inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes, tolerating
/// read timeouts (polling the stop flag between them). `Ok(None)`
/// means clean EOF before any byte.
fn read_line_bounded(
    inner: &Inner,
    r: &mut BufReader<Stream>,
    max: usize,
) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if inner.state() == STOPPED {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "stopping"));
        }
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                if buf.len() >= max {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("header exceeds {max} bytes"),
                    ));
                }
                buf.push(byte[0]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads exactly `n` bytes, tolerating read timeouts.
fn read_exact_bounded(inner: &Inner, r: &mut BufReader<Stream>, n: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    let mut got = 0;
    while got < n {
        if inner.state() == STOPPED {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "stopping"));
        }
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(k) => got += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
    Ok(buf)
}

fn connection_loop(inner: &Arc<Inner>, stream: Stream, tx: &SyncSender<Job>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    loop {
        let line = match read_line_bounded(inner, &mut reader, MAX_HEADER_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        // STATS is answered inline by the connection thread — it
        // never enters the queue, so it works even when the daemon is
        // draining or the workers are saturated. That makes it a
        // trustworthy probe of an unhealthy daemon.
        if protocol::is_stats_header(&line) {
            match protocol::parse_stats_header(&line) {
                Ok(sid) => {
                    hls_obs::obs_count!(StatsQueries);
                    let json = hls_obs::export::metrics_json(&hls_obs::metrics::snapshot());
                    send_line(&writer, &Response::Stats(protocol::StatsReply { id: sid, json }));
                }
                Err(e) => {
                    inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    send_line(
                        &writer,
                        &Response::Rejected(Rejected {
                            id: 0,
                            kind: RejectKind::Malformed,
                            msg: e.to_string(),
                            trace: 0,
                        }),
                    );
                }
            }
            continue;
        }
        let req = match protocol::parse_request_header(&line) {
            Ok(r) => r,
            Err(e) => {
                // The body length is unknown for an unparsable
                // header, so re-framing is impossible: answer and
                // close.
                inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
                send_line(
                    &writer,
                    &Response::Rejected(Rejected {
                        id: 0,
                        kind: RejectKind::Malformed,
                        msg: e.to_string(),
                        trace: 0,
                    }),
                );
                return;
            }
        };
        inner.stats.received.fetch_add(1, Ordering::Relaxed);
        hls_obs::obs_count!(ServeRequests);
        // The trace id is minted at admission so every response for
        // this request — including rejections — carries it.
        let trace = hls_obs::next_trace_id();

        if req.bytes > inner.cfg.max_request_bytes {
            // Refusing before reading the body is the point: an
            // oversized declaration never occupies memory. The
            // connection closes because the unread body cannot be
            // skipped within bounded work.
            inner.stats.toolarge.fetch_add(1, Ordering::Relaxed);
            send_line(
                &writer,
                &Response::Rejected(Rejected {
                    id: req.id,
                    kind: RejectKind::TooLarge,
                    msg: format!(
                        "declared body of {} bytes exceeds limit {}",
                        req.bytes, inner.cfg.max_request_bytes
                    ),
                    trace,
                }),
            );
            return;
        }
        let body = match read_exact_bounded(inner, &mut reader, req.bytes) {
            Ok(b) => b,
            Err(e) => {
                inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
                send_line(
                    &writer,
                    &Response::Rejected(Rejected {
                        id: req.id,
                        kind: RejectKind::Malformed,
                        msg: format!("truncated body: {e}"),
                        trace,
                    }),
                );
                return;
            }
        };

        if inner.state() != RUNNING {
            inner.stats.drain_rejects.fetch_add(1, Ordering::Relaxed);
            send_line(
                &writer,
                &Response::Rejected(Rejected {
                    id: req.id,
                    kind: RejectKind::Draining,
                    msg: "server is draining".into(),
                    trace,
                }),
            );
            continue;
        }

        let ms = req
            .deadline_ms
            .map_or(inner.cfg.default_deadline, Duration::from_millis)
            .min(inner.cfg.max_deadline);
        let job = Job {
            deadline: faultinject::now() + ms,
            req,
            text: String::from_utf8_lossy(&body).into_owned(),
            enqueued: Instant::now(),
            trace,
            writer: Arc::clone(&writer),
        };
        let id = job.req.id;
        // Inflate the depth *before* the send: a worker may dequeue
        // the job before this thread runs again, and its decrement
        // must never observe the counter at zero.
        inner.stats.queue_depth.fetch_add(1, Ordering::AcqRel);
        hls_obs::obs_gauge_add!(QueueDepth, 1);
        match tx.try_send(job) {
            Ok(()) => {
                inner.stats.admitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(job)) => {
                inner.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
                hls_obs::obs_gauge_add!(QueueDepth, -1);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                send_line(
                    &job.writer,
                    &Response::Rejected(Rejected {
                        id,
                        kind: RejectKind::Overloaded,
                        msg: format!(
                            "admission queue full (capacity {})",
                            inner.cfg.queue_capacity
                        ),
                        trace,
                    }),
                );
            }
            Err(TrySendError::Disconnected(job)) => {
                inner.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
                hls_obs::obs_gauge_add!(QueueDepth, -1);
                inner.stats.drain_rejects.fetch_add(1, Ordering::Relaxed);
                send_line(
                    &job.writer,
                    &Response::Rejected(Rejected {
                        id,
                        kind: RejectKind::Draining,
                        msg: "server is shutting down".into(),
                        trace,
                    }),
                );
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Holding the lock across the timed recv serializes *dequeue*,
        // not processing; the timeout doubles as the stop-flag poll.
        let job = {
            let rx = unpoisoned(rx.lock());
            rx.recv_timeout(POLL)
        };
        let job = match job {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if inner.state() == STOPPED {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        inner.stats.in_flight.fetch_add(1, Ordering::AcqRel);
        inner.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
        hls_obs::obs_gauge_add!(InFlight, 1);
        hls_obs::obs_gauge_add!(QueueDepth, -1);
        hls_obs::obs_hist!(ServeQueueWaitUs, job.enqueued.elapsed().as_micros() as u64);

        let id = job.req.id;
        let trace = job.trace;
        let writer = Arc::clone(&job.writer);
        // The service span carries the trace id as its argument, so a
        // Chrome timeline row can be joined against the `trace=` token
        // the client saw on its OK/ERR line.
        let _req_span = hls_obs::obs_span!(ServeRequest, "", trace);
        // The per-request unwind boundary: a panic anywhere below —
        // parser, cache, flow — poisons this answer and nothing else.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _scope = RunScope::enter(&format!("serve:req{id}"));
            handle(inner, &job)
        }));
        let mut resp = outcome.unwrap_or_else(|payload| {
            let msg = threaded_sched::panic_message(payload.as_ref());
            hls_obs::obs_count!(ServePanics);
            hls_obs::obs_error!("serve", "request {id} (trace {trace:016x}) panicked: {msg}");
            // Post-mortem before the evidence scrolls away: the flight
            // recorder freezes the ring and counters as of the panic.
            hls_obs::flight::dump(&format!("serve request {id} panicked: {msg}"));
            Response::Rejected(Rejected {
                id,
                kind: RejectKind::Poisoned,
                msg,
                trace: 0,
            })
        });
        resp.set_trace(trace);
        match &resp {
            Response::Accepted(_) => {
                inner.stats.completed.fetch_add(1, Ordering::Relaxed);
                hls_obs::obs_count!(ServeCompleted);
            }
            Response::Rejected(r) => {
                let c = match r.kind {
                    RejectKind::Timeout => &inner.stats.timeouts,
                    RejectKind::Poisoned => &inner.stats.poisoned,
                    RejectKind::Malformed | RejectKind::Unsupported => &inner.stats.malformed,
                    RejectKind::TooLarge => &inner.stats.toolarge,
                    _ => &inner.stats.drain_rejects,
                };
                c.fetch_add(1, Ordering::Relaxed);
                hls_obs::obs_count!(ServeRejected);
            }
            Response::Stats(_) => {}
        }
        send_line(&writer, &resp);
        inner.stats.in_flight.fetch_sub(1, Ordering::AcqRel);
        hls_obs::obs_gauge_add!(InFlight, -1);
    }
}

fn map_flow_error(id: u64, e: &FlowError) -> Rejected {
    let kind = match e {
        FlowError::Malformed(_) | FlowError::Lang(_) => RejectKind::Malformed,
        FlowError::NeedsPipeline => RejectKind::Unsupported,
        FlowError::Timeout => RejectKind::Timeout,
        FlowError::Poisoned(_) => RejectKind::Poisoned,
        FlowError::ResourceExhausted(_) => RejectKind::TooLarge,
        FlowError::Sched(_) | FlowError::Invalid(_) | FlowError::Lifetime(_) => {
            RejectKind::Internal
        }
    };
    Rejected {
        id,
        kind,
        msg: e.to_string(),
        trace: 0,
    }
}

/// Schedules one admitted request. Runs inside the worker's unwind
/// boundary and fault-injection scope.
fn handle(inner: &Inner, job: &Job) -> Response {
    let started = Instant::now();
    let id = job.req.id;
    let draining = inner.state() != RUNNING;

    if faultinject::now() >= job.deadline {
        return Response::Rejected(Rejected {
            id,
            kind: RejectKind::Timeout,
            msg: "deadline expired while queued".into(),
            trace: 0,
        });
    }

    let graph = match textfmt::from_text_limited(&job.text, &inner.limits) {
        Ok(g) => g,
        Err(e) => {
            return Response::Rejected(Rejected {
                id,
                kind: RejectKind::Malformed,
                msg: e.to_string(),
                trace: 0,
            })
        }
    };
    let hash = canon::graph_hash(&graph);

    // Exact-hit fast path. The cache key is the canonical graph alone
    // because the flow configuration is fixed per server instance.
    if !job.req.nocache {
        if let Some(a) = unpoisoned(inner.cache.lock()).lookup(hash, &graph) {
            inner.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            hls_obs::obs_count!(CacheHits);
            return Response::Accepted(Accepted {
                id,
                rung: a.rung,
                states: Some(a.states),
                lower_bound: a.lower_bound,
                cache: CacheStatus::Hit,
                degraded: 0,
                micros: started.elapsed().as_micros() as u64,
                trace: 0,
            });
        }
    }

    // Drain mode answers whatever is already queued bound-only: an
    // honest, near-free answer beats an abandoned request.
    let budget = if draining {
        Budget::steps(0)
    } else {
        let b = Budget::deadline_at(job.deadline);
        match job.req.steps {
            Some(q) => b.and_steps(q),
            None => b,
        }
    };

    // ECO fast path: the request names a cached base it extends —
    // graft only the delta onto the cached post-flow state through
    // the incremental engine. Nothing already absorbed (spills, wire
    // delays, placement) is recomputed.
    if let (Some(base), false, false) = (job.req.base, draining, graph.has_loop_edges()) {
        let eco_base = unpoisoned(inner.cache.lock()).base_for_eco(base, &graph);
        if let Some(eco_base) = eco_base {
            match eco_flow(eco_base, &graph, &inner.cfg.flow, &budget) {
                Ok((out, next_base)) => {
                    inner.stats.eco_hits.fetch_add(1, Ordering::Relaxed);
                    let lb = out.scheduler.schedule_lower_bound();
                    let states = out.report.final_states;
                    if !job.req.nocache {
                        unpoisoned(inner.cache.lock()).insert(
                            hash,
                            graph,
                            next_base,
                            CachedAnswer {
                                rung: "eco".into(),
                                states,
                                lower_bound: lb,
                            },
                        );
                    }
                    return Response::Accepted(Accepted {
                        id,
                        rung: "eco".into(),
                        states: Some(states),
                        lower_bound: lb,
                        cache: CacheStatus::Eco,
                        degraded: 0,
                        micros: started.elapsed().as_micros() as u64,
                        trace: 0,
                    });
                }
                Err(FlowError::Timeout) => {
                    return Response::Rejected(map_flow_error(id, &FlowError::Timeout))
                }
                // Any other graft failure falls through to the cold
                // path: the request is still answerable from scratch.
                Err(_) => {}
            }
        }
    }

    let cfg = FlowConfig {
        budget: inner.cfg.flow.budget.tighter(&budget),
        ..inner.cfg.flow.clone()
    };
    match run_flow_degraded(&graph, &cfg) {
        Ok(out) => {
            let rung = out.rung.name().to_string();
            let states = out.outcome.as_ref().map(|o| o.report.final_states);
            if out.outcome.is_none() {
                inner.stats.bound_only.fetch_add(1, Ordering::Relaxed);
            }
            if let (Some(o), false, false) = (&out.outcome, job.req.nocache, draining) {
                let eco_base = EcoBase::of_outcome(graph.len(), o);
                unpoisoned(inner.cache.lock()).insert(
                    hash,
                    graph,
                    eco_base,
                    CachedAnswer {
                        rung: rung.clone(),
                        states: o.report.final_states,
                        lower_bound: out.lower_bound,
                    },
                );
            }
            Response::Accepted(Accepted {
                id,
                rung,
                states,
                lower_bound: out.lower_bound,
                cache: CacheStatus::Miss,
                degraded: out.degraded.len(),
                micros: started.elapsed().as_micros() as u64,
                trace: 0,
            })
        }
        Err(e) => Response::Rejected(map_flow_error(id, &e)),
    }
}
