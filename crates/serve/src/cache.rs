//! The schedule cache: canonical-hash keyed, LRU-bounded,
//! collision-safe.
//!
//! Keys are [`hls_ir::canon::graph_hash`] values of the *canonical
//! form* of a behavior (labels and operand annotations excluded), so
//! a graph resubmitted under different names still hits. The hash is
//! an index, never an oracle: every hit is confirmed with
//! [`hls_ir::canon::canon_eq`] against the stored graph, so a
//! 128-bit collision costs one failed probe, not a wrong schedule.
//!
//! Each entry keeps an [`EcoBase`] — the post-flow scheduler state,
//! id map and floorplan — alongside the answer summary, which is what
//! makes the ECO fast path possible: a request whose graph
//! [`extends`](hls_ir::PrecedenceGraph::extends) a cached base clones
//! that state and grafts only the delta
//! ([`hls_flow::eco_flow`]).

use hls_flow::EcoBase;
use hls_ir::canon;
use hls_ir::PrecedenceGraph;
use std::collections::HashMap;

/// The cached answer for one canonical graph.
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// Rung tag the original answer carried.
    pub rung: String,
    /// Final schedule length.
    pub states: u64,
    /// Certified lower bound.
    pub lower_bound: u64,
}

struct Entry {
    graph: PrecedenceGraph,
    base: EcoBase,
    answer: CachedAnswer,
    stamp: u64,
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Confirmed exact hits.
    pub hits: u64,
    /// Probes that found no (confirmed) entry.
    pub misses: u64,
    /// Hash matches whose stored graph was *not* canonically equal —
    /// a 128-bit collision, counted to make "never trust the hash
    /// alone" observable.
    pub collisions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

/// Bounded LRU cache of schedules, keyed by canonical content hash.
pub struct ScheduleCache {
    map: HashMap<u128, Entry>,
    capacity: usize,
    /// Entries above this op count are not retained (a snapshot of a
    /// huge graph is memory the admission queue already refused to
    /// hold).
    max_entry_ops: usize,
    tick: u64,
    stats: CacheStats,
}

impl ScheduleCache {
    /// An empty cache retaining at most `capacity` entries of at most
    /// `max_entry_ops` operations each. `capacity == 0` disables
    /// caching entirely.
    pub fn new(capacity: usize, max_entry_ops: usize) -> ScheduleCache {
        ScheduleCache {
            map: HashMap::new(),
            capacity,
            max_entry_ops,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn touch(tick: &mut u64, e: &mut Entry) {
        *tick += 1;
        e.stamp = *tick;
    }

    /// Looks up an exact answer for `g` under `hash`, confirming the
    /// hit canonically.
    pub fn lookup(&mut self, hash: u128, g: &PrecedenceGraph) -> Option<CachedAnswer> {
        match self.map.get_mut(&hash) {
            Some(e) if canon::canon_eq(&e.graph, g) => {
                Self::touch(&mut self.tick, e);
                self.stats.hits += 1;
                Some(e.answer.clone())
            }
            Some(_) => {
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns the [`EcoBase`] for the cached base `hash` iff `target`
    /// extends the stored graph — the entry ticket for the ECO graft
    /// path. Does not count as a hit or miss; the caller reports the
    /// graft outcome.
    pub fn base_for_eco(&mut self, hash: u128, target: &PrecedenceGraph) -> Option<EcoBase> {
        let e = self.map.get_mut(&hash)?;
        if !target.extends(&e.graph) {
            return None;
        }
        Self::touch(&mut self.tick, e);
        Some(e.base.clone())
    }

    /// Inserts (or refreshes) an answer. Oversized graphs and a
    /// zero-capacity cache are silently skipped.
    pub fn insert(
        &mut self,
        hash: u128,
        graph: PrecedenceGraph,
        base: EcoBase,
        answer: CachedAnswer,
    ) {
        if self.capacity == 0 || graph.len() > self.max_entry_ops {
            return;
        }
        self.tick += 1;
        let stamp = self.tick;
        self.map.insert(
            hash,
            Entry {
                graph,
                base,
                answer,
                stamp,
            },
        );
        if self.map.len() > self.capacity {
            // O(n) eviction scan; capacity is small (hundreds) and
            // insertion is off the cache-hit fast path.
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_flow::Floorplan;
    use hls_ir::bench_graphs;
    use hls_ir::{OpId, ResourceSet};
    use threaded_sched::ThreadedScheduler;

    fn entry_for(g: &PrecedenceGraph) -> (u128, EcoBase, CachedAnswer) {
        let ts = ThreadedScheduler::new(g.clone(), ResourceSet::uniform(2)).unwrap();
        let base = EcoBase {
            scheduler: ts,
            map: (0..g.len()).map(OpId::from_index).collect(),
            floorplan: Floorplan::row_major(2, 2, 1),
        };
        let answer = CachedAnswer {
            rung: "portfolio".into(),
            states: 17,
            lower_bound: 9,
        };
        (canon::graph_hash(g), base, answer)
    }

    #[test]
    fn hit_requires_canonical_equality_not_just_the_hash() {
        let g = bench_graphs::ewf();
        let (h, base, answer) = entry_for(&g);
        let mut cache = ScheduleCache::new(4, 10_000);
        cache.insert(h, g.clone(), base, answer);

        assert!(cache.lookup(h, &g).is_some());
        // Same hash key, different graph: the probe must fail and be
        // counted as a collision, never answered.
        let other = bench_graphs::fir();
        assert!(cache.lookup(h, &other).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.collisions), (1, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_touched_entry() {
        let graphs = [
            bench_graphs::ewf(),
            bench_graphs::fir(),
            bench_graphs::ar(),
        ];
        let mut cache = ScheduleCache::new(2, 10_000);
        let hashes: Vec<u128> = graphs
            .iter()
            .map(|g| {
                let (h, base, a) = entry_for(g);
                cache.insert(h, g.clone(), base, a);
                h
            })
            .collect();
        assert_eq!(cache.len(), 2);
        // ewf was inserted first and never touched again → evicted.
        assert!(cache.lookup(hashes[0], &graphs[0]).is_none());
        assert!(cache.lookup(hashes[2], &graphs[2]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eco_ticket_requires_extension() {
        let g = bench_graphs::ewf();
        let (h, base, answer) = entry_for(&g);
        let mut cache = ScheduleCache::new(4, 10_000);
        cache.insert(h, g.clone(), base, answer);

        // The graph trivially extends itself.
        assert!(cache.base_for_eco(h, &g).is_some());
        // An unrelated graph is not an extension.
        assert!(cache.base_for_eco(h, &bench_graphs::fir()).is_none());
        // An unknown base yields nothing.
        assert!(cache.base_for_eco(h ^ 1, &g).is_none());
    }

    #[test]
    fn oversized_and_zero_capacity_entries_are_not_retained() {
        let g = bench_graphs::ewf();
        let (h, base, answer) = entry_for(&g);
        let mut off = ScheduleCache::new(0, 10_000);
        off.insert(h, g.clone(), base.clone(), answer.clone());
        assert!(off.is_empty());
        let mut tiny = ScheduleCache::new(4, 3);
        tiny.insert(h, g, base, answer);
        assert!(tiny.is_empty());
    }
}
