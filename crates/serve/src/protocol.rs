//! The line-framed request/response protocol.
//!
//! A request is one ASCII header line followed by exactly
//! `bytes=<n>` bytes of [`hls_ir::textfmt`] body:
//!
//! ```text
//! REQ id=7 bytes=123 deadline_ms=250 steps=100000 base=<32 hex> nocache=1
//! op 0 add 1 a
//! ...
//! ```
//!
//! Only `id` and `bytes` are mandatory. A response is a single line,
//! either an answer or a typed rejection:
//!
//! ```text
//! OK id=7 rung=portfolio states=17 lb=17 cache=miss degraded=0 us=812
//! ERR id=7 kind=overloaded retry=1 msg=admission queue full
//! ```
//!
//! `retry` is the server's own verdict on whether resubmitting the
//! identical request can succeed; clients honor it instead of
//! guessing from the kind name.

use std::fmt;

/// Hard cap on a header line, body excluded. Generous: a header is a
/// handful of short `k=v` tokens.
pub const MAX_HEADER_BYTES: usize = 512;

/// A parsed request header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response line.
    pub id: u64,
    /// Exact body length in bytes that follows the header line.
    pub bytes: usize,
    /// Wall-clock deadline for the answer, in milliseconds from
    /// admission. `None` inherits the server default.
    pub deadline_ms: Option<u64>,
    /// Deterministic step quota combined into the budget, for
    /// reproducible degradation independent of wall time.
    pub steps: Option<u64>,
    /// Canonical hash of a previously scheduled graph this request
    /// claims to extend — enables the ECO-delta fast path.
    pub base: Option<u128>,
    /// Bypass the schedule cache for this request (load generators,
    /// benchmarking).
    pub nocache: bool,
}

/// How the answer was obtained with respect to the schedule cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Scheduled from scratch.
    Miss,
    /// Answered verbatim from a cached identical graph.
    Hit,
    /// Replayed as an ECO delta on top of a cached base schedule.
    Eco,
}

impl CacheStatus {
    /// Wire tag.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Hit => "hit",
            CacheStatus::Eco => "eco",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<CacheStatus> {
        match s {
            "miss" => Some(CacheStatus::Miss),
            "hit" => Some(CacheStatus::Hit),
            "eco" => Some(CacheStatus::Eco),
            _ => None,
        }
    }
}

/// A successful answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Accepted {
    /// Echoed request id.
    pub id: u64,
    /// Which ladder rung (or replay path) produced the answer —
    /// `portfolio`, `single-meta`, `list-schedule`, `bound-only` or
    /// `eco`.
    pub rung: String,
    /// Final schedule length in control states; absent for
    /// bound-only answers.
    pub states: Option<u64>,
    /// Certified lower bound on the schedule length.
    pub lower_bound: u64,
    /// Cache disposition of this answer.
    pub cache: CacheStatus,
    /// Number of ladder rungs abandoned before this answer.
    pub degraded: usize,
    /// Server-side service time in microseconds (queue wait
    /// excluded).
    pub micros: u64,
    /// Server-assigned trace id tying this response to its spans in
    /// the flight recorder and Chrome trace (`trace=<hex>` on the
    /// wire). `0` when the server did not assign one.
    pub trace: u64,
}

/// Typed rejection categories. Each knows whether a retry of the
/// identical request can succeed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectKind {
    /// The admission queue (or connection table) is full — load was
    /// shed. Retry after backoff.
    Overloaded,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
    /// The request exceeds the configured size limits. Terminal.
    TooLarge,
    /// The header or body failed to parse (position in `msg`).
    /// Terminal.
    Malformed,
    /// The behavior needs a capability the server has disabled
    /// (e.g. loop pipelining). Terminal.
    Unsupported,
    /// The deadline expired before an answer was produced. Retry
    /// with a larger deadline.
    Timeout,
    /// The request panicked inside the flow; the worker survived,
    /// the request did not. Terminal (deterministic panics repeat).
    Poisoned,
    /// Unexpected server-side failure. Terminal.
    Internal,
}

impl RejectKind {
    /// Wire tag.
    pub fn name(self) -> &'static str {
        match self {
            RejectKind::Overloaded => "overloaded",
            RejectKind::Draining => "draining",
            RejectKind::TooLarge => "toolarge",
            RejectKind::Malformed => "malformed",
            RejectKind::Unsupported => "unsupported",
            RejectKind::Timeout => "timeout",
            RejectKind::Poisoned => "poisoned",
            RejectKind::Internal => "internal",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<RejectKind> {
        match s {
            "overloaded" => Some(RejectKind::Overloaded),
            "draining" => Some(RejectKind::Draining),
            "toolarge" => Some(RejectKind::TooLarge),
            "malformed" => Some(RejectKind::Malformed),
            "unsupported" => Some(RejectKind::Unsupported),
            "timeout" => Some(RejectKind::Timeout),
            "poisoned" => Some(RejectKind::Poisoned),
            "internal" => Some(RejectKind::Internal),
            _ => None,
        }
    }

    /// Can resubmitting the identical request succeed?
    pub fn retryable(self) -> bool {
        matches!(
            self,
            RejectKind::Overloaded | RejectKind::Draining | RejectKind::Timeout
        )
    }
}

/// A typed rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Echoed request id (0 when the id could not be parsed).
    pub id: u64,
    /// Category.
    pub kind: RejectKind,
    /// Human-readable detail. Single line on the wire.
    pub msg: String,
    /// Server-assigned trace id (see [`Accepted::trace`]); `0` when
    /// absent — client-side rejections never carry one.
    pub trace: u64,
}

/// A live telemetry snapshot, answering a `STATS` query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsReply {
    /// Echoed query id.
    pub id: u64,
    /// The flat JSON metrics snapshot (single line, no newlines).
    pub json: String,
}

/// One response line, parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `OK …`
    Accepted(Accepted),
    /// `ERR …`
    Rejected(Rejected),
    /// `STATS …` — the answer to a `STATS` query.
    Stats(StatsReply),
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Accepted(a) => a.id,
            Response::Rejected(r) => r.id,
            Response::Stats(s) => s.id,
        }
    }

    /// Stamps the server-assigned trace id onto an answer or
    /// rejection (no-op for stats replies, which carry no trace).
    pub fn set_trace(&mut self, trace: u64) {
        match self {
            Response::Accepted(a) => a.trace = trace,
            Response::Rejected(r) => r.trace = trace,
            Response::Stats(_) => {}
        }
    }
}

/// A malformed protocol line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

/// Splits a `key=value` token.
fn kv(tok: &str) -> Result<(&str, &str), ProtoError> {
    tok.split_once('=')
        .ok_or_else(|| err(format!("expected key=value, got `{tok}`")))
}

fn parse_u64(key: &str, v: &str) -> Result<u64, ProtoError> {
    v.parse()
        .map_err(|_| err(format!("bad {key} value `{v}`")))
}

/// Formats a request header line (newline-terminated).
pub fn format_request_header(r: &Request) -> String {
    let mut s = format!("REQ id={} bytes={}", r.id, r.bytes);
    if let Some(d) = r.deadline_ms {
        s.push_str(&format!(" deadline_ms={d}"));
    }
    if let Some(q) = r.steps {
        s.push_str(&format!(" steps={q}"));
    }
    if let Some(b) = r.base {
        s.push_str(&format!(" base={}", hls_ir::canon::hash_to_hex(b)));
    }
    if r.nocache {
        s.push_str(" nocache=1");
    }
    s.push('\n');
    s
}

/// Parses a request header line.
///
/// # Errors
///
/// [`ProtoError`] naming the offending token; unknown keys are
/// rejected so silent typos cannot change semantics.
pub fn parse_request_header(line: &str) -> Result<Request, ProtoError> {
    let line = line.trim_end_matches(['\n', '\r']);
    let mut toks = line.split_ascii_whitespace();
    match toks.next() {
        Some("REQ") => {}
        Some(other) => return Err(err(format!("expected REQ, got `{other}`"))),
        None => return Err(err("empty header line")),
    }
    let mut id = None;
    let mut bytes = None;
    let mut req = Request {
        id: 0,
        bytes: 0,
        deadline_ms: None,
        steps: None,
        base: None,
        nocache: false,
    };
    for tok in toks {
        let (k, v) = kv(tok)?;
        match k {
            "id" => id = Some(parse_u64(k, v)?),
            "bytes" => bytes = Some(parse_u64(k, v)? as usize),
            "deadline_ms" => req.deadline_ms = Some(parse_u64(k, v)?),
            "steps" => req.steps = Some(parse_u64(k, v)?),
            "base" => {
                req.base = Some(
                    hls_ir::canon::hash_from_hex(v)
                        .ok_or_else(|| err(format!("bad base hash `{v}`")))?,
                )
            }
            "nocache" => req.nocache = v == "1",
            other => return Err(err(format!("unknown request key `{other}`"))),
        }
    }
    req.id = id.ok_or_else(|| err("missing id"))?;
    req.bytes = bytes.ok_or_else(|| err("missing bytes"))?;
    Ok(req)
}

/// Formats a `STATS` query line (newline-terminated, no body).
pub fn format_stats_header(id: u64) -> String {
    format!("STATS id={id}\n")
}

/// `true` when a header line opens a `STATS` query rather than a
/// `REQ` — the cheap dispatch test the server runs per line.
pub fn is_stats_header(line: &str) -> bool {
    line.split_ascii_whitespace().next() == Some("STATS")
}

/// Parses a `STATS` query line, returning the query id.
///
/// # Errors
///
/// [`ProtoError`] on anything but `STATS id=<n>`.
pub fn parse_stats_header(line: &str) -> Result<u64, ProtoError> {
    let line = line.trim_end_matches(['\n', '\r']);
    let mut toks = line.split_ascii_whitespace();
    match toks.next() {
        Some("STATS") => {}
        other => return Err(err(format!("expected STATS, got `{other:?}`"))),
    }
    let mut id = None;
    for tok in toks {
        let (k, v) = kv(tok)?;
        match k {
            "id" => id = Some(parse_u64(k, v)?),
            other => return Err(err(format!("unknown STATS key `{other}`"))),
        }
    }
    id.ok_or_else(|| err("STATS line missing id"))
}

/// Strips newlines out of a message so it cannot break line framing.
pub fn sanitize_msg(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// Formats a response as one newline-terminated line.
pub fn format_response(r: &Response) -> String {
    match r {
        Response::Accepted(a) => {
            let mut s = format!("OK id={} rung={}", a.id, a.rung);
            if let Some(states) = a.states {
                s.push_str(&format!(" states={states}"));
            }
            s.push_str(&format!(
                " lb={} cache={} degraded={} us={}",
                a.lower_bound,
                a.cache.name(),
                a.degraded,
                a.micros
            ));
            if a.trace != 0 {
                s.push_str(&format!(" trace={:016x}", a.trace));
            }
            s.push('\n');
            s
        }
        Response::Rejected(r) => {
            let mut s = format!(
                "ERR id={} kind={} retry={}",
                r.id,
                r.kind.name(),
                u8::from(r.kind.retryable()),
            );
            if r.trace != 0 {
                s.push_str(&format!(" trace={:016x}", r.trace));
            }
            // `msg=` stays last: it swallows the rest of the line.
            s.push_str(&format!(" msg={}\n", sanitize_msg(&r.msg)));
            s
        }
        Response::Stats(st) => {
            // The snapshot JSON is whitespace-free by construction;
            // sanitize anyway so framing survives a foreign payload.
            format!("STATS id={} body={}\n", st.id, sanitize_msg(&st.json))
        }
    }
}

fn parse_trace(v: &str) -> Result<u64, ProtoError> {
    u64::from_str_radix(v, 16).map_err(|_| err(format!("bad trace id `{v}`")))
}

/// Parses a response line.
///
/// # Errors
///
/// [`ProtoError`] naming the offending token.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let line = line.trim_end_matches(['\n', '\r']);
    let (head, rest) = line
        .split_once(' ')
        .ok_or_else(|| err("truncated response line"))?;
    match head {
        "OK" => {
            let mut a = Accepted {
                id: 0,
                rung: String::new(),
                states: None,
                lower_bound: 0,
                cache: CacheStatus::Miss,
                degraded: 0,
                micros: 0,
                trace: 0,
            };
            let mut saw_id = false;
            for tok in rest.split_ascii_whitespace() {
                let (k, v) = kv(tok)?;
                match k {
                    "id" => {
                        a.id = parse_u64(k, v)?;
                        saw_id = true;
                    }
                    "rung" => a.rung = v.to_string(),
                    "states" => a.states = Some(parse_u64(k, v)?),
                    "lb" => a.lower_bound = parse_u64(k, v)?,
                    "cache" => {
                        a.cache = CacheStatus::from_name(v)
                            .ok_or_else(|| err(format!("bad cache tag `{v}`")))?
                    }
                    "degraded" => a.degraded = parse_u64(k, v)? as usize,
                    "us" => a.micros = parse_u64(k, v)?,
                    "trace" => a.trace = parse_trace(v)?,
                    other => return Err(err(format!("unknown OK key `{other}`"))),
                }
            }
            if !saw_id || a.rung.is_empty() {
                return Err(err("OK line missing id or rung"));
            }
            Ok(Response::Accepted(a))
        }
        "ERR" => {
            let mut id = None;
            let mut kind = None;
            let mut retry = None;
            let mut trace = 0u64;
            let mut rest_toks = rest.split_ascii_whitespace();
            let mut msg = String::new();
            // `msg=` must come last: it swallows the rest of the line.
            if let Some(off) = rest.find("msg=") {
                msg = rest[off + 4..].to_string();
                rest_toks = rest[..off].split_ascii_whitespace();
            }
            for tok in rest_toks {
                let (k, v) = kv(tok)?;
                match k {
                    "id" => id = Some(parse_u64(k, v)?),
                    "kind" => {
                        kind = Some(
                            RejectKind::from_name(v)
                                .ok_or_else(|| err(format!("bad reject kind `{v}`")))?,
                        )
                    }
                    "retry" => retry = Some(v == "1"),
                    "trace" => trace = parse_trace(v)?,
                    other => return Err(err(format!("unknown ERR key `{other}`"))),
                }
            }
            let kind = kind.ok_or_else(|| err("ERR line missing kind"))?;
            // The wire retry flag must agree with the kind's own
            // verdict; a mismatch means the peer speaks a different
            // protocol revision.
            if retry.is_some_and(|r| r != kind.retryable()) {
                return Err(err("retry flag contradicts reject kind"));
            }
            Ok(Response::Rejected(Rejected {
                id: id.ok_or_else(|| err("ERR line missing id"))?,
                kind,
                msg,
                trace,
            }))
        }
        "STATS" => {
            let mut id = None;
            let mut json = String::new();
            let mut rest_toks = rest.split_ascii_whitespace();
            // `body=` swallows the rest of the line, like ERR's msg=.
            if let Some(off) = rest.find("body=") {
                json = rest[off + 5..].to_string();
                rest_toks = rest[..off].split_ascii_whitespace();
            }
            for tok in rest_toks {
                let (k, v) = kv(tok)?;
                match k {
                    "id" => id = Some(parse_u64(k, v)?),
                    other => return Err(err(format!("unknown STATS key `{other}`"))),
                }
            }
            Ok(Response::Stats(StatsReply {
                id: id.ok_or_else(|| err("STATS line missing id"))?,
                json,
            }))
        }
        other => Err(err(format!("expected OK, ERR or STATS, got `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_header_roundtrips() {
        let full = Request {
            id: 42,
            bytes: 1234,
            deadline_ms: Some(250),
            steps: Some(100_000),
            base: Some(0x0123_4567_89ab_cdef_0011_2233_4455_6677),
            nocache: true,
        };
        let minimal = Request {
            id: 1,
            bytes: 0,
            deadline_ms: None,
            steps: None,
            base: None,
            nocache: false,
        };
        for r in [full, minimal] {
            let line = format_request_header(&r);
            assert!(line.len() <= MAX_HEADER_BYTES);
            assert_eq!(parse_request_header(&line).unwrap(), r);
        }
    }

    #[test]
    fn request_header_rejects_garbage() {
        for bad in [
            "",
            "GET / HTTP/1.1",
            "REQ",
            "REQ id=1",
            "REQ bytes=9",
            "REQ id=x bytes=9",
            "REQ id=1 bytes=9 base=nothex",
            "REQ id=1 bytes=9 zorp=1",
        ] {
            assert!(parse_request_header(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let ok = Response::Accepted(Accepted {
            id: 7,
            rung: "portfolio".into(),
            states: Some(17),
            lower_bound: 17,
            cache: CacheStatus::Eco,
            degraded: 2,
            micros: 812,
            trace: 0xdead_beef_0042_1177,
        });
        let bound_only = Response::Accepted(Accepted {
            id: 8,
            rung: "bound-only".into(),
            states: None,
            lower_bound: 9,
            cache: CacheStatus::Miss,
            degraded: 3,
            micros: 40,
            trace: 0,
        });
        let rej = Response::Rejected(Rejected {
            id: 9,
            kind: RejectKind::Overloaded,
            msg: "admission queue full (capacity 64)".into(),
            trace: 0x1122_3344_5566_7788,
        });
        for r in [ok, bound_only, rej] {
            let line = format_response(&r);
            assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
            assert_eq!(parse_response(&line).unwrap(), r);
        }
    }

    #[test]
    fn rejection_messages_cannot_break_framing() {
        let r = Response::Rejected(Rejected {
            id: 1,
            kind: RejectKind::Malformed,
            msg: "line 2\ncol 3\r\nboom".into(),
            trace: 0,
        });
        let line = format_response(&r);
        assert_eq!(line.matches('\n').count(), 1);
        match parse_response(&line).unwrap() {
            Response::Rejected(r) => assert_eq!(r.msg, "line 2 col 3  boom"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn retry_flag_is_authoritative_per_kind() {
        assert!(RejectKind::Overloaded.retryable());
        assert!(RejectKind::Draining.retryable());
        assert!(RejectKind::Timeout.retryable());
        for terminal in [
            RejectKind::TooLarge,
            RejectKind::Malformed,
            RejectKind::Unsupported,
            RejectKind::Poisoned,
            RejectKind::Internal,
        ] {
            assert!(!terminal.retryable(), "{terminal:?}");
        }
        // A forged retry flag that contradicts the kind is rejected.
        assert!(parse_response("ERR id=1 kind=malformed retry=1 msg=x").is_err());
    }

    #[test]
    fn stats_header_roundtrips_and_rejects_garbage() {
        let line = format_stats_header(42);
        assert!(is_stats_header(&line));
        assert!(!is_stats_header("REQ id=1 bytes=0\n"));
        assert_eq!(parse_stats_header(&line).unwrap(), 42);
        for bad in ["", "STATS", "STATS id=x", "STATS zorp=1", "REQ id=1"] {
            assert!(parse_stats_header(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn stats_reply_roundtrips() {
        let r = Response::Stats(StatsReply {
            id: 3,
            json: r#"{"serve_requests":12,"p99":{"a":1}}"#.into(),
        });
        let line = format_response(&r);
        assert!(line.ends_with('\n') && !line[..line.len() - 1].contains('\n'));
        assert_eq!(parse_response(&line).unwrap(), r);
        assert_eq!(r.id(), 3);
    }

    #[test]
    fn trace_ids_survive_the_wire_and_bad_ones_are_rejected() {
        let mut r = Response::Accepted(Accepted {
            id: 1,
            rung: "eco".into(),
            states: Some(4),
            lower_bound: 4,
            cache: CacheStatus::Hit,
            degraded: 0,
            micros: 10,
            trace: 0,
        });
        r.set_trace(0xabc);
        match parse_response(&format_response(&r)).unwrap() {
            Response::Accepted(a) => assert_eq!(a.trace, 0xabc),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_response("OK id=1 rung=eco lb=4 trace=nothex\n").is_err());
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            RejectKind::Overloaded,
            RejectKind::Draining,
            RejectKind::TooLarge,
            RejectKind::Malformed,
            RejectKind::Unsupported,
            RejectKind::Timeout,
            RejectKind::Poisoned,
            RejectKind::Internal,
        ] {
            assert_eq!(RejectKind::from_name(k.name()), Some(k));
        }
        assert_eq!(RejectKind::from_name("nope"), None);
    }
}
