//! The serve-path fault-injection property suite: 512 seeded trials
//! against a live daemon — byte-mutated request streams, panics
//! injected mid-request, and a skewed virtual clock expiring
//! deadlines during commits. The property throughout: **every**
//! request is answered with a protocol-valid line (an `OK` or a typed
//! `ERR`), no panic crosses a request boundary, and the daemon keeps
//! answering clean requests after every fault window.
//!
//! Like the flow suite, this file is its own test binary: fault
//! plans are process-global, and the `Armed` guard serializes the
//! tests that (even vacuously) arm one.

use hls_serve::{
    BindAddr, Client, ClientError, RequestOpts, ServeConfig, Server,
};
use hls_ir::faultinject::{arm, mutate_bytes, FaultPlan};
use hls_ir::{bench_graphs, textfmt};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const MUTATION_TRIALS: u64 = 192;
const PANIC_TRIALS: u64 = 160;
const SKEW_TRIALS: u64 = 160;

/// CI re-runs the suite over disjoint seed windows via
/// `FAULTINJECT_SEED_OFFSET`; locally the offset is 0.
fn seed_offset() -> u64 {
    std::env::var("FAULTINJECT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(&BindAddr::Tcp("127.0.0.1:0".into()), cfg).expect("bind ephemeral port")
}

fn tcp_target(addr: &BindAddr) -> String {
    match addr {
        BindAddr::Tcp(a) => a.clone(),
        #[cfg(unix)]
        other => panic!("expected tcp addr, got {other}"),
    }
}

/// A clean request must come back answered — any rung, any typed
/// rejection, but *answered*. `Ok(true)` means a schedule; a typed
/// rejection is also an answer. Transport errors and protocol
/// garbage fail the suite.
fn probe(addr: &BindAddr, text: &str) {
    let mut c = Client::connect(addr).expect("daemon must keep accepting");
    match c.schedule(text, &RequestOpts::default()) {
        Ok(a) => assert!(
            a.states.is_none() || a.states.unwrap() >= a.lower_bound,
            "answer violates its own bound"
        ),
        Err(ClientError::Rejected(_)) => {}
        Err(other) => panic!("probe not answered: {other}"),
    }
}

#[test]
fn mutated_request_bytes_never_kill_or_wedge_the_daemon() {
    // Vacuous plan: takes the global fault-injection lock so this
    // test never overlaps the armed ones in this binary.
    let _guard = arm(FaultPlan::default());
    let server = start(ServeConfig {
        workers: 2,
        default_deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    });
    let target = tcp_target(server.addr());
    let text = textfmt::to_text(&bench_graphs::ewf());
    let clean = format!("REQ id=1 bytes={}\n{}", text.len(), text);

    for trial in 0..MUTATION_TRIALS {
        let seed = 0x5EED_0000 + seed_offset() + trial;
        let bytes = mutate_bytes(seed, clean.as_bytes());

        let mut s = TcpStream::connect(&target).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let _ = s.write_all(&bytes);
        // Closing our write half turns a short body into EOF at the
        // server, which must answer `malformed` (or close) rather
        // than wait forever.
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut replies = String::new();
        s.read_to_string(&mut replies)
            .expect("server must answer or close, never wedge");
        for line in replies.lines() {
            hls_serve::protocol::parse_response(&format!("{line}\n"))
                .unwrap_or_else(|e| panic!("garbage on the wire (seed {seed}): {e}"));
        }

        // Periodically assert the daemon still serves clean traffic.
        if trial % 32 == 31 {
            probe(server.addr(), &text);
        }
    }
    probe(server.addr(), &text);
    let stats = server.shutdown(Duration::from_secs(10));
    assert_eq!(stats.poisoned, 0, "mutated *input* must never panic a worker");
}

#[test]
fn injected_panics_stay_inside_their_request() {
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let text = textfmt::to_text(&bench_graphs::ewf());

    for trial in 0..PANIC_TRIALS {
        let seed = seed_offset() + trial;
        let k = 1 + (seed % 60);
        // Scope-prefixed: the plan hits every request the daemon
        // runs, and nothing else in this process.
        let guard = arm(FaultPlan::panic_at(k).in_runs_prefixed("serve:"));
        let mut c = Client::connect(server.addr()).expect("connect");
        match c.schedule(
            &text,
            &RequestOpts {
                nocache: true,
                ..RequestOpts::default()
            },
        ) {
            // The ladder usually absorbs the panic and answers from a
            // lower rung; the bound must still hold.
            Ok(a) => assert!(a.states.is_none() || a.states.unwrap() >= a.lower_bound),
            // A typed rejection (poisoned on every rung) is also a
            // contained outcome.
            Err(ClientError::Rejected(_)) => {}
            Err(other) => panic!("panic escaped as a transport failure: {other}"),
        }
        drop(guard);
        // The very next clean request must be served normally.
        if trial % 16 == 15 {
            probe(server.addr(), &text);
        }
    }
    probe(server.addr(), &text);
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn skewed_clock_deadline_expiry_during_commits_degrades_not_hangs() {
    let server = start(ServeConfig {
        workers: 2,
        default_deadline: Duration::from_millis(250),
        ..ServeConfig::default()
    });
    let text = textfmt::to_text(&bench_graphs::ewf());

    for trial in 0..SKEW_TRIALS {
        let seed = 0xC10C_0000 + seed_offset() + trial;
        // Every commit advances the virtual clock 1–50ms: the
        // request's wall deadline expires after a seed-chosen number
        // of commits, mid-flow.
        let per_commit = Duration::from_millis(1 + seed % 50);
        let guard = arm(FaultPlan {
            clock_skew_per_commit: per_commit,
            ..FaultPlan::default()
        }
        .in_runs_prefixed("serve:"));
        let mut c = Client::connect(server.addr()).expect("connect");
        match c.schedule(
            &text,
            &RequestOpts {
                deadline: Some(Duration::from_millis(100 + (seed % 7) * 40)),
                nocache: true,
                ..RequestOpts::default()
            },
        ) {
            // Degraded answers (often bound-only) are the designed
            // outcome of an expiring deadline.
            Ok(a) => assert!(a.states.is_none() || a.states.unwrap() >= a.lower_bound),
            Err(ClientError::Rejected(r)) => {
                assert!(
                    r.kind.retryable() || r.kind == hls_serve::RejectKind::Poisoned,
                    "deadline expiry must reject retryably, got {:?}",
                    r.kind
                );
            }
            Err(other) => panic!("deadline expiry wedged the daemon: {other}"),
        }
        drop(guard);
        if trial % 16 == 15 {
            probe(server.addr(), &text);
        }
    }
    probe(server.addr(), &text);
    server.shutdown(Duration::from_secs(10));
}
