//! The observability plane over a live daemon: `STATS` round-trips
//! (including while draining), snapshot consistency under concurrent
//! scheduling load, trace ids on answers, and the crash flight
//! recorder capturing an injected panic's post-mortem.
//!
//! The recorder and metrics registry are process-global, so every
//! test here serializes through one mutex and restores the master
//! switch on exit.

use hls_ir::faultinject::{arm, FaultPlan};
use hls_ir::{bench_graphs, textfmt};
use hls_serve::{BindAddr, Client, RequestOpts, ServeConfig, Server};
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII master-switch guard: recording on for the test body, off
/// again on drop (even on panic).
struct Recording;

impl Recording {
    fn start() -> Recording {
        hls_obs::set_enabled(true);
        Recording
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        hls_obs::set_enabled(false);
    }
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(&BindAddr::Tcp("127.0.0.1:0".into()), cfg).expect("bind ephemeral port")
}

/// Pulls a top-level `"name":N` integer out of the flat metrics JSON.
fn counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = json.find(&key).unwrap_or_else(|| panic!("no {name} in {json}"));
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {name} in {json}"))
}

#[test]
fn stats_round_trips_and_answers_while_draining() {
    let _s = serial();
    let _rec = Recording::start();
    let server = start(ServeConfig::default());
    let text = textfmt::to_text(&bench_graphs::ewf());

    let mut c = Client::connect(server.addr()).expect("connect");
    let before = c.stats().expect("stats before load");
    hls_obs::export::validate_json(&before).expect("stats body must be strict JSON");

    let a = c.schedule(&text, &RequestOpts::default()).expect("schedule");
    assert_ne!(a.trace, 0, "an OK line must carry a trace id");

    let after = c.stats().expect("stats after load");
    hls_obs::export::validate_json(&after).expect("stats body must be strict JSON");
    assert!(counter(&after, "serve_requests") > counter(&before, "serve_requests"));
    assert!(counter(&after, "serve_completed") > counter(&before, "serve_completed"));
    assert!(counter(&after, "stats_queries") > counter(&before, "stats_queries"));

    // STATS is answered inline by the connection thread, so the probe
    // keeps working on an existing connection even while the daemon
    // refuses new scheduling work.
    server.drain();
    let draining = c.stats().expect("stats while draining");
    hls_obs::export::validate_json(&draining).expect("stats body must be strict JSON");
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn stats_snapshots_stay_consistent_under_concurrent_load() {
    let _s = serial();
    let _rec = Recording::start();
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let text = textfmt::to_text(&bench_graphs::ewf());

    let mut probe = Client::connect(server.addr()).expect("connect");
    let initial = probe.stats().expect("initial stats");
    let req0 = counter(&initial, "serve_requests");
    let done0 =
        counter(&initial, "serve_completed") + counter(&initial, "serve_rejected");

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    let answered = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = server.addr().clone();
                let text = text.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let mut ok = 0u64;
                    for _ in 0..PER_CLIENT {
                        // Cache on: the first request schedules, the
                        // rest hit — sustained traffic without a
                        // sustained flow bill.
                        match c.schedule(&text, &RequestOpts::default()) {
                            Ok(a) => {
                                assert_ne!(a.trace, 0);
                                ok += 1;
                            }
                            Err(e) => panic!("load request failed: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();

        // Poll STATS concurrently with the load: every body must be
        // strict JSON and the request counter must be monotone — a
        // torn or rolled-back snapshot fails here.
        let mut c = Client::connect(server.addr()).expect("connect");
        let mut last = req0;
        for _ in 0..20 {
            let body = c.stats().expect("stats under load");
            hls_obs::export::validate_json(&body).expect("stats body must be strict JSON");
            let now = counter(&body, "serve_requests");
            assert!(now >= last, "serve_requests went backwards: {now} < {last}");
            last = now;
            std::thread::sleep(Duration::from_millis(2));
        }

        workers.into_iter().map(|w| w.join().expect("client thread")).sum::<u64>()
    });
    assert_eq!(answered, (CLIENTS * PER_CLIENT) as u64);

    // Quiesced: every admitted request is accounted exactly once.
    let fin = probe.stats().expect("final stats");
    assert_eq!(
        counter(&fin, "serve_requests") - req0,
        answered,
        "every request counted exactly once"
    );
    assert_eq!(
        counter(&fin, "serve_completed") + counter(&fin, "serve_rejected") - done0,
        answered,
        "every request resolved exactly once"
    );
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn flight_recorder_captures_an_injected_panic() {
    let _s = serial();
    hls_obs::flight::clear_last_flight();
    // Panic on the very first commit of every `serve:`-scoped run:
    // whichever layer contains it (strategy worker, ladder rung, or
    // the serve worker's own unwind boundary), the post-mortem hook
    // fires before the answer goes out.
    let guard = arm(FaultPlan::panic_at(1).in_runs_prefixed("serve:"));
    let server = start(ServeConfig::default());
    let text = textfmt::to_text(&bench_graphs::ewf());

    let mut c = Client::connect(server.addr()).expect("connect");
    // Contained either way: a degraded answer or a typed rejection.
    let _ = c.schedule(
        &text,
        &RequestOpts {
            nocache: true,
            ..RequestOpts::default()
        },
    );
    drop(guard);

    let flight = hls_obs::flight::last_flight().expect("a panic must leave a flight dump");
    hls_obs::export::validate_json(&flight).expect("flight dump must be strict JSON");
    assert!(
        flight.contains("poisoned") || flight.contains("panicked"),
        "flight dump names the failure: {flight}"
    );
    hls_obs::flight::clear_last_flight();
    server.shutdown(Duration::from_secs(10));
}
