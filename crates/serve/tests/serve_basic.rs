//! End-to-end daemon behavior over real sockets: answers, cache hits,
//! the ECO fast path, typed rejections (malformed, too large,
//! unsupported), overload shedding, and graceful drain.

use hls_serve::{
    BindAddr, CacheStatus, Client, ClientError, RejectKind, RequestOpts, RetryPolicy,
    ServeConfig, Server,
};
use hls_ir::{bench_graphs, canon, textfmt, OpId, OpKind};
use std::time::Duration;

fn local() -> BindAddr {
    BindAddr::Tcp("127.0.0.1:0".into())
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(&local(), cfg).expect("bind ephemeral port")
}

#[test]
fn schedules_a_graph_and_answers_from_the_cache_on_resubmission() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let text = textfmt::to_text(&bench_graphs::ewf());

    let first = client.schedule(&text, &RequestOpts::default()).unwrap();
    assert_eq!(first.cache, CacheStatus::Miss);
    assert!(first.states.is_some());
    assert!(first.states.unwrap() >= first.lower_bound);

    // Resubmission with rewritten labels: the cache key is the
    // *canonical* form (labels excluded), so this still hits and the
    // answer agrees with the cold one.
    let relabeled = text.replace(" t", " renamed_t");
    assert_ne!(relabeled, text, "the rewrite must actually change labels");
    let second = client.schedule(&relabeled, &RequestOpts::default()).unwrap();
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(second.states, first.states);
    assert_eq!(second.lower_bound, first.lower_bound);

    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.completed, 2);
}

#[test]
fn eco_delta_resubmission_takes_the_replay_fast_path() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let base = bench_graphs::ewf();
    let base_hash = canon::graph_hash(&base);
    client
        .schedule(&textfmt::to_text(&base), &RequestOpts::default())
        .unwrap();

    // An ECO: two extra ops hanging off existing ones.
    let mut eco = base.clone();
    let a = eco.add_op(OpKind::Add, 1, "eco_a");
    eco.add_dep_edge(OpId::from_index(3), a, 0).unwrap();
    let b = eco.add_op(OpKind::Mul, 2, "eco_b");
    eco.add_dep_edge(a, b, 0).unwrap();

    let opts = RequestOpts {
        base: Some(base_hash),
        ..RequestOpts::default()
    };
    let answer = client.schedule(&textfmt::to_text(&eco), &opts).unwrap();
    assert_eq!(answer.cache, CacheStatus::Eco);
    assert_eq!(answer.rung, "eco");
    assert!(answer.states.unwrap() >= answer.lower_bound);

    // A *wrong* base claim (graph does not extend it) still answers —
    // from the cold path.
    let unrelated = textfmt::to_text(&bench_graphs::fir());
    let cold = client.schedule(&unrelated, &opts).unwrap();
    assert_eq!(cold.cache, CacheStatus::Miss);

    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.eco_hits, 1);
}

#[test]
fn malformed_and_oversized_requests_are_typed_rejections() {
    let cfg = ServeConfig {
        max_request_bytes: 4096,
        ..ServeConfig::default()
    };
    let server = start(cfg);

    // Malformed body: the rejection carries the parser's position.
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .schedule("op 0 add 1 a\nop 1 zorblax 1 b\n", &RequestOpts::default())
        .unwrap_err();
    match err {
        ClientError::Rejected(r) => {
            assert_eq!(r.kind, RejectKind::Malformed);
            assert!(!r.kind.retryable());
            assert!(r.msg.contains("line 2"), "unpositioned: {}", r.msg);
        }
        other => panic!("expected rejection, got {other}"),
    }

    // Oversized declaration: refused before the body is read.
    let mut client = Client::connect(server.addr()).unwrap();
    let big = "x".repeat(8192);
    let err = client.schedule(&big, &RequestOpts::default()).unwrap_err();
    match err {
        ClientError::Rejected(r) => {
            assert_eq!(r.kind, RejectKind::TooLarge);
            assert!(!r.kind.retryable());
        }
        other => panic!("expected rejection, got {other}"),
    }

    // A loop kernel without the pipeline seat: unsupported, terminal.
    let mut client = Client::connect(server.addr()).unwrap();
    let kernel = textfmt::to_text(&bench_graphs::mac_loop());
    let err = client.schedule(&kernel, &RequestOpts::default()).unwrap_err();
    match err {
        ClientError::Rejected(r) => assert_eq!(r.kind, RejectKind::Unsupported),
        other => panic!("expected rejection, got {other}"),
    }

    server.shutdown(Duration::from_secs(5));
}

#[test]
fn overload_sheds_with_typed_retryable_rejections_and_answers_the_rest() {
    // One worker, a one-slot queue, and a burst of concurrent
    // requests: some must be shed (typed, retryable), all must be
    // answered, none may hang.
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = start(cfg);
    let addr = server.addr().clone();
    let text = textfmt::to_text(&hls_ir::generate::stress_dag(0x10AD, 300));

    let handles: Vec<_> = (0..12)
        .map(|_| {
            let addr = addr.clone();
            let text = text.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr)?;
                c.schedule(
                    &text,
                    &RequestOpts {
                        nocache: true,
                        deadline: Some(Duration::from_secs(10)),
                        ..RequestOpts::default()
                    },
                )
            })
        })
        .collect();

    let mut ok = 0u32;
    let mut shed = 0u32;
    for h in handles {
        match h.join().expect("client thread must not panic") {
            Ok(a) => {
                assert!(a.states.is_none() || a.states.unwrap() >= a.lower_bound);
                ok += 1;
            }
            Err(ClientError::Rejected(r)) => {
                assert_eq!(r.kind, RejectKind::Overloaded, "unexpected {r:?}");
                assert!(r.kind.retryable());
                shed += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert_eq!(ok + shed, 12);
    assert!(ok >= 1, "at least the queue capacity must be served");
    assert!(shed >= 1, "a 1-deep queue under a 12-burst must shed");

    let stats = server.shutdown(Duration::from_secs(10));
    assert_eq!(stats.shed, u64::from(shed));
    assert_eq!(stats.completed, u64::from(ok));
}

#[test]
fn drain_refuses_new_work_and_shutdown_reports_stats() {
    let server = start(ServeConfig::default());
    let mut before = Client::connect(server.addr()).unwrap();
    let text = textfmt::to_text(&bench_graphs::hal());
    before.schedule(&text, &RequestOpts::default()).unwrap();

    server.drain();

    // A connection opened during drain is refused with the typed,
    // retryable `draining` rejection (or refused outright at the
    // transport, which is also acceptable).
    if let Ok(mut c) = Client::connect(server.addr()) {
        match c.schedule(&text, &RequestOpts::default()) {
            Err(ClientError::Rejected(r)) => {
                assert_eq!(r.kind, RejectKind::Draining);
                assert!(r.kind.retryable());
            }
            Err(ClientError::Io(_)) => {} // refused before the write landed
            other => panic!("admitted during drain: {other:?}"),
        }
    }

    let stats = server.shutdown(Duration::from_secs(5));
    assert_eq!(stats.completed, 1);
    assert!(stats.drain_rejects >= 1);
}

#[test]
fn retry_with_backoff_succeeds_against_a_healthy_server() {
    let server = start(ServeConfig::default());
    let text = textfmt::to_text(&bench_graphs::ar());
    let policy = RetryPolicy {
        attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 42,
    };
    let a = Client::schedule_with_retry(server.addr(), &text, &RequestOpts::default(), &policy)
        .unwrap();
    assert!(a.states.is_some());
    server.shutdown(Duration::from_secs(5));
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works_end_to_end() {
    let path = std::env::temp_dir().join(format!("hls-serve-test-{}.sock", std::process::id()));
    let addr = BindAddr::Unix(path.clone());
    let server = Server::start(&addr, ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let a = client
        .schedule(&textfmt::to_text(&bench_graphs::hal()), &RequestOpts::default())
        .unwrap();
    assert!(a.states.is_some());
    server.shutdown(Duration::from_secs(5));
    assert!(!path.exists(), "socket file removed on shutdown");
}
