//! Bound-soundness oracle (end-to-end): the portfolio's certified
//! lower bound must never exceed what any actual scheduler achieves.
//!
//! On random DAGs of ≤ 10 operations we drive the
//! [`ExhaustiveScheduler`] — the paper's speculative implementation,
//! kept as the optimality oracle (Theorem 2) — over the four paper
//! metas plus a population of seeded random orders, take the best
//! diameter it ever reaches, and assert:
//!
//! * `PortfolioOutcome::lower_bound ≤` that optimum (a certified
//!   bound above an achievable schedule would be a soundness bug);
//! * the monotone per-step `final_lower_bound` probed by the race's
//!   abort hook never exceeds the *same run's* final diameter (the
//!   property the early-abort protocol relies on);
//! * the portfolio's own result respects its bound.

use hls_ir::{generate, DelayModel, OpId, ResourceSet};
use hls_search::{run_portfolio, PortfolioConfig, RefineConfig};
use proptest::prelude::*;
use threaded_sched::meta::MetaSchedule;
use threaded_sched::{ExhaustiveScheduler, ThreadedScheduler};

fn small_config() -> PortfolioConfig {
    PortfolioConfig {
        threads: 2,
        random_seeds: vec![0xA11CE],
        topo_seeds: vec![0x7E40_0001],
        refine: RefineConfig {
            stall_rounds: 1,
            max_rounds: 2,
            candidates_per_round: 2,
            slack_band: 0,
            seed: 1,
        },
        budget: hls_ir::Budget::NONE,
    }
}

/// Every order the oracle sweeps: the paper metas plus seeded
/// shuffles and topological tie-breaks.
fn oracle_orders(
    g: &hls_ir::PrecedenceGraph,
    r: &ResourceSet,
) -> Vec<Vec<OpId>> {
    let mut metas: Vec<MetaSchedule> = MetaSchedule::PAPER.to_vec();
    for s in 0..12u64 {
        metas.push(MetaSchedule::Random(s));
        metas.push(MetaSchedule::RandomTopo(s));
    }
    metas
        .into_iter()
        .map(|m| m.order(g, r).expect("small DAGs order fine"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certified_lower_bound_never_exceeds_the_exhaustive_optimum(
        seed in 0u64..100_000,
        n in 1usize..11,
        density_pct in 0u32..60,
        alus in 1usize..3,
        muls in 1usize..3,
    ) {
        let g = generate::random_dag(
            seed,
            n,
            f64::from(density_pct) / 100.0,
            &DelayModel::classic(),
        );
        let r = ResourceSet::classic(alus, muls);

        // The exhaustive oracle's best diameter over the order sweep.
        let mut optimum = u64::MAX;
        for order in oracle_orders(&g, &r) {
            let mut ex = ExhaustiveScheduler::new(g.clone(), r.clone()).unwrap();
            ex.schedule_all(order.iter().copied()).unwrap();
            optimum = optimum.min(ex.diameter());
        }

        // Per-step certified bounds of a live run never exceed that
        // run's own final diameter (abort-hook soundness).
        let order = MetaSchedule::Topological.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
        let mut probes = Vec::new();
        ts.schedule_all_until(order.iter().copied(), |bound| {
            probes.push(bound);
            false
        }).unwrap();
        let final_diameter = ts.diameter();
        for (i, &b) in probes.iter().enumerate() {
            prop_assert!(
                b <= final_diameter,
                "probe {} certifies {} above the run's own final {}",
                i, b, final_diameter
            );
        }
        prop_assert!(
            ts.schedule_lower_bound() <= optimum,
            "static bound {} exceeds exhaustive optimum {}",
            ts.schedule_lower_bound(), optimum
        );

        // The portfolio's certified bound and result agree with the
        // oracle.
        let out = run_portfolio(&g, &r, &small_config()).unwrap();
        prop_assert!(
            out.lower_bound <= optimum,
            "portfolio certifies {} but the exhaustive oracle achieves {}",
            out.lower_bound, optimum
        );
        prop_assert!(out.lower_bound <= out.diameter);
    }
}
