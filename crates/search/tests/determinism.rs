//! Portfolio acceptance properties: thread-count-independent results
//! and never losing to a single meta schedule.

use hls_ir::{bench_graphs, generate, ResourceSet};
use hls_search::{run_portfolio, PortfolioConfig, RefineConfig};
use threaded_sched::{meta::MetaSchedule, ThreadedScheduler};

/// The three Figure-3 resource allocations.
fn fig3_configs() -> Vec<ResourceSet> {
    vec![
        ResourceSet::classic(2, 2),
        ResourceSet::classic(4, 4),
        ResourceSet::classic(2, 1),
    ]
}

fn config_with_threads(threads: usize) -> PortfolioConfig {
    PortfolioConfig {
        threads,
        random_seeds: vec![0xA11CE, 0xB0B5],
        topo_seeds: vec![0x7E40_0001, 0x7E40_0002],
        refine: RefineConfig {
            stall_rounds: 2,
            max_rounds: 4,
            candidates_per_round: 3,
            slack_band: 0,
            seed: 0x5EED_F00D,
        },
        budget: hls_ir::Budget::NONE,
    }
}

#[test]
fn portfolio_is_deterministic_across_thread_counts() {
    // A mid-size layered DFG — large enough that runs genuinely
    // overlap and abort mid-flight — plus one paper benchmark. The
    // shape is the shared cross-crate stress workload.
    let layered = generate::stress_dag(0xD15C0, 600);
    let workloads = vec![("layered-600", layered), ("EF", bench_graphs::ewf())];
    let resources = ResourceSet::classic(2, 2);
    for (name, g) in workloads {
        let mut results = Vec::new();
        for threads in [1usize, 2, 8] {
            let out = run_portfolio(&g, &resources, &config_with_threads(threads)).unwrap();
            out.winner.check_invariants().unwrap();
            results.push((threads, out));
        }
        let (_, first) = &results[0];
        for (threads, out) in &results[1..] {
            assert_eq!(
                out.winner_name, first.winner_name,
                "{name}: winner differs at {threads} threads"
            );
            assert_eq!(
                out.diameter, first.diameter,
                "{name}: diameter differs at {threads} threads"
            );
            assert_eq!(
                out.initial_diameter, first.initial_diameter,
                "{name}: pre-refinement diameter differs at {threads} threads"
            );
            assert_eq!(
                out.refine_rounds, first.refine_rounds,
                "{name}: refinement trajectory differs at {threads} threads"
            );
            assert_eq!(
                out.winner_order, first.winner_order,
                "{name}: winning order differs at {threads} threads"
            );
        }
    }
}

#[test]
fn portfolio_never_loses_to_a_single_meta_schedule() {
    // Acceptance: on every Figure-3 benchmark and resource config, the
    // portfolio diameter is ≤ the best single paper meta schedule.
    for (name, g) in bench_graphs::all() {
        for r in fig3_configs() {
            let best_single = MetaSchedule::PAPER
                .into_iter()
                .map(|m| {
                    let order = m.order(&g, &r).unwrap();
                    let mut ts = ThreadedScheduler::new(g.clone(), r.clone()).unwrap();
                    ts.schedule_all(order).unwrap();
                    ts.diameter()
                })
                .min()
                .unwrap();
            let out = run_portfolio(&g, &r, &config_with_threads(2)).unwrap();
            assert!(
                out.diameter <= best_single,
                "{name} {:?}: portfolio {} vs best single {best_single}",
                r,
                out.diameter
            );
            // And the winner state is a valid, extractable schedule.
            let hard = out.winner.extract_hard();
            hls_ir::schedule::validate(out.winner.graph(), &r, &hard).unwrap();
        }
    }
}

#[test]
fn refinement_seed_changes_explore_but_never_regress() {
    let g = bench_graphs::ewf();
    let r = ResourceSet::classic(2, 1);
    for seed in [1u64, 2, 3] {
        let mut cfg = config_with_threads(2);
        cfg.refine.seed = seed;
        let out = run_portfolio(&g, &r, &cfg).unwrap();
        assert!(out.diameter <= out.initial_diameter, "seed {seed} regressed");
    }
}
