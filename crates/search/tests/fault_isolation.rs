//! Panic isolation in the modulo portfolio, driven by the
//! fault-injection harness.
//!
//! This lives in its own integration-test binary (= its own process):
//! the armed fault plan targets the run scope `ii=<MII>/height`, a tag
//! the library's other tests also enter — process isolation keeps the
//! plan from leaking into them.

use hls_ir::schedule::check_modulo;
use hls_ir::{bench_graphs, ResourceClass, ResourceSet};
use hls_search::{run_modulo_portfolio, PipelineConfig};
use threaded_sched::ModuloScheduler;

#[test]
fn poisoned_modulo_candidate_is_excluded_and_a_survivor_wins() {
    // Target the height-priority run at the first II; every other
    // candidate is unaffected and the race still completes.
    let g = bench_graphs::mac_loop();
    let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
    let mii = ModuloScheduler::new(g.clone(), r.clone()).unwrap().mii();
    let _armed = hls_ir::faultinject::arm(
        hls_ir::faultinject::FaultPlan::panic_at(1).in_run(format!("ii={mii}/height")),
    );
    let out = run_modulo_portfolio(&g, &r, &PipelineConfig::default()).unwrap();
    assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
    let dead = out
        .runs
        .iter()
        .find(|rep| rep.poisoned.is_some())
        .expect("the targeted candidate is reported poisoned");
    assert_eq!(dead.name, format!("ii={mii}/height"));
    assert_ne!(out.winner_name, dead.name);
}
