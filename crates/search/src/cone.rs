//! Critical-cone extraction — the *subgraph extraction* half of the
//! feedback loop.
//!
//! After a schedule completes, every operation `v` has a distance
//! `‖←v→‖ = sdist(v) + tdist(v) − D(v)` and a slack
//! `‖S‖ − ‖←v→‖`. The zero-slack operations are exactly the ones on a
//! critical state path; they (plus a configurable near-critical band)
//! seed the cone. The seed alone is not enough to re-order, though: a
//! perturbation that moves a critical op past a non-critical one it
//! depends on through intermediate vertices must move those too, so
//! the seed is *convex-closed* — every vertex lying between two seed
//! members joins the cone ([`hls_ir::ReachIndex::convex_closure`],
//! `O(|V| · #chains)` against the scheduler's maintained index).

use hls_ir::OpId;
use threaded_sched::ThreadedScheduler;

/// Extracts the critical-path cone of the scheduler's current state:
/// all scheduled operations with slack `≤ slack_band`, convex-closed
/// over the behavior graph. The result is sorted by operation index
/// and deterministic for a given state.
///
/// `slack_band = 0` is the pure critical cone; widening the band pulls
/// in near-critical operations, which grows the perturbation space at
/// the cost of larger re-scheduling moves. A band of `u64::MAX`
/// degenerates to the whole scheduled set.
pub fn critical_cone(ts: &ThreadedScheduler, slack_band: u64) -> Vec<OpId> {
    let diam = ts.diameter();
    let seed: Vec<usize> = ts
        .graph()
        .op_ids()
        .filter(|&v| matches!(ts.distance(v), Some(dist) if diam - dist <= slack_band))
        .map(|v| v.index())
        .collect();
    ts.reach_index()
        .convex_closure(&seed)
        .into_iter()
        .map(OpId::from_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, ResourceSet};
    use threaded_sched::meta::MetaSchedule;

    fn scheduled_ewf() -> ThreadedScheduler {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let order = MetaSchedule::Topological.order(&g, &r).unwrap();
        let mut ts = ThreadedScheduler::new(g, r).unwrap();
        ts.schedule_all(order).unwrap();
        ts
    }

    #[test]
    fn zero_band_cone_is_nonempty_and_all_critical_ops_are_in_it() {
        let ts = scheduled_ewf();
        let cone = critical_cone(&ts, 0);
        assert!(!cone.is_empty(), "a completed schedule has a critical path");
        for v in ts.graph().op_ids() {
            if ts.distance(v) == Some(ts.diameter()) {
                assert!(cone.contains(&v), "critical op {v} missing from the cone");
            }
        }
        assert!(cone.len() < ts.graph().len(), "EF is not all-critical");
    }

    #[test]
    fn cone_grows_monotonically_with_the_band_up_to_everything() {
        let ts = scheduled_ewf();
        let mut last = 0usize;
        for band in [0u64, 1, 2, 4, u64::MAX] {
            let cone = critical_cone(&ts, band);
            assert!(cone.len() >= last, "band {band} shrank the cone");
            last = cone.len();
        }
        assert_eq!(last, ts.graph().len(), "infinite band covers everything");
    }

    #[test]
    fn cone_is_convex_under_the_graph_order() {
        let ts = scheduled_ewf();
        let cone = critical_cone(&ts, 1);
        let idx = ts.reach_index();
        // For every vertex between two cone members, membership.
        for v in ts.graph().op_ids() {
            if cone.contains(&v) {
                continue;
            }
            let above = cone.iter().any(|&u| idx.reaches(u.index(), v.index()));
            let below = cone.iter().any(|&u| idx.reaches(v.index(), u.index()));
            assert!(
                !(above && below),
                "{v} lies between cone members but is not in the cone"
            );
        }
    }
}
