//! Parallel portfolio scheduling with feedback-guided refinement.
//!
//! The paper's Section 5 (and our Figure 3 reproduction) shows that the
//! *meta schedule* — the order in which operations are fed to the
//! online scheduler — swings result quality by one or two control
//! states even on the small benchmarks, and more on random workloads.
//! Since the incremental engine made a single `schedule_all` run cheap
//! (`BENCH_2.json`: ~linear to 100k ops), we can afford to run *many*
//! meta schedules per design and keep the best. This crate does that,
//! in two layers:
//!
//! * [`portfolio`] — a **parallel portfolio**: the paper's four meta
//!   schedules plus seeded [`MetaSchedule::Random`] /
//!   [`MetaSchedule::RandomTopo`] perturbations race on OS threads.
//!   The runs share an atomic *incumbent* — the best `(diameter,
//!   candidate)` pair completed so far, packed into one `u64` — and
//!   every run probes it after each scheduled operation through the
//!   early-abort hook of `ThreadedScheduler::schedule_all_until`.
//!   Because the state diameter is monotone under scheduling
//!   (Lemma 4), a run whose prefix diameter already rules out beating
//!   the incumbent can abort without changing the result; the packed
//!   comparison makes the winner *deterministic for a fixed candidate
//!   set regardless of thread count or timing* (see `DESIGN.md` §7
//!   for the argument).
//! * [`modulo`] — the **modulo portfolio** for loop pipelining: each
//!   candidate is an *(II, placement order)* pair — initiation
//!   intervals from the window above the certified
//!   `MII = max(ResMII, RecMII)` bound crossed with the paper metas
//!   (resolved over the kernel DAG) — racing behind one packed
//!   `(II, latency, slot)` incumbent. Completions at the minimum
//!   feasible II prune every higher-II candidate.
//! * [`cone`] + [`perturb`] — **feedback-guided refinement** in the
//!   spirit of subgraph-extraction iterative scheduling (Wu et al.,
//!   arXiv:2401.12343): extract the winner's *critical cone* (the
//!   operations whose distance `‖←v→‖` is within a slack band of the
//!   diameter, convex-closed through the chain-cover reachability
//!   index), re-schedule under seeded permutations of just that cone,
//!   keep strict improvements, and iterate until no improvement for a
//!   configured number of rounds.
//!
//! # Example
//!
//! ```
//! use hls_ir::{bench_graphs, ResourceSet};
//! use hls_search::{run_portfolio, PortfolioConfig};
//!
//! let g = bench_graphs::ewf();
//! let resources = ResourceSet::classic(2, 2);
//! let out = run_portfolio(&g, &resources, &PortfolioConfig::default())?;
//! // The portfolio can never lose to a single meta schedule it contains.
//! assert!(out.diameter <= out.initial_diameter);
//! println!("{} wins with {} states", out.winner_name, out.diameter);
//! # Ok::<(), threaded_sched::SchedError>(())
//! ```
//!
//! [`MetaSchedule::Random`]: threaded_sched::meta::MetaSchedule::Random
//! [`MetaSchedule::RandomTopo`]: threaded_sched::meta::MetaSchedule::RandomTopo

#![warn(missing_docs)]

pub mod cone;
pub mod modulo;
pub mod perturb;
pub mod portfolio;

pub use cone::critical_cone;
pub use modulo::{
    run_modulo_portfolio, ModuloPortfolioOutcome, ModuloRunReport, PipelineConfig,
};
pub use perturb::{cone_first, perturb_within};
pub use portfolio::{
    base_candidates, race, race_workers, run_portfolio, Candidate, OrderSource,
    PortfolioConfig, PortfolioOutcome, RaceOutcome, RaceWinner, RefineConfig, RunReport,
};
