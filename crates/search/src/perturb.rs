//! Cone-local order perturbations — the *alternative orders* half of
//! the feedback loop.
//!
//! A perturbation keeps the winning meta order fixed everywhere except
//! the critical cone: the positions the cone operations occupy stay
//! where they are (so the non-critical context is undisturbed), and
//! the cone operations are permuted among those positions with a
//! seeded Fisher–Yates shuffle. The online scheduler accepts
//! non-topological feeds (the correctness condition is enforced by
//! `select`/`commit`, not by the order), so every perturbation is a
//! legal candidate; quality is what varies.

use hls_ir::OpId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Derives the per-candidate shuffle seed from the refinement base
/// seed, the round number and the candidate index — a splitmix-style
/// avalanche so neighbouring `(round, i)` pairs decorrelate fully.
pub fn mix_seed(base: u64, round: u64, i: u64) -> u64 {
    let mut z = base
        ^ round.rotate_left(32)
        ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Returns `base` with the operations marked in `in_cone` (indexed by
/// operation index) permuted among their own positions; everything
/// else keeps its slot. Deterministic in `(base, in_cone, seed)`.
///
/// # Panics
///
/// Panics if an operation of `base` indexes past `in_cone`.
pub fn perturb_within(base: &[OpId], in_cone: &[bool], seed: u64) -> Vec<OpId> {
    let mut order = base.to_vec();
    let slots: Vec<usize> = (0..base.len())
        .filter(|&i| in_cone[base[i].index()])
        .collect();
    let mut ops: Vec<OpId> = slots.iter().map(|&i| base[i]).collect();
    ops.shuffle(&mut StdRng::seed_from_u64(seed));
    for (&slot, &op) in slots.iter().zip(&ops) {
        order[slot] = op;
    }
    order
}

/// Returns `base` reordered to feed the cone operations *first* (in
/// their existing relative order), then everything else. This is the
/// measured-criticality analogue of the paper's path-based meta
/// schedule: the operations that drive the current diameter get first
/// pick of threads and positions, with criticality taken from the
/// scheduled state (which prices in resource serialisation) instead of
/// the static longest path. Empirically the strongest single
/// refinement move on irregular DAGs.
pub fn cone_first(base: &[OpId], in_cone: &[bool]) -> Vec<OpId> {
    let mut order: Vec<OpId> = base
        .iter()
        .copied()
        .filter(|v| in_cone[v.index()])
        .collect();
    order.extend(base.iter().copied().filter(|v| !in_cone[v.index()]));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<OpId> {
        (0..n).map(OpId::from_index).collect()
    }

    #[test]
    fn perturbation_is_a_permutation_that_fixes_non_cone_slots() {
        let base = ids(10);
        let mut in_cone = vec![false; 10];
        for i in [2, 3, 5, 7] {
            in_cone[i] = true;
        }
        let p = perturb_within(&base, &in_cone, 42);
        // Same multiset.
        let mut sorted = p.clone();
        sorted.sort_unstable_by_key(|v| v.index());
        assert_eq!(sorted, base);
        // Non-cone slots untouched; cone ops stay within cone slots.
        for (i, (&b, &q)) in base.iter().zip(&p).enumerate() {
            if !in_cone[b.index()] {
                assert_eq!(b, q, "non-cone slot {i} moved");
            } else {
                assert!(in_cone[q.index()], "non-cone op entered a cone slot");
            }
        }
    }

    #[test]
    fn perturbation_is_seed_stable_and_seed_sensitive() {
        let base = ids(32);
        let in_cone = vec![true; 32];
        assert_eq!(
            perturb_within(&base, &in_cone, 7),
            perturb_within(&base, &in_cone, 7)
        );
        assert_ne!(
            perturb_within(&base, &in_cone, 7),
            perturb_within(&base, &in_cone, 8)
        );
    }

    #[test]
    fn cone_first_prioritises_the_cone_and_keeps_relative_orders() {
        let base = ids(8);
        let mut in_cone = vec![false; 8];
        for i in [1, 4, 6] {
            in_cone[i] = true;
        }
        let o = cone_first(&base, &in_cone);
        let want: Vec<OpId> = [1, 4, 6, 0, 2, 3, 5, 7]
            .into_iter()
            .map(OpId::from_index)
            .collect();
        assert_eq!(o, want);
    }

    #[test]
    fn mix_seed_decorrelates_neighbours() {
        let a = mix_seed(1, 1, 1);
        let b = mix_seed(1, 1, 2);
        let c = mix_seed(1, 2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, mix_seed(1, 1, 1), "pure function");
    }
}
