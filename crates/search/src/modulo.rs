//! The modulo portfolio: meta schedules race per candidate II.
//!
//! Loop pipelining adds a second axis to the portfolio. For an acyclic
//! behavior the only thing a candidate chooses is a feed order; for a
//! loop kernel each candidate is an *(II, order)* pair — an initiation
//! interval from the window above the certified bound
//! `MII = max(ResMII, RecMII)`, and a placement priority (the
//! scheduler's default height priority, a paper meta schedule computed
//! over the kernel DAG, or a seeded random-topological tie-break).
//!
//! All runs share one packed atomic incumbent, ordered
//! lexicographically as `(II, latency, slot)`: II dominates because
//! the II *is* the steady-state throughput; latency (pipeline fill
//! depth) breaks ties; the slot makes the order total. A worker
//! checks the incumbent before starting a candidate and skips it when
//! even a latency-0 completion could not win — once some run completes
//! at `II*`, every candidate at a higher II is pruned. Candidates at
//! the incumbent's own II (or below) always run to completion or
//! failure, so the winner — `argmin (II, latency, slot)` over
//! completions — is deterministic for a fixed candidate list
//! regardless of thread count or timing, by the same argument as the
//! acyclic race (`DESIGN.md` §7, §8).

use hls_ir::schedule::ModuloSchedule;
use hls_ir::{OpId, PrecedenceGraph, ResourceSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use threaded_sched::meta::MetaSchedule;
use threaded_sched::{ModuloScheduler, SchedError};

/// Bits of the packed incumbent for the candidate slot.
const SLOT_BITS: u32 = 16;
/// Bits for the single-iteration latency.
const LAT_BITS: u32 = 32;

/// Largest raceable candidate count (the slot field must not bleed
/// into the latency bits).
const MAX_CANDIDATES: usize = (1 << SLOT_BITS) - 1;

/// Packs `(ii, latency, slot)` so `u64` ordering is lexicographic.
fn pack(ii: u64, latency: u64, slot: u64) -> u64 {
    debug_assert!(ii < 1 << (64 - LAT_BITS - SLOT_BITS), "II overflows the packing");
    debug_assert!(latency < 1 << LAT_BITS, "latency overflows the packing");
    debug_assert!(slot < 1 << SLOT_BITS, "slot overflows the packing");
    (ii << (LAT_BITS + SLOT_BITS)) | (latency << SLOT_BITS) | slot
}

/// Configuration of [`run_modulo_portfolio`].
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// OS threads the race may use. Affects wall time only — the
    /// result is deterministic for a fixed configuration.
    pub threads: usize,
    /// Width of the II window: candidate IIs are
    /// `MII ..= MII + ii_span`. If the whole window fails, the driver
    /// falls back to a sequential search strictly *above* the window
    /// (up to `ModuloScheduler::max_ii`) so a schedule is always
    /// produced for well-formed kernels.
    pub ii_span: u64,
    /// Seeds for extra [`MetaSchedule::RandomTopo`] placement orders
    /// per candidate II (on top of the height priority and the four
    /// paper metas).
    pub topo_seeds: Vec<u64>,
    /// Budget applied to every candidate run independently (each run
    /// draws its own step quota; a wall deadline is a shared absolute
    /// instant). [`hls_ir::Budget::NONE`] (the default) runs
    /// unconstrained.
    pub budget: hls_ir::Budget,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            ii_span: 2,
            topo_seeds: vec![0xF1B0_0001, 0xF1B0_0002],
            budget: hls_ir::Budget::NONE,
        }
    }
}

/// What happened to one `(II, order)` candidate.
#[derive(Clone, Debug)]
pub struct ModuloRunReport {
    /// Candidate tag: `"ii=N/<order>"`.
    pub name: String,
    /// The candidate's II.
    pub ii: u64,
    /// `Some(latency)` if the candidate found a schedule; `None` if it
    /// was infeasible at that II or pruned by the incumbent.
    pub latency: Option<u64>,
    /// `true` if the incumbent pruned the candidate before it ran.
    pub pruned: bool,
    /// Set when the run panicked mid-placement (the panic message):
    /// the candidate was excluded while the race continued. Panics
    /// never escape the race.
    pub poisoned: Option<String>,
    /// `true` when the run's [`hls_ir::Budget`] expired before the
    /// placement finished.
    pub timed_out: bool,
}

/// Everything [`run_modulo_portfolio`] produces.
#[derive(Clone, Debug)]
pub struct ModuloPortfolioOutcome {
    /// The winning modulo schedule (passes `check_modulo`).
    pub schedule: ModuloSchedule,
    /// Achieved initiation interval.
    pub ii: u64,
    /// The certified bound the window started from; `ii == mii` is
    /// provably throughput-optimal.
    pub mii: u64,
    /// Resource component of the bound.
    pub res_mii: u64,
    /// Recurrence component of the bound.
    pub rec_mii: u64,
    /// Single-iteration latency of the winner.
    pub latency: u64,
    /// Tag of the winning candidate.
    pub winner_name: String,
    /// Per-candidate reports, in candidate order.
    pub runs: Vec<ModuloRunReport>,
}

/// One placement-order recipe raced at every candidate II.
#[derive(Clone, Debug)]
enum OrderRecipe {
    /// The scheduler's default height priority.
    Height,
    /// A meta schedule resolved over the kernel DAG.
    Meta(MetaSchedule),
}

impl OrderRecipe {
    fn name(&self) -> String {
        match self {
            OrderRecipe::Height => "height".to_string(),
            OrderRecipe::Meta(MetaSchedule::RandomTopo(seed)) => {
                format!("random-topo({seed:#x})")
            }
            OrderRecipe::Meta(m) => m.name().to_string(),
        }
    }
}

/// The order recipes a [`PipelineConfig`] races at each II.
fn recipes(cfg: &PipelineConfig) -> Vec<OrderRecipe> {
    let mut out = vec![OrderRecipe::Height];
    for m in MetaSchedule::PAPER {
        out.push(OrderRecipe::Meta(m));
    }
    for &seed in &cfg.topo_seeds {
        out.push(OrderRecipe::Meta(MetaSchedule::RandomTopo(seed)));
    }
    out
}

/// Races meta placement orders per candidate II over the loop kernel
/// `g` and returns the best `(II, latency)` schedule.
///
/// Candidates are ordered II-major (all orders at `MII`, then
/// `MII+1`, ...) and share a packed `(II, latency, slot)` atomic
/// incumbent: a worker skips a candidate whose II can no longer win.
/// The winner is `argmin (II, latency, slot)` over completions —
/// deterministic for a fixed configuration regardless of
/// `cfg.threads`. If every candidate in the window fails, the driver
/// falls back to the sequential II search so an outcome is always
/// produced for well-formed kernels.
///
/// # Errors
///
/// Propagates [`SchedError`] from kernel validation (distance-0
/// cycle), missing unit classes, or meta-order construction. When no
/// candidate completes, returns [`SchedError::Timeout`] if any run hit
/// `cfg.budget`, or [`SchedError::Poisoned`] naming the dead
/// candidates when every non-pruned run panicked — budget exhaustion
/// and panics don't prove the window infeasible, so the sequential
/// fallback only runs when the window genuinely failed.
///
/// # Panics
///
/// Panics if the II window × order recipes exceed 65535 candidates
/// (the packed-slot budget).
pub fn run_modulo_portfolio(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    cfg: &PipelineConfig,
) -> Result<ModuloPortfolioOutcome, SchedError> {
    let sched = ModuloScheduler::new(g.clone(), resources.clone())?;
    let mii = sched.mii();
    let kernel = g.kernel_dag();
    // Resolve orders once: the same order is reused at every II.
    let recipes = recipes(cfg);
    let mut orders: Vec<(String, Option<Vec<OpId>>)> = Vec::with_capacity(recipes.len());
    for r in &recipes {
        let order = match r {
            OrderRecipe::Height => None,
            OrderRecipe::Meta(m) => Some(m.order(&kernel, resources)?),
        };
        orders.push((r.name(), order));
    }
    // II-major candidate list: low IIs first so early completions
    // prune the rest of the window.
    let candidates: Vec<(u64, usize)> = (mii..=mii + cfg.ii_span)
        .flat_map(|ii| (0..orders.len()).map(move |o| (ii, o)))
        .collect();
    assert!(
        candidates.len() <= MAX_CANDIDATES,
        "II window × orders exceeds the packed-slot budget"
    );

    let _race_span = hls_obs::obs_span!(ModuloRace, "", candidates.len() as u64);
    let incumbent = AtomicU64::new(u64::MAX);
    let next_job = AtomicUsize::new(0);
    let workers = crate::race_workers(cfg.threads, candidates.len());

    /// How one `(II, order)` candidate ended.
    enum Done {
        Completed { latency: u64, ms: ModuloSchedule },
        Pruned,
        /// Infeasible at that II (or any other placement failure that
        /// only rules out this candidate).
        Failed,
        TimedOut,
        Poisoned(String),
    }
    let mut slots: Vec<Option<ModuloRunReport>> = Vec::new();
    slots.resize_with(candidates.len(), || None);
    let mut best: Option<(u64, u64, usize, ModuloSchedule)> = None;
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, Done)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let incumbent = &incumbent;
            let next_job = &next_job;
            let sched = &sched;
            let candidates = &candidates;
            let orders = &orders;
            let g = &*g;
            let budget = &cfg.budget;
            s.spawn(move || loop {
                let idx = next_job.fetch_add(1, Ordering::Relaxed);
                if idx >= candidates.len() {
                    break;
                }
                let (ii, oi) = candidates[idx];
                let slot = idx as u64;
                // Prune: even a latency-0 completion at this II loses.
                if pack(ii, 0, slot) > incumbent.load(Ordering::Relaxed) {
                    if tx.send((idx, Done::Pruned)).is_err() {
                        break;
                    }
                    continue;
                }
                // The scheduler already isolates placement panics
                // (`SchedError::Poisoned`); the outer catch_unwind
                // contains anything unwinding outside that boundary
                // (e.g. latency computation), so no panic crosses the
                // race. The run executes inside a fault-injection
                // scope named after the candidate tag.
                hls_obs::obs_count!(ModuloCandidates);
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let tag = format!("ii={ii}/{}", orders[oi].0);
                    let _span = hls_obs::obs_span!(ModuloCandidate, &tag, ii);
                    let _scope = hls_ir::faultinject::RunScope::enter(&tag);
                    let run = match &orders[oi].1 {
                        None => sched.schedule_at_budgeted(ii, budget),
                        Some(order) => sched.schedule_at_ordered_budgeted(ii, order, budget),
                    };
                    match run {
                        Ok(ms) => {
                            let latency = ms.latency(g);
                            incumbent.fetch_min(pack(ii, latency, slot), Ordering::Relaxed);
                            Done::Completed { latency, ms }
                        }
                        Err(SchedError::Timeout) => Done::TimedOut,
                        Err(SchedError::Poisoned(msg)) => Done::Poisoned(msg),
                        Err(_) => Done::Failed,
                    }
                }));
                let done = attempt.unwrap_or_else(|payload| {
                    Done::Poisoned(threaded_sched::panic_message(payload.as_ref()))
                });
                if tx.send((idx, done)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, done) in rx {
            let (ii, oi) = candidates[idx];
            let mut report = ModuloRunReport {
                name: format!("ii={ii}/{}", orders[oi].0),
                ii,
                latency: None,
                pruned: false,
                poisoned: None,
                timed_out: false,
            };
            match done {
                Done::Completed { latency, ms } => {
                    report.latency = Some(latency);
                    let better = best
                        .as_ref()
                        .is_none_or(|b| (ii, latency, idx) < (b.0, b.1, b.2));
                    if better {
                        best = Some((ii, latency, idx, ms));
                    }
                }
                Done::Pruned => report.pruned = true,
                Done::Failed => {}
                Done::TimedOut => report.timed_out = true,
                Done::Poisoned(msg) => report.poisoned = Some(msg),
            }
            slots[idx] = Some(report);
        }
    });
    let runs: Vec<ModuloRunReport> = slots
        .into_iter()
        .map(|r| r.expect("every candidate reports"))
        .collect();

    match best {
        Some((ii, latency, idx, ms)) => Ok(ModuloPortfolioOutcome {
            schedule: ms,
            ii,
            mii,
            res_mii: sched.res_mii(),
            rec_mii: sched.rec_mii(),
            latency,
            winner_name: runs[idx].name.clone(),
            runs,
        }),
        // Budget exhaustion and panics don't prove the window
        // infeasible, so the fallback (which would re-run the same
        // work) is pointless there — surface the typed error instead.
        None if runs.iter().any(|r| r.timed_out) => Err(SchedError::Timeout),
        None if runs.iter().all(|r| r.poisoned.is_some() || r.pruned) => {
            let dead: Vec<&str> = runs
                .iter()
                .filter(|r| r.poisoned.is_some())
                .map(|r| r.name.as_str())
                .collect();
            Err(SchedError::Poisoned(format!(
                "every modulo candidate panicked: {}",
                dead.join(", ")
            )))
        }
        None => {
            // The whole window failed — every recipe (including the
            // height priority) is proven infeasible there, so the
            // sequential fallback starts strictly *above* the window.
            let mut fallback = None;
            for ii in (mii + cfg.ii_span + 1)..=sched.max_ii() {
                match sched.schedule_at_budgeted(ii, &cfg.budget) {
                    Ok(ms) => {
                        fallback = Some((ii, ms));
                        break;
                    }
                    Err(SchedError::IiInfeasible(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
            let (ii, ms) =
                fallback.ok_or(SchedError::IiInfeasible(sched.max_ii()))?;
            Ok(ModuloPortfolioOutcome {
                latency: ms.latency(g),
                winner_name: format!("ii={ii}/height (fallback)"),
                ii,
                mii,
                res_mii: sched.res_mii(),
                rec_mii: sched.rec_mii(),
                schedule: ms,
                runs,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::schedule::check_modulo;
    use hls_ir::{bench_graphs, ResourceClass};

    fn mem_classic(alus: usize, muls: usize) -> ResourceSet {
        ResourceSet::classic(alus, muls).with(ResourceClass::MemPort, 1)
    }

    #[test]
    fn portfolio_matches_mii_on_the_mac_loop() {
        let g = bench_graphs::mac_loop();
        let r = mem_classic(1, 1);
        let out = run_modulo_portfolio(&g, &r, &PipelineConfig::default()).unwrap();
        assert_eq!(out.ii, out.mii);
        assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
        assert!(out.runs.iter().any(|r| r.latency.is_some()));
    }

    #[test]
    fn exhausted_modulo_budget_is_a_typed_timeout() {
        let g = bench_graphs::mac_loop();
        let r = mem_classic(1, 1);
        let cfg = PipelineConfig {
            threads: 2,
            budget: hls_ir::Budget::steps(1),
            ..PipelineConfig::default()
        };
        match run_modulo_portfolio(&g, &r, &cfg) {
            Err(SchedError::Timeout) => {}
            other => panic!("expected SchedError::Timeout, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_is_deterministic_across_thread_counts() {
        for (name, g) in bench_graphs::loops() {
            let r = mem_classic(2, 2);
            let mut results = Vec::new();
            for threads in [1usize, 2, 8] {
                let cfg = PipelineConfig {
                    threads,
                    ..PipelineConfig::default()
                };
                let out = run_modulo_portfolio(&g, &r, &cfg).unwrap();
                results.push(out);
            }
            for w in results.windows(2) {
                assert_eq!(w[0].ii, w[1].ii, "{name}");
                assert_eq!(w[0].latency, w[1].latency, "{name}");
                assert_eq!(w[0].winner_name, w[1].winner_name, "{name}");
                assert_eq!(w[0].schedule, w[1].schedule, "{name}");
            }
        }
    }

    #[test]
    fn portfolio_never_loses_to_the_sequential_search() {
        for (name, g) in bench_graphs::loops() {
            for r in [mem_classic(1, 1), mem_classic(2, 2), mem_classic(2, 1)] {
                let single = ModuloScheduler::new(g.clone(), r.clone())
                    .unwrap()
                    .schedule()
                    .unwrap();
                let out = run_modulo_portfolio(&g, &r, &PipelineConfig::default()).unwrap();
                assert!(
                    (out.ii, out.latency) <= (single.ii, single.latency),
                    "{name} {r:?}: portfolio ({}, {}) vs sequential ({}, {})",
                    out.ii,
                    out.latency,
                    single.ii,
                    single.latency
                );
                assert_eq!(check_modulo(&g, &r, &out.schedule), Ok(()));
            }
        }
    }
}
