//! The parallel portfolio race and the refinement driver.
//!
//! # The race
//!
//! Candidates (meta orders) race on OS threads pulled from a shared
//! work queue. The coordination state is **one atomic `u64`**: the
//! *incumbent*, the lexicographically smallest `(diameter, slot)` pair
//! — packed as `diameter << 16 | slot` — over all *completed* runs,
//! maintained with `fetch_min`. Each run probes the incumbent after
//! every scheduled operation (the early-abort hook of
//! [`ThreadedScheduler::schedule_all_until`]) and aborts as soon as
//! `pack(prefix_diameter, slot) > incumbent`:
//!
//! * if its prefix diameter already *exceeds* the incumbent diameter
//!   it can never win (the diameter is monotone, Lemma 4);
//! * if it *ties* the incumbent diameter but has a larger slot, it can
//!   at best tie — and ties resolve to the smaller slot, so it still
//!   cannot win.
//!
//! **Determinism.** The winner is `argmin (final_diameter, slot)` over
//! all candidates, independent of thread count and timing: the argmin
//! run is never aborted (any abort would need its packed prefix to
//! exceed the incumbent, but its packed prefix is bounded by its own
//! packed final, which is the global minimum and hence never above the
//! incumbent), so it always completes and `fetch_min` lands on its
//! value. Which *losing* runs abort, and where, does vary with timing
//! — only their [`RunReport`]s differ, never the result. `DESIGN.md`
//! §7 spells out the argument.
//!
//! # The refinement driver
//!
//! [`run_portfolio`] runs the base race over the paper's four meta
//! schedules plus the seeded perturbation populations, then iterates
//! the feedback loop: extract the winner's critical cone
//! ([`crate::cone::critical_cone`]), race seeded cone-local
//! perturbations ([`crate::perturb::perturb_within`]) against the
//! incumbent diameter (strict improvement required), adopt a winner,
//! and stop after a configured number of improvement-free rounds.

use crate::{cone, perturb};
use hls_ir::{OpId, PrecedenceGraph, ResourceSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use threaded_sched::meta::MetaSchedule;
use threaded_sched::{RunOutcome, SchedError, ThreadedScheduler};

/// Bits of the packed incumbent reserved for the candidate slot.
const SLOT_BITS: u32 = 16;
/// Largest raceable candidate count (slot 0 is the external bound).
const MAX_CANDIDATES: usize = (1 << SLOT_BITS) - 2;

/// Packs a `(diameter, slot)` pair so that `u64` ordering is the
/// lexicographic ordering of the pair.
fn pack(diameter: u64, slot: u64) -> u64 {
    debug_assert!(diameter < 1 << (64 - SLOT_BITS), "diameter overflows the packing");
    (diameter << SLOT_BITS) | slot
}

/// Where a candidate's feed order comes from.
///
/// Meta sources are resolved *inside* the race worker that picks the
/// candidate up: order construction (list scheduling for
/// [`MetaSchedule::ListBased`], longest-path peeling for
/// [`MetaSchedule::PathBased`]) is real work that parallelises with
/// everything else and must be charged to the strategy that needs it.
#[derive(Clone, Debug)]
pub enum OrderSource {
    /// Compute the order from a meta schedule at run time.
    Meta(MetaSchedule),
    /// An explicit order (the refinement perturbations).
    Explicit(Vec<OpId>),
}

impl OrderSource {
    /// Resolves the concrete feed order.
    fn resolve(
        &self,
        g: &PrecedenceGraph,
        resources: &ResourceSet,
    ) -> Result<Vec<OpId>, SchedError> {
        match self {
            OrderSource::Meta(m) => m.order(g, resources),
            OrderSource::Explicit(order) => Ok(order.clone()),
        }
    }
}

/// One strategy racing in a portfolio.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Display name (meta-schedule name or perturbation tag).
    pub name: String,
    /// The operation feed order (or the recipe for it).
    pub source: OrderSource,
}

/// What happened to one candidate in a race.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The candidate's name.
    pub name: String,
    /// Operations scheduled before completing, aborting, timing out
    /// or panicking.
    pub scheduled: usize,
    /// Final state diameter — `None` if the run did not complete.
    /// Which losing runs abort (and after how many operations) depends
    /// on thread timing; the race *result* does not.
    pub diameter: Option<u64>,
    /// Set when the run panicked mid-schedule (the panic message):
    /// the strategy was excluded and the race continued with the
    /// survivors. Panics never escape the race.
    pub poisoned: Option<String>,
    /// `true` when the run's [`hls_ir::Budget`] expired before it
    /// finished.
    pub timed_out: bool,
}

/// The race winner: the candidate with the lexicographically smallest
/// `(final diameter, index)`.
#[derive(Debug)]
pub struct RaceWinner {
    /// Final state diameter.
    pub diameter: u64,
    /// Index into the candidate list.
    pub index: usize,
    /// The winning scheduler, holding the completed state.
    pub scheduler: ThreadedScheduler,
    /// The resolved feed order that produced it.
    pub order: Vec<OpId>,
}

/// The outcome of one [`race`].
#[derive(Debug)]
pub struct RaceOutcome {
    /// Per-candidate reports, in candidate order.
    pub reports: Vec<RunReport>,
    /// The winner — `None` if every run aborted against the external
    /// bound.
    pub best: Option<RaceWinner>,
}

/// Workers a [`race`] will actually spawn for a given thread cap and
/// candidate count: `threads` clamped to the candidate count and to
/// the machine's physical parallelism. Runs are CPU-bound, so
/// spawning more workers than cores buys no latency and actively
/// hurts — oversubscription timeslices all runs to the same pace,
/// delaying the first completion and with it the incumbent every
/// abort decision feeds on. Exposed so reporting (BENCH_3) states the
/// effective parallelism the race used.
pub fn race_workers(threads: usize, n_candidates: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    threads.clamp(1, n_candidates.max(1)).min(cores)
}

/// Races `candidates` over `g` on up to `threads` OS threads.
///
/// `bound`, when given, pre-seeds the incumbent with slot 0 at that
/// diameter: only candidates *strictly better* than the bound can
/// complete and win (ties abort). With no bound the incumbent starts
/// at infinity and the best candidate always completes.
///
/// `budget` applies to **every run independently** (each draws its own
/// step quota; a wall deadline is a shared absolute instant). Runs
/// stopped by the budget report `timed_out`; runs that panic are
/// *poisoned* — recorded and excluded while the race continues with
/// the survivors, and no panic escapes this function.
///
/// The winner — `argmin (final diameter, index)` over the completed
/// runs — is deterministic for a fixed candidate list regardless of
/// `threads`; see the [module docs](self). Under a *step-quota*
/// budget the completed set itself is deterministic too, so budgeted
/// results reproduce across thread counts; a wall deadline's completed
/// set depends on machine speed.
///
/// # Errors
///
/// Propagates the first [`SchedError`] raised by any run (a cyclic
/// graph or an operation with no compatible unit). Poisoned and
/// timed-out runs are *not* errors at this level — callers decide
/// (e.g. [`run_portfolio`] errors only when nothing survived).
///
/// # Panics
///
/// Panics if `candidates.len() > 65534` (the packed-slot budget).
pub fn race(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    candidates: &[Candidate],
    threads: usize,
    bound: Option<u64>,
    budget: &hls_ir::Budget,
) -> Result<RaceOutcome, SchedError> {
    // Every run starts from the same pristine state; building it once
    // and cloning (one clone per worker, then one per run) pays the
    // graph validation, chain-cover decomposition, sink-distance
    // sweep and resource floor once instead of once per candidate.
    let template = ThreadedScheduler::new(g.clone(), resources.clone())?;
    race_from(&template, g, resources, candidates, threads, bound, budget)
}

/// A per-worker arena of scheduler state. The first run a worker
/// executes clones the pristine template and *grows* all per-node
/// tables; when that run does not hand its scheduler to the race
/// result (aborted, timed out, or a losing complete run would — only
/// winners move out), the grown state parks here and the next run
/// [`ThreadedScheduler::reset_to`]s it instead of cloning: same
/// pristine state bit-for-bit, zero allocation. Poisoned or diverged
/// states fail the reset and fall back to a fresh clone.
#[derive(Default)]
pub struct RunArena {
    parked: Option<Box<ThreadedScheduler>>,
}

impl RunArena {
    /// A pristine scheduler for the next run: the parked state reset in
    /// place when possible, a clone of `template` otherwise.
    ///
    /// Setting `HLS_PORTFOLIO_NO_ARENA` in the environment disables
    /// the reuse and clones every run — the pre-arena behavior, kept
    /// as a benchmark baseline (BENCH_7) and a diagnostic escape
    /// hatch. Results are identical either way; only allocation
    /// traffic differs.
    fn checkout(&mut self, template: &ThreadedScheduler) -> Box<ThreadedScheduler> {
        if std::env::var_os("HLS_PORTFOLIO_NO_ARENA").is_none() {
            if let Some(mut ts) = self.parked.take() {
                if ts.reset_to(template) {
                    return ts;
                }
            }
        }
        Box::new(template.clone())
    }

    /// Parks a finished run's scheduler for reuse by the next checkout.
    fn park(&mut self, ts: Box<ThreadedScheduler>) {
        self.parked = Some(ts);
    }
}

/// How one candidate's run ended, as sent over the race channel.
enum RunResult {
    /// Ran the whole order; eligible to win. The scheduler is boxed:
    /// it dwarfs the other variants, and most channel messages are
    /// non-winners.
    Completed {
        scheduled: usize,
        diameter: u64,
        scheduler: Box<ThreadedScheduler>,
        order: Vec<OpId>,
    },
    /// Pruned by the incumbent probe.
    Aborted { scheduled: usize },
    /// Stopped by the budget.
    TimedOut { scheduled: usize },
    /// Panicked mid-run (caught): excluded, race continues.
    Poisoned { scheduled: usize, msg: String },
    /// A structural error (bad order, incompatible resources) that
    /// fails the whole race.
    Fatal(SchedError),
}

/// Runs one candidate to a [`RunResult`]. All failure modes are
/// contained here: scheduler-level panics surface as
/// [`SchedError::Poisoned`] (the scheduler catches them), and anything
/// unwinding from order construction is caught by the outer
/// `catch_unwind`. The run executes inside a fault-injection
/// [`RunScope`](hls_ir::faultinject::RunScope) named after the
/// candidate, so the harness can target one strategy of a race
/// deterministically.
#[allow(clippy::too_many_arguments)]
fn run_candidate(
    cand: &Candidate,
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    template: &ThreadedScheduler,
    arena: &mut RunArena,
    slot: u64,
    incumbent: &AtomicU64,
    budget: &hls_ir::Budget,
) -> RunResult {
    hls_obs::obs_count!(StrategySpawned);
    let _span = hls_obs::obs_span!(PortfolioRun, &cand.name, slot);
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _scope = hls_ir::faultinject::RunScope::enter(&cand.name);
        let order = cand.source.resolve(g, resources)?;
        let mut ts = arena.checkout(template);
        let outcome = ts.schedule_all_budgeted(order.iter().copied(), budget, |bound| {
            pack(bound, slot) > incumbent.load(Ordering::Relaxed)
        });
        Ok(match outcome {
            Ok(RunOutcome::Completed) => {
                let d = ts.diameter();
                incumbent.fetch_min(pack(d, slot), Ordering::Relaxed);
                // Completed runs may win the race, so their scheduler
                // travels with the result instead of parking.
                RunResult::Completed {
                    scheduled: order.len(),
                    diameter: d,
                    scheduler: ts,
                    order,
                }
            }
            Ok(RunOutcome::Aborted { scheduled }) => {
                hls_obs::obs_count!(StrategyAborted);
                arena.park(ts);
                RunResult::Aborted { scheduled }
            }
            Ok(RunOutcome::DeadlineExpired { scheduled }) => {
                hls_obs::obs_count!(StrategyTimedOut);
                arena.park(ts);
                RunResult::TimedOut { scheduled }
            }
            Err(SchedError::Poisoned(msg)) => {
                // A poisoned state would fail the reset anyway: drop it.
                poisoned_post_mortem(&cand.name, &msg);
                RunResult::Poisoned {
                    scheduled: ts.scheduled_count(),
                    msg,
                }
            }
            Err(e) => return Err(e),
        })
    }));
    match attempt {
        Ok(Ok(result)) => result,
        Ok(Err(e)) => RunResult::Fatal(e),
        Err(payload) => {
            let msg = threaded_sched::panic_message(payload.as_ref());
            poisoned_post_mortem(&cand.name, &msg);
            RunResult::Poisoned { scheduled: 0, msg }
        }
    }
}

/// Records a poisoned strategy: lifecycle counter, ring marker, and a
/// flight-recorder dump so the panic leaves a post-mortem even though
/// the race swallows it and continues.
fn poisoned_post_mortem(name: &str, msg: &str) {
    hls_obs::obs_count!(StrategyPoisoned);
    hls_obs::obs_instant!(PortfolioRun, name, 1);
    hls_obs::flight::dump(&format!("portfolio strategy '{name}' poisoned: {msg}"));
}

/// [`race`] with a caller-supplied pristine scheduler — what
/// [`run_portfolio`] uses so the base race and every refinement round
/// share one index build instead of re-deriving it per call.
fn race_from(
    template: &ThreadedScheduler,
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    candidates: &[Candidate],
    threads: usize,
    bound: Option<u64>,
    budget: &hls_ir::Budget,
) -> Result<RaceOutcome, SchedError> {
    assert!(
        candidates.len() <= MAX_CANDIDATES,
        "too many candidates for the packed incumbent"
    );
    if candidates.is_empty() {
        return Ok(RaceOutcome {
            reports: Vec::new(),
            best: None,
        });
    }
    let _race_span = hls_obs::obs_span!(PortfolioRace, "", candidates.len() as u64);
    let incumbent = AtomicU64::new(bound.map_or(u64::MAX, |d| pack(d, 0)));
    let next_job = AtomicUsize::new(0);
    let workers = race_workers(threads, candidates.len());

    let mut slots: Vec<Option<RunReport>> = Vec::new();
    slots.resize_with(candidates.len(), || None);
    let mut best: Option<RaceWinner> = None;
    let mut errs: Vec<Option<SchedError>> = vec![None; candidates.len()];

    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, RunResult)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let incumbent = &incumbent;
            let next_job = &next_job;
            // One template clone per *worker* (RefCell scratch makes
            // the scheduler !Sync); the arena then recycles that
            // worker's run state so runs after the first reset in
            // place instead of cloning again.
            let template = template.clone();
            s.spawn(move || {
                let mut arena = RunArena::default();
                loop {
                    let idx = next_job.fetch_add(1, Ordering::Relaxed);
                    if idx >= candidates.len() {
                        break;
                    }
                    let slot = (idx + 1) as u64;
                    let run = run_candidate(
                        &candidates[idx],
                        g,
                        resources,
                        &template,
                        &mut arena,
                        slot,
                        incumbent,
                        budget,
                    );
                    if tx.send((idx, run)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (idx, run) in rx {
            let mut report = RunReport {
                name: candidates[idx].name.clone(),
                scheduled: 0,
                diameter: None,
                poisoned: None,
                timed_out: false,
            };
            match run {
                RunResult::Completed {
                    scheduled,
                    diameter,
                    scheduler,
                    order,
                } => {
                    report.scheduled = scheduled;
                    report.diameter = Some(diameter);
                    let better = best
                        .as_ref()
                        .is_none_or(|b| (diameter, idx) < (b.diameter, b.index));
                    if better {
                        best = Some(RaceWinner {
                            diameter,
                            index: idx,
                            scheduler: *scheduler,
                            order,
                        });
                    }
                }
                RunResult::Aborted { scheduled } => report.scheduled = scheduled,
                RunResult::TimedOut { scheduled } => {
                    report.scheduled = scheduled;
                    report.timed_out = true;
                }
                RunResult::Poisoned { scheduled, msg } => {
                    report.scheduled = scheduled;
                    report.poisoned = Some(msg);
                }
                RunResult::Fatal(e) => {
                    errs[idx] = Some(e);
                }
            }
            slots[idx] = Some(report);
        }
    });
    // Report the lowest-index failure: arrival order over the channel
    // is timing-dependent, the candidate list is not.
    if let Some(e) = errs.into_iter().flatten().next() {
        return Err(e);
    }
    let reports = slots
        .into_iter()
        .map(|r| r.expect("every job sends exactly one report"))
        .collect();
    if let Some(w) = &best {
        hls_obs::obs_count!(StrategyWon);
        hls_obs::obs_instant!(PortfolioRace, &candidates[w.index].name, w.diameter);
    }
    Ok(RaceOutcome { reports, best })
}

/// Configuration of the feedback-guided refinement loop.
#[derive(Clone, Debug)]
pub struct RefineConfig {
    /// Stop after this many consecutive rounds without a strict
    /// diameter improvement (the paper-inspired `R`). `0` disables
    /// refinement entirely.
    pub stall_rounds: usize,
    /// Hard cap on refinement rounds, improvement or not.
    pub max_rounds: usize,
    /// Perturbed orders raced per round. `0` disables refinement.
    pub candidates_per_round: usize,
    /// Slack band of the critical-cone extraction: operations with
    /// `diameter − ‖←v→‖ ≤ slack_band` seed the cone. A band of 1
    /// (default) pulls in the near-critical ops whose placement the
    /// perturbations most often need to vary; 0 is the pure critical
    /// cone.
    pub slack_band: u64,
    /// Base seed of the perturbation shuffles.
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            stall_rounds: 2,
            max_rounds: 8,
            candidates_per_round: 4,
            slack_band: 1,
            seed: 0x5EED_F00D,
        }
    }
}

/// Configuration of [`run_portfolio`].
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// OS threads the races may use. Affects wall time only — the
    /// result is deterministic for a fixed strategy/seed set.
    pub threads: usize,
    /// Seeds for the [`MetaSchedule::Random`] perturbation population
    /// (fully random permutations).
    pub random_seeds: Vec<u64>,
    /// Seeds for the [`MetaSchedule::RandomTopo`] population (random
    /// topological tie-breaks).
    pub topo_seeds: Vec<u64>,
    /// The feedback-refinement parameters.
    pub refine: RefineConfig,
    /// Budget applied to every run of the base race and of each
    /// refinement round; refinement rounds stop launching once its
    /// wall deadline passes. [`hls_ir::Budget::NONE`] (the default)
    /// runs unconstrained.
    pub budget: hls_ir::Budget,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            // 4 paper metas + 2 + 2 perturbations = 8 strategies.
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()).min(8),
            random_seeds: vec![0xA11CE, 0xB0B5],
            topo_seeds: vec![0x7E40_0001, 0x7E40_0002],
            refine: RefineConfig::default(),
            budget: hls_ir::Budget::NONE,
        }
    }
}

/// Everything [`run_portfolio`] produces.
#[derive(Debug)]
pub struct PortfolioOutcome {
    /// The winning scheduler, holding the final (possibly refined)
    /// state; use it exactly like a directly-driven
    /// [`ThreadedScheduler`] (extract, refine further, snapshot).
    pub winner: ThreadedScheduler,
    /// Name of the winning candidate (a meta schedule, a perturbation
    /// seed tag, or a refinement-round tag).
    pub winner_name: String,
    /// The feed order that produced the winner (the refinement loop
    /// perturbs this order further).
    pub winner_order: Vec<OpId>,
    /// Final state diameter after refinement.
    pub diameter: u64,
    /// Diameter of the portfolio winner *before* refinement — by
    /// construction `≤` every single meta schedule in the portfolio.
    pub initial_diameter: u64,
    /// The certified lower bound on any schedule of this behavior
    /// under these resources
    /// ([`ThreadedScheduler::schedule_lower_bound`]). When
    /// `diameter == lower_bound` the result is provably optimal and
    /// refinement was skipped.
    pub lower_bound: u64,
    /// Refinement rounds executed.
    pub refine_rounds: usize,
    /// Reports of every run: the base portfolio first, then each
    /// refinement round's candidates.
    pub runs: Vec<RunReport>,
}

/// The base candidate list of a portfolio configuration: the paper's
/// four meta schedules, then the [`MetaSchedule::Random`] and
/// [`MetaSchedule::RandomTopo`] populations. Exposed so benchmarks
/// and tools can race exactly what [`run_portfolio`] races.
pub fn base_candidates(cfg: &PortfolioConfig) -> Vec<Candidate> {
    let mut candidates = Vec::new();
    for m in MetaSchedule::PAPER {
        candidates.push(Candidate {
            name: m.name().to_string(),
            source: OrderSource::Meta(m),
        });
    }
    for &seed in &cfg.random_seeds {
        candidates.push(Candidate {
            name: format!("random({seed:#x})"),
            source: OrderSource::Meta(MetaSchedule::Random(seed)),
        });
    }
    for &seed in &cfg.topo_seeds {
        candidates.push(Candidate {
            name: format!("random-topo({seed:#x})"),
            source: OrderSource::Meta(MetaSchedule::RandomTopo(seed)),
        });
    }
    candidates
}

/// Runs the full portfolio: the paper's four meta schedules plus the
/// seeded perturbation populations race once, then the feedback loop
/// refines the winner. See the [module docs](self).
///
/// The returned diameter is never worse than the best single meta
/// schedule in the portfolio (the base race contains them), and the
/// result is deterministic for a fixed configuration regardless of
/// `cfg.threads`.
///
/// # Errors
///
/// Propagates [`SchedError`] from order construction (e.g.
/// [`MetaSchedule::ListBased`] without compatible units) or from any
/// run. When *no* base candidate completes — every run timed out or
/// was poisoned — returns [`SchedError::Timeout`] (if any run hit the
/// budget) or [`SchedError::Poisoned`] naming the dead strategies;
/// a race with at least one survivor succeeds with the best survivor.
pub fn run_portfolio(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    cfg: &PortfolioConfig,
) -> Result<PortfolioOutcome, SchedError> {
    let candidates = base_candidates(cfg);
    // One pristine scheduler (graph validation, chain cover, bound
    // caches) shared by the base race and every refinement round.
    let template = ThreadedScheduler::new(g.clone(), resources.clone())?;
    let base = race_from(
        &template,
        g,
        resources,
        &candidates,
        cfg.threads,
        None,
        &cfg.budget,
    )?;
    let mut runs = base.reports;
    let Some(win) = base.best else {
        // An unbounded race only fails to produce a winner when every
        // run was cut down by the budget or by a panic.
        if runs.iter().any(|r| r.timed_out) {
            return Err(SchedError::Timeout);
        }
        let dead: Vec<&str> = runs
            .iter()
            .filter(|r| r.poisoned.is_some())
            .map(|r| r.name.as_str())
            .collect();
        return Err(SchedError::Poisoned(format!(
            "every portfolio strategy panicked: {}",
            dead.join(", ")
        )));
    };
    let initial_diameter = win.diameter;
    let mut winner = win.scheduler;
    let mut winner_name = candidates[win.index].name.clone();
    let mut winner_order = win.order;
    let mut diameter = initial_diameter;

    let lower_bound = winner.schedule_lower_bound();
    let mut rounds = 0usize;
    let mut stall = 0usize;
    while diameter > lower_bound
        && stall < cfg.refine.stall_rounds
        && rounds < cfg.refine.max_rounds
        && cfg.refine.candidates_per_round > 0
        && !cfg.budget.wall_expired()
    {
        rounds += 1;
        hls_obs::obs_count!(RefineRounds);
        let _round_span = hls_obs::obs_span!(RefineRound, "", rounds as u64);
        let cone = cone::critical_cone(&winner, cfg.refine.slack_band);
        if cone.len() < 2 {
            break; // nothing to permute
        }
        let mut in_cone = vec![false; g.len()];
        for &v in &cone {
            in_cone[v.index()] = true;
        }
        // Candidate 0 is the deterministic cone-first move — but only
        // while the winner is fresh (repeating it against an unchanged
        // winner would just replay a known loser); the rest are seeded
        // cone-local shuffles.
        let with_front = stall == 0;
        let perturbed: Vec<Candidate> = (0..cfg.refine.candidates_per_round)
            .map(|i| {
                let (name, order) = if i == 0 && with_front {
                    (
                        format!("refine r{rounds}.front"),
                        perturb::cone_first(&winner_order, &in_cone),
                    )
                } else {
                    (
                        format!("refine r{rounds}.{i}"),
                        perturb::perturb_within(
                            &winner_order,
                            &in_cone,
                            perturb::mix_seed(cfg.refine.seed, rounds as u64, i as u64),
                        ),
                    )
                };
                Candidate {
                    name,
                    source: OrderSource::Explicit(order),
                }
            })
            .collect();
        let round = race_from(
            &template,
            g,
            resources,
            &perturbed,
            cfg.threads,
            Some(diameter),
            &cfg.budget,
        )?;
        let mut improved = false;
        if let Some(w) = round.best {
            // A bounded race only completes strict improvements.
            debug_assert!(w.diameter < diameter);
            diameter = w.diameter;
            winner = w.scheduler;
            winner_name = perturbed[w.index].name.clone();
            winner_order = w.order;
            improved = true;
        }
        runs.extend(round.reports);
        if improved {
            stall = 0;
        } else {
            stall += 1;
        }
    }

    Ok(PortfolioOutcome {
        winner,
        winner_name,
        winner_order,
        diameter,
        initial_diameter,
        lower_bound,
        refine_rounds: rounds,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::bench_graphs;

    fn two_identical(g: &PrecedenceGraph, r: &ResourceSet) -> Vec<Candidate> {
        let order = MetaSchedule::Topological.order(g, r).unwrap();
        vec![
            Candidate {
                name: "first".into(),
                source: OrderSource::Explicit(order.clone()),
            },
            Candidate {
                name: "twin".into(),
                source: OrderSource::Explicit(order),
            },
        ]
    }

    #[test]
    fn single_threaded_race_prunes_the_identical_twin_by_slot() {
        // With one worker, jobs run sequentially: the first completes
        // and sets the incumbent; the identical twin ties the diameter
        // with a larger slot and must abort — deterministically.
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let out = race(&g, &r, &two_identical(&g, &r), 1, None, &hls_ir::Budget::NONE).unwrap();
        let win = out.best.expect("first candidate completes");
        assert_eq!(win.index, 0);
        assert_eq!(win.scheduler.diameter(), win.diameter);
        assert_eq!(win.order.len(), g.len());
        assert_eq!(out.reports[0].diameter, Some(win.diameter));
        assert_eq!(out.reports[0].scheduled, g.len());
        assert_eq!(out.reports[1].diameter, None, "twin must abort on the tie");
        assert!(out.reports[1].scheduled <= g.len());
    }

    #[test]
    fn bounded_race_with_unbeatable_bound_completes_nothing() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        // The graph's critical path lower-bounds every schedule, so a
        // bound at that value admits no strict improvement.
        let bound = hls_ir::algo::diameter(&g);
        let out = race(&g, &r, &two_identical(&g, &r), 2, Some(bound), &hls_ir::Budget::NONE)
            .unwrap();
        assert!(out.best.is_none());
        assert!(out.reports.iter().all(|rep| rep.diameter.is_none()));
    }

    #[test]
    fn race_reports_line_up_with_candidates() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let cands: Vec<Candidate> = MetaSchedule::PAPER
            .into_iter()
            .map(|m| Candidate {
                name: m.name().to_string(),
                source: OrderSource::Meta(m),
            })
            .collect();
        let out = race(&g, &r, &cands, 4, None, &hls_ir::Budget::NONE).unwrap();
        assert_eq!(out.reports.len(), 4);
        for (rep, c) in out.reports.iter().zip(&cands) {
            assert_eq!(rep.name, c.name);
        }
    }

    #[test]
    fn empty_candidate_list_is_a_clean_no_op() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let out = race(&g, &r, &[], 4, None, &hls_ir::Budget::NONE).unwrap();
        assert!(out.reports.is_empty());
        assert!(out.best.is_none());
    }

    #[test]
    fn scheduling_errors_propagate_out_of_the_race() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 0); // no multiplier
        let order: Vec<OpId> = g.op_ids().collect();
        let cands = vec![Candidate {
            name: "doomed".into(),
            source: OrderSource::Explicit(order),
        }];
        assert!(race(&g, &r, &cands, 2, None, &hls_ir::Budget::NONE).is_err());
    }

    #[test]
    fn poisoned_strategy_is_excluded_and_the_best_survivor_wins() {
        // Arm a fault plan targeting only the doomed candidate's run
        // scope (names unique to this test, so concurrently running
        // tests never match the plan): its panic is caught and
        // recorded, the twin survives and wins the race.
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let order = MetaSchedule::Topological.order(&g, &r).unwrap();
        let cands = vec![
            Candidate {
                name: "race-poison-target".into(),
                source: OrderSource::Explicit(order.clone()),
            },
            Candidate {
                name: "race-poison-survivor".into(),
                source: OrderSource::Explicit(order),
            },
        ];
        let _armed = hls_ir::faultinject::arm(
            hls_ir::faultinject::FaultPlan::panic_at(3).in_run("race-poison-target"),
        );
        let out = race(&g, &r, &cands, 2, None, &hls_ir::Budget::NONE).unwrap();
        let win = out.best.expect("the unpoisoned twin completes");
        assert_eq!(win.index, 1, "the survivor wins, not the poisoned slot");
        let dead = &out.reports[0];
        assert!(
            dead.poisoned.as_deref().is_some_and(|m| m.contains("injected panic")),
            "poisoned report carries the panic message: {dead:?}"
        );
        assert_eq!(dead.diameter, None);
        assert!(out.reports[1].poisoned.is_none());
    }

    #[test]
    fn step_quota_times_out_every_run_and_the_race_reports_it() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let budget = hls_ir::Budget::steps(3);
        let out = race(&g, &r, &two_identical(&g, &r), 1, None, &budget).unwrap();
        assert!(out.best.is_none());
        for rep in &out.reports {
            assert!(rep.timed_out, "both runs hit the 3-step quota: {rep:?}");
            assert_eq!(rep.scheduled, 3);
        }
    }

    #[test]
    fn exhausted_portfolio_budget_is_a_typed_timeout() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let cfg = PortfolioConfig {
            threads: 2,
            budget: hls_ir::Budget::steps(1),
            ..PortfolioConfig::default()
        };
        match run_portfolio(&g, &r, &cfg) {
            Err(SchedError::Timeout) => {}
            other => panic!("expected SchedError::Timeout, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_runs_cover_base_and_refinement() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 2);
        let cfg = PortfolioConfig {
            threads: 2,
            ..PortfolioConfig::default()
        };
        let out = run_portfolio(&g, &r, &cfg).unwrap();
        assert!(out.runs.len() >= 8, "base portfolio is 8 strategies");
        assert!(out.diameter <= out.initial_diameter);
        assert_eq!(out.winner.diameter(), out.diameter);
        out.winner.check_invariants().unwrap();
    }
}
