//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness behind the `criterion_group!` /
//! `criterion_main!` API: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the median ns/iter. No
//! statistics beyond the median, no plots, no CLI filtering — just
//! enough for `cargo bench` to run and produce comparable numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with the real crate.
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    testing: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the bench binary is invoked with `--test`;
        // run each closure once so the benches stay smoke-tested.
        let testing = std::env::args().any(|a| a == "--test");
        Criterion { testing }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            testing: self.testing,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A hierarchical benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("threaded", 512)` → `threaded/512`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Throughput annotation; recorded but only echoed in the report.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    testing: bool,
    // Tie the group's lifetime to the Criterion borrow like the real API.
    _marker: std::marker::PhantomData<&'a mut ()>,
}

// Separate impl block so the struct literal in `benchmark_group` can
// omit the marker via this constructor-free pattern.
impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget (split across samples).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            testing: self.testing,
            warm_up: self.warm_up,
            sample_size: self.sample_size,
            measurement: self.measurement,
            median_ns: 0.0,
        };
        f(&mut b, input);
        if !self.testing {
            println!("{}/{}  median {:.0} ns/iter", self.name, id.id, b.median_ns);
        }
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b));
    }

    /// Ends the group (report flushing in the real crate; no-op here).
    pub fn finish(self) {}
}

/// Times a closure; handed to the benchmark body.
pub struct Bencher {
    testing: bool,
    warm_up: Duration,
    sample_size: usize,
    measurement: Duration,
    median_ns: f64,
}

impl Bencher {
    /// Measures `routine`, storing the median time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.testing {
            black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Each sample runs enough iterations to fill its time slice.
        let slice_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = (slice_ns / per_iter.max(1.0)).ceil().max(1.0) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(3));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &42u64, |b, &x| {
            b.iter(|| black_box(x + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
