//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses (see
//! `crates/shims/README.md`): a seedable deterministic generator plus
//! the `random_bool` / `random_range` / `shuffle` / `choose` helpers.
//! The core generator is xoshiro256++ seeded through splitmix64 — fast,
//! well distributed, and stable across platforms and builds.

use std::ops::Range;

/// Uniform random generation, the subset of `rand::Rng` used in-repo.
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform sample from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, the subset of `rand::SeedableRng` used.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable from a `Range` by [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `range`; panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias over u64 spans is irrelevant here.
                let x = rng.next_u64() as u128;
                let r = (x * span) >> 64;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with splitmix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers over slices.

    use super::{Rng, RngCore};

    /// In-place shuffling, the subset of `rand::seq::SliceRandom` used.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    /// Random element choice, the subset of `rand::seq::IndexedRandom`.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let x = rng.random_range(0..4u8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
