//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, integer-range strategies, [`collection::vec`],
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` and
//! `prop_assume!`. Inputs are sampled uniformly (deterministically per
//! test name); there is no shrinking — a failing case prints its inputs
//! instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Test-runner configuration (`cases` is the only knob used in-repo).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample and retry.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A value generator: the subset of proptest's `Strategy` the macro
/// needs (pure sampling, no value trees / shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, StdRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..4)`: a vector of 1–3 sampled elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Deterministic per-test seed from the test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Alias of the crate root so `prop::collection::vec(..)` resolves,
    /// as with the real crate's `proptest::prelude::*`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// The property-test macro: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(64).max(1024),
                        "proptest: too many prop_assume! rejections in {}",
                        stringify!($name),
                    );
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed: {}\n  inputs: {}",
                                stringify!($name), msg, inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l,
            )));
        }
    }};
}

/// `prop_assume!(cond)`: reject the case (resample) when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(
            a in 0u64..100,
            b in 5usize..10,
            c in -50i64..50,
        ) {
            prop_assert!(a < 100);
            prop_assert!((5..10).contains(&b));
            prop_assert!((-50..50).contains(&c));
        }

        #[test]
        fn vec_strategy_obeys_length(
            picks in prop::collection::vec(0usize..64, 1..4),
        ) {
            prop_assert!((1..4).contains(&picks.len()));
            for p in &picks {
                prop_assert!(*p < 64);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1, "evens only after assume");
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x is never that big");
            }
        }
        always_fails();
    }
}
