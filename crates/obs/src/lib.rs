//! # hls-obs — zero-dependency structured observability
//!
//! One leaf crate threads telemetry through the whole engine
//! (ir → core → search → flow → serve) without pulling in a single
//! external dependency:
//!
//! * **Span recorder** ([`recorder`]) — a lock-free per-thread ring
//!   of fixed capacity. The owning thread is the only writer; each
//!   slot carries a seqlock stamp so concurrent snapshots read
//!   consistently or skip. No allocation in steady state; on wrap
//!   the newest events win.
//! * **Metrics registry** ([`metrics`]) — typed counters (sharded
//!   eight ways against cacheline contention), gauges, and
//!   log2-bucketed latency histograms, all plain atomics.
//! * **Exporters** ([`export`]) — Chrome `trace_event` JSON for
//!   timelines and a flat JSON metrics snapshot; [`flight`] dumps
//!   both on `catch_unwind` so panics leave a post-mortem.
//! * **Leveled logging** ([`log`]) — `HLS_LOG`-filtered events to
//!   stderr and (when recording) the ring.
//!
//! ## Cost model
//!
//! Three gates, cheapest first:
//!
//! 1. **Compile-time** — built with `--no-default-features` the
//!    [`COMPILED`] constant is `false` and every macro body is dead
//!    code the optimizer deletes.
//! 2. **Runtime master switch** — [`enabled`] is one relaxed atomic
//!    load and a predictable branch. This is the *entire* cost at
//!    every instrumentation point while recording is off, which is
//!    what the BENCH_7 2% microbench gate measures.
//! 3. **Sampling** — with recording on, ring traffic (not counters
//!    or histograms) can be thinned to every n-th event via
//!    [`recorder::set_sample_every`].
//!
//! ## Quick start
//!
//! ```
//! hls_obs::set_enabled(true);
//! {
//!     let _span = hls_obs::obs_span!(PortfolioRace, "base-race");
//!     hls_obs::obs_count!(StrategySpawned);
//! }
//! let trace = hls_obs::export::chrome_trace_json(&hls_obs::recorder::snapshot_events());
//! assert!(trace.contains("portfolio:race"));
//! hls_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod export;
pub mod flight;
pub mod log;
pub mod metrics;
pub mod recorder;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub use log::Level;
pub use metrics::{Counter, Gauge, Hist};
pub use recorder::{Phase, SpanGuard};

/// `true` when the crate was built with the `recorder` feature (the
/// default). `false` turns every macro into statically dead code.
pub const COMPILED: bool = cfg!(feature = "recorder");

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The runtime master switch. One relaxed load; this is the whole
/// per-probe cost while recording is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Both gates at once — what the macros test.
#[inline(always)]
pub fn recording() -> bool {
    COMPILED && enabled()
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(0);

/// A process-unique non-zero trace id. Seeded once from the clock so
/// ids from successive daemon restarts don't collide in aggregated
/// logs; subsequent ids are a cheap counter.
pub fn next_trace_id() -> u64 {
    let prev = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
    if prev == 0 {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15)
            | 1;
        let seed = (seed ^ seed.rotate_left(31)).wrapping_mul(0x9e3779b97f4a7c15) | 1;
        NEXT_TRACE_ID.store(seed.wrapping_add(1), Ordering::Relaxed);
        return seed;
    }
    prev
}

/// Opens a span over a [`Phase`]; records when the guard drops.
/// Bind the result — `let _span = obs_span!(...)` — so the span
/// covers the scope.
///
/// Forms: `obs_span!(Phase)`, `obs_span!(Phase, label)`,
/// `obs_span!(Phase, label, arg)` where `label: &str` and
/// `arg: u64`. Label and arg expressions are **not evaluated**
/// unless recording is on.
#[macro_export]
macro_rules! obs_span {
    ($phase:ident) => {
        $crate::obs_span!($phase, "", 0u64)
    };
    ($phase:ident, $label:expr) => {
        $crate::obs_span!($phase, $label, 0u64)
    };
    ($phase:ident, $label:expr, $arg:expr) => {
        if $crate::recording() {
            $crate::recorder::span($crate::Phase::$phase, $label, $arg)
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Records an instant event: `obs_instant!(Phase)`,
/// `obs_instant!(Phase, label)`, `obs_instant!(Phase, label, arg)`.
/// Arguments are not evaluated unless recording is on.
#[macro_export]
macro_rules! obs_instant {
    ($phase:ident) => {
        $crate::obs_instant!($phase, "", 0u64)
    };
    ($phase:ident, $label:expr) => {
        $crate::obs_instant!($phase, $label, 0u64)
    };
    ($phase:ident, $label:expr, $arg:expr) => {
        if $crate::recording() {
            $crate::recorder::instant($crate::Phase::$phase, $label, $arg);
        }
    };
}

/// Bumps a [`Counter`] (by 1, or by a given amount):
/// `obs_count!(SelectCalls)` / `obs_count!(SelectCalls, n)`. The
/// hot-path form: one relaxed load and branch when off, one sharded
/// `fetch_add` when on.
#[macro_export]
macro_rules! obs_count {
    ($counter:ident) => {
        $crate::obs_count!($counter, 1u64)
    };
    ($counter:ident, $n:expr) => {
        if $crate::recording() {
            $crate::metrics::counter_add($crate::Counter::$counter, $n);
        }
    };
}

/// Adjusts a [`Gauge`] by a signed delta:
/// `obs_gauge_add!(QueueDepth, 1)` / `obs_gauge_add!(QueueDepth, -1)`.
#[macro_export]
macro_rules! obs_gauge_add {
    ($gauge:ident, $delta:expr) => {
        if $crate::recording() {
            $crate::metrics::gauge_add($crate::Gauge::$gauge, $delta);
        }
    };
}

/// Records a sample into a [`Hist`]:
/// `obs_hist!(ServeQueueWaitUs, micros)`.
#[macro_export]
macro_rules! obs_hist {
    ($hist:ident, $us:expr) => {
        if $crate::recording() {
            $crate::metrics::hist_record($crate::Hist::$hist, $us);
        }
    };
}

/// Emits a leveled log event with `format!` syntax:
/// `obs_log!(Info, "serve", "listening on {addr}")`. Unlike the
/// recording macros, logging is governed by `HLS_LOG` alone — the
/// daemon logs whether or not tracing is on. The format arguments
/// are not evaluated when the level is filtered out.
#[macro_export]
macro_rules! obs_log {
    ($level:ident, $target:expr, $($fmt:tt)+) => {
        if $crate::COMPILED && $crate::log::log_enabled($crate::Level::$level) {
            $crate::log::log_event($crate::Level::$level, $target, &format!($($fmt)+));
        }
    };
}

/// `obs_log!(Error, ...)` shorthand.
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($fmt:tt)+) => { $crate::obs_log!(Error, $target, $($fmt)+) };
}

/// `obs_log!(Warn, ...)` shorthand.
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($fmt:tt)+) => { $crate::obs_log!(Warn, $target, $($fmt)+) };
}

/// `obs_log!(Info, ...)` shorthand.
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($fmt:tt)+) => { $crate::obs_log!(Info, $target, $($fmt)+) };
}

/// `obs_log!(Debug, ...)` shorthand.
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($fmt:tt)+) => { $crate::obs_log!(Debug, $target, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_switch_round_trips() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        assert_eq!(recording(), COMPILED);
        set_enabled(false);
        assert!(!enabled());
        assert!(!recording());
        set_enabled(was);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        let c = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn macros_are_inert_when_disabled() {
        set_enabled(false);
        let before = metrics::counter_get(Counter::SelectCalls);
        obs_count!(SelectCalls);
        let _span = obs_span!(FlowSchedule, "never-recorded");
        obs_instant!(DegradeRung, "never-recorded");
        obs_hist!(FlowScheduleUs, 123);
        assert_eq!(metrics::counter_get(Counter::SelectCalls), before);
    }
}
