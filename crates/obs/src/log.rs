//! Leveled logging through the recorder, filtered by the `HLS_LOG`
//! environment variable (`error|warn|info|debug|trace`, default
//! `info`; `off` silences everything).
//!
//! Events at or above the active level go to stderr; when the
//! recorder is enabled they are also stamped into the span ring so a
//! flight dump carries the recent log tail.

use crate::metrics::Counter;
use crate::{metrics, recorder};
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The daemon cannot do what was asked of it.
    Error = 0,
    /// Something degraded but service continues.
    Warn = 1,
    /// Lifecycle milestones (boot, drain, shutdown).
    Info = 2,
    /// Per-request detail.
    Debug = 3,
    /// Firehose.
    Trace = 4,
}

impl Level {
    /// Fixed-width tag for stderr lines.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses an `HLS_LOG` value. `None` for unrecognised input.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" | "" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    pub(crate) fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// The active filter: events strictly below it are dropped. `None`
/// means logging is off entirely.
pub fn max_level() -> Option<Level> {
    static MAX: OnceLock<Option<Level>> = OnceLock::new();
    *MAX.get_or_init(|| {
        match std::env::var("HLS_LOG") {
            Ok(v) => Level::parse(&v).unwrap_or(Some(Level::Info)),
            Err(_) => Some(Level::Info),
        }
    })
}

/// True when an event at `level` would be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Emits one log event: stderr line (`[LEVEL target] message`) plus
/// a ring record when the recorder is enabled. Prefer the
/// `obs_log!` / `obs_info!`-family macros at call sites.
pub fn log_event(level: Level, target: &str, message: &str) {
    if !log_enabled(level) {
        return;
    }
    metrics::counter_add(Counter::LogEvents, 1);
    eprintln!("[{} {}] {}", level.tag(), target, message);
    recorder::log_record(level as u8, &format!("{target}: {message}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_values() {
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("ERROR"), Some(Some(Level::Error)));
        assert_eq!(Level::parse(" warn "), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("debug"), Some(Some(Level::Debug)));
        assert_eq!(Level::parse("trace"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::from_u8(1), Level::Warn);
        assert_eq!(Level::from_u8(200), Level::Trace);
    }
}
