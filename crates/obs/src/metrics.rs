//! The metrics registry: typed counters, gauges, and log2-bucketed
//! latency histograms — all plain atomics, aggregated on demand.
//!
//! Counters are sharded eight ways on a per-thread affinity so hot
//! paths (one `count!` per scheduler op) don't ping-pong a cacheline
//! between workers. Gauges and histograms are single-copy: they are
//! touched at phase granularity, not per-op.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counters. Keep the order stable — snapshots and
/// the STATS plane key off [`Counter::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Scheduler `select` calls (one candidate chosen).
    SelectCalls = 0,
    /// Scheduler `commit` calls (one op placed).
    CommitCalls,
    /// Single pair reachability probes against the reach index.
    ReachPairProbes,
    /// Set-vs-node reachability probes (SWAR kernels).
    ReachSetProbes,
    /// Portfolio strategies spawned into a race.
    StrategySpawned,
    /// Strategies aborted because an incumbent already won.
    StrategyAborted,
    /// Strategies that exhausted their budget.
    StrategyTimedOut,
    /// Strategies that panicked and were isolated.
    StrategyPoisoned,
    /// Strategies whose schedule won their race.
    StrategyWon,
    /// Feedback-refinement rounds run after the base race.
    RefineRounds,
    /// (II, meta) candidates attempted by the modulo portfolio.
    ModuloCandidates,
    /// Ladder demotions because a rung ran out of time.
    DegradeTimeout,
    /// Ladder demotions because a rung panicked.
    DegradePoisoned,
    /// Ladder demotions because a rung returned an error.
    DegradeError,
    /// Flows answered at the Portfolio rung.
    AnsweredPortfolio,
    /// Flows answered at the SingleMeta rung.
    AnsweredSingleMeta,
    /// Flows answered at the ListSchedule rung.
    AnsweredListSchedule,
    /// Flows that fell all the way to a bound-only answer.
    AnsweredBoundOnly,
    /// Requests admitted by the daemon.
    ServeRequests,
    /// Requests answered `OK`.
    ServeCompleted,
    /// Requests answered `ERR` (any reject kind).
    ServeRejected,
    /// Requests that panicked inside a worker and were caught.
    ServePanics,
    /// Schedule-cache hits.
    CacheHits,
    /// ECO grafts taken instead of a full flow.
    EcoGrafts,
    /// `STATS` queries served.
    StatsQueries,
    /// Log events emitted (at or above the active `HLS_LOG` level).
    LogEvents,
    /// Flight-recorder dumps written.
    FlightDumps,
}

impl Counter {
    /// Number of counters (size of the backing array).
    pub const COUNT: usize = Counter::FlightDumps as usize + 1;

    /// All counters, in snapshot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::SelectCalls,
        Counter::CommitCalls,
        Counter::ReachPairProbes,
        Counter::ReachSetProbes,
        Counter::StrategySpawned,
        Counter::StrategyAborted,
        Counter::StrategyTimedOut,
        Counter::StrategyPoisoned,
        Counter::StrategyWon,
        Counter::RefineRounds,
        Counter::ModuloCandidates,
        Counter::DegradeTimeout,
        Counter::DegradePoisoned,
        Counter::DegradeError,
        Counter::AnsweredPortfolio,
        Counter::AnsweredSingleMeta,
        Counter::AnsweredListSchedule,
        Counter::AnsweredBoundOnly,
        Counter::ServeRequests,
        Counter::ServeCompleted,
        Counter::ServeRejected,
        Counter::ServePanics,
        Counter::CacheHits,
        Counter::EcoGrafts,
        Counter::StatsQueries,
        Counter::LogEvents,
        Counter::FlightDumps,
    ];

    /// Stable snake_case name used in snapshots and STATS output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SelectCalls => "select_calls",
            Counter::CommitCalls => "commit_calls",
            Counter::ReachPairProbes => "reach_pair_probes",
            Counter::ReachSetProbes => "reach_set_probes",
            Counter::StrategySpawned => "strategy_spawned",
            Counter::StrategyAborted => "strategy_aborted",
            Counter::StrategyTimedOut => "strategy_timed_out",
            Counter::StrategyPoisoned => "strategy_poisoned",
            Counter::StrategyWon => "strategy_won",
            Counter::RefineRounds => "refine_rounds",
            Counter::ModuloCandidates => "modulo_candidates",
            Counter::DegradeTimeout => "degrade_timeout",
            Counter::DegradePoisoned => "degrade_poisoned",
            Counter::DegradeError => "degrade_error",
            Counter::AnsweredPortfolio => "answered_portfolio",
            Counter::AnsweredSingleMeta => "answered_single_meta",
            Counter::AnsweredListSchedule => "answered_list_schedule",
            Counter::AnsweredBoundOnly => "answered_bound_only",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeCompleted => "serve_completed",
            Counter::ServeRejected => "serve_rejected",
            Counter::ServePanics => "serve_panics",
            Counter::CacheHits => "cache_hits",
            Counter::EcoGrafts => "eco_grafts",
            Counter::StatsQueries => "stats_queries",
            Counter::LogEvents => "log_events",
            Counter::FlightDumps => "flight_dumps",
        }
    }
}

/// Point-in-time gauges (signed: decrements are legal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Jobs waiting in the daemon's admission queue.
    QueueDepth = 0,
    /// Requests currently being scheduled by workers.
    InFlight,
    /// Open client connections.
    Connections,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = Gauge::Connections as usize + 1;

    /// All gauges, in snapshot order.
    pub const ALL: [Gauge; Gauge::COUNT] =
        [Gauge::QueueDepth, Gauge::InFlight, Gauge::Connections];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue_depth",
            Gauge::InFlight => "in_flight",
            Gauge::Connections => "connections",
        }
    }
}

/// Log2-bucketed microsecond histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// End-to-end served request latency.
    ServeRequestUs = 0,
    /// Time a job spent queued before a worker picked it up.
    ServeQueueWaitUs,
    /// Whole scheduling phase of a flow.
    FlowScheduleUs,
    /// One portfolio race.
    PortfolioRaceUs,
    /// One strategy run inside a race.
    PortfolioRunUs,
    /// The modulo (II search) portfolio.
    ModuloRaceUs,
    /// The parallel seam stitch.
    ParallelStitchUs,
    /// One degradation-ladder rung attempt.
    DegradeRungUs,
    /// An ECO graft fast path.
    EcoGraftUs,
}

impl Hist {
    /// Number of histograms.
    pub const COUNT: usize = Hist::EcoGraftUs as usize + 1;

    /// All histograms, in snapshot order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::ServeRequestUs,
        Hist::ServeQueueWaitUs,
        Hist::FlowScheduleUs,
        Hist::PortfolioRaceUs,
        Hist::PortfolioRunUs,
        Hist::ModuloRaceUs,
        Hist::ParallelStitchUs,
        Hist::DegradeRungUs,
        Hist::EcoGraftUs,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ServeRequestUs => "serve_request_us",
            Hist::ServeQueueWaitUs => "serve_queue_wait_us",
            Hist::FlowScheduleUs => "flow_schedule_us",
            Hist::PortfolioRaceUs => "portfolio_race_us",
            Hist::PortfolioRunUs => "portfolio_run_us",
            Hist::ModuloRaceUs => "modulo_race_us",
            Hist::ParallelStitchUs => "parallel_stitch_us",
            Hist::DegradeRungUs => "degrade_rung_us",
            Hist::EcoGraftUs => "eco_graft_us",
        }
    }
}

// ---- storage --------------------------------------------------------

const SHARDS: usize = 8;

/// One cacheline-aligned shard of every counter.
#[repr(align(64))]
struct CounterShard {
    vals: [AtomicU64; Counter::COUNT],
}

impl CounterShard {
    #[allow(clippy::declare_interior_mutable_const)] // array init seed
    const ZERO_CELL: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)] // array init seed
    const EMPTY: CounterShard = CounterShard {
        vals: [Self::ZERO_CELL; Counter::COUNT],
    };
}

static COUNTERS: [CounterShard; SHARDS] = [CounterShard::EMPTY; SHARDS];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_I64: AtomicI64 = AtomicI64::new(0);
static GAUGES: [AtomicI64; Gauge::COUNT] = [ZERO_I64; Gauge::COUNT];

/// 2^40 µs ≈ 12.7 days: bucket `i` holds samples with
/// `floor(log2(us)) == i` (bucket 0 also takes 0 µs).
pub const HIST_BUCKETS: usize = 40;

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl HistCell {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_CELL: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)] // array init seed
    const EMPTY: HistCell = HistCell {
        buckets: [Self::ZERO_CELL; HIST_BUCKETS],
        count: AtomicU64::new(0),
        sum_us: AtomicU64::new(0),
    };
}

static HISTS: [HistCell; Hist::COUNT] = [HistCell::EMPTY; Hist::COUNT];

thread_local! {
    static MY_SHARD: usize = {
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
    };
}

/// Adds `n` to a counter on this thread's shard.
#[inline]
pub fn counter_add(c: Counter, n: u64) {
    let shard = MY_SHARD.with(|s| *s);
    COUNTERS[shard].vals[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current cross-shard total of a counter.
pub fn counter_get(c: Counter) -> u64 {
    COUNTERS
        .iter()
        .map(|s| s.vals[c as usize].load(Ordering::Relaxed))
        .sum()
}

/// Adds `delta` (may be negative) to a gauge.
#[inline]
pub fn gauge_add(g: Gauge, delta: i64) {
    GAUGES[g as usize].fetch_add(delta, Ordering::Relaxed);
}

/// Sets a gauge to an absolute value.
#[inline]
pub fn gauge_set(g: Gauge, value: i64) {
    GAUGES[g as usize].store(value, Ordering::Relaxed);
}

/// Current gauge value.
pub fn gauge_get(g: Gauge) -> i64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Records one sample (microseconds) into a histogram.
#[inline]
pub fn hist_record(h: Hist, us: u64) {
    let cell = &HISTS[h as usize];
    cell.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum_us.fetch_add(us, Ordering::Relaxed);
}

/// A read-only copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-log2-bucket sample counts.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
}

impl HistSnapshot {
    /// Approximate quantile (`q` in `[0, 1]`) as the upper bound of
    /// the bucket holding the `q`-th sample; 0 when empty. Bucket
    /// bounds are powers of two, so the answer is within 2× of the
    /// true value — plenty for a p50/p99 dashboard.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << self.buckets.len().min(63)
    }

    /// Mean sample, microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(&'static str, i64)>,
    /// `(name, histogram)` per histogram.
    pub hists: Vec<(&'static str, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter total by name (0 when unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }
}

/// Captures the registry. Concurrent updates keep landing; each
/// individual cell is read atomically, so totals are monotone
/// between two snapshots even if not mutually perfectly coherent.
pub fn snapshot() -> MetricsSnapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), counter_get(c)))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| (g.name(), gauge_get(g)))
        .collect();
    let hists = Hist::ALL
        .iter()
        .map(|&h| {
            let cell = &HISTS[h as usize];
            let snap = HistSnapshot {
                buckets: cell
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: cell.count.load(Ordering::Relaxed),
                sum_us: cell.sum_us.load(Ordering::Relaxed),
            };
            (h.name(), snap)
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        hists,
    }
}

/// Zeroes every counter, gauge, and histogram (test isolation only;
/// concurrent writers may land increments mid-reset).
pub fn reset() {
    for shard in &COUNTERS {
        for v in &shard.vals {
            v.store(0, Ordering::Relaxed);
        }
    }
    for g in &GAUGES {
        g.store(0, Ordering::Relaxed);
    }
    for cell in &HISTS {
        for b in &cell.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cell.count.store(0, Ordering::Relaxed);
        cell.sum_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
        };
        for us in [3u64, 5, 9, 17, 800] {
            h.buckets[super::bucket_of(us)] += 1;
            h.count += 1;
            h.sum_us += us;
        }
        // p50 lands in the bucket of 9 (bucket 3 → upper bound 16).
        assert_eq!(h.quantile_us(0.5), 16);
        // p99 lands in the bucket of 800 (bucket 9 → upper bound 1024).
        assert_eq!(h.quantile_us(0.99), 1024);
        assert_eq!(h.mean_us(), (3 + 5 + 9 + 17 + 800) / 5);
        assert_eq!(HistSnapshot::default().quantile_us(0.5), 0);
    }

    #[test]
    fn enum_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }
}
