//! The crash flight recorder: when a strategy is poisoned or a
//! served request panics, dump the span ring and metrics registry as
//! one JSON post-mortem.
//!
//! The last dump is always retrievable in-process via
//! [`last_flight`]; set `HLS_FLIGHT_DIR` to additionally write each
//! dump to a file in that directory (best-effort — a full disk must
//! never take down the daemon that is busy surviving a panic).

use crate::metrics::Counter;
use crate::{export, metrics, recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

fn last_slot() -> &'static Mutex<Option<String>> {
    static LAST: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Captures a flight dump: `{"reason": ..., "seq": ...,
/// "metrics": {...}, "trace": {...}}`. Stores it as the in-process
/// last flight, bumps [`Counter::FlightDumps`], and (if
/// `HLS_FLIGHT_DIR` is set) writes `flight-<seq>.json` there.
/// Returns the dump so callers can attach it to an error path.
pub fn dump(reason: &str) -> String {
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let events = recorder::snapshot_events();
    let body = format!(
        "{{\"reason\":\"{}\",\"seq\":{},\"metrics\":{},\"trace\":{}}}",
        export::json_escape(reason),
        seq,
        export::metrics_json(&metrics::snapshot()),
        export::chrome_trace_json(&events),
    );
    metrics::counter_add(Counter::FlightDumps, 1);
    *last_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(body.clone());
    if let Ok(dir) = std::env::var("HLS_FLIGHT_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("flight-{seq}.json"));
            let _ = std::fs::write(path, &body);
        }
    }
    body
}

/// The most recent flight dump, if any.
pub fn last_flight() -> Option<String> {
    last_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Clears the in-process last flight (test isolation).
pub fn clear_last_flight() {
    *last_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_valid_json_and_retrievable() {
        let body = dump("unit-test \"panic\"");
        crate::export::validate_json(&body).expect("flight dump must parse");
        assert!(body.contains("unit-test \\\"panic\\\""));
        assert_eq!(last_flight().as_deref(), Some(body.as_str()));
        clear_last_flight();
        assert!(last_flight().is_none());
    }
}
