//! Exporters: Chrome `trace_event` JSON for span timelines and a
//! flat JSON snapshot of the metrics registry. Includes a tiny
//! strict JSON validator so smoke tests can check well-formedness
//! without an external parser.

use crate::metrics::MetricsSnapshot;
use crate::recorder::{EventKind, EventOut};

/// Escapes a string for a JSON literal (quotes not included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form). Load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>. Spans become
/// complete (`"X"`) events; instants and logs become `"i"` events.
pub fn chrome_trace_json(events: &[EventOut]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (ph, dur) = match ev.kind {
            EventKind::Span => ("X", ev.dur_us),
            EventKind::Instant | EventKind::Log => ("i", 0),
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            json_escape(ev.phase.name()),
            json_escape(ev.phase.category()),
            ph,
            ev.ts_us,
            ev.tid,
        ));
        if ph == "X" {
            out.push_str(&format!(",\"dur\":{dur}"));
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(
            ",\"args\":{{\"label\":\"{}\",\"arg\":{},\"seq\":{}",
            json_escape(&ev.label),
            ev.arg,
            ev.seq,
        ));
        if ev.kind == EventKind::Log {
            let level = crate::log::Level::from_u8((ev.arg & 0xFF) as u8);
            out.push_str(&format!(",\"level\":\"{}\"", level.tag().trim()));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Renders the metrics registry as one flat JSON object:
/// counters and gauges by name, histograms as
/// `{count, sum_us, mean_us, p50_us, p99_us}` objects.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    let mut field = |out: &mut String, key: &str, val: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(key), val));
    };
    for (name, v) in &snap.counters {
        field(&mut out, name, v.to_string());
    }
    for (name, v) in &snap.gauges {
        field(&mut out, name, v.to_string());
    }
    for (name, h) in &snap.hists {
        field(
            &mut out,
            name,
            format!(
                "{{\"count\":{},\"sum_us\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
                h.count,
                h.sum_us,
                h.mean_us(),
                h.quantile_us(0.5),
                h.quantile_us(0.99),
            ),
        );
    }
    out.push('}');
    out
}

/// Strict recursive-descent JSON well-formedness check. Returns the
/// error position on failure. Validates structure only — no value
/// semantics — which is all the smoke tests need.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(*i),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(start);
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(*i);
        }
    }
    if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(*i);
        }
    }
    Ok(())
}

fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(*i);
                            }
                            *i += 1;
                        }
                    }
                    _ => return Err(*i),
                }
            }
            c if c < 0x20 => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // past '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // past '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Phase;

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{}").is_ok());
        assert!(validate_json(r#"{"a":[1,2.5,-3e2,"x\n",true,null]}"#).is_ok());
        assert!(validate_json("{").is_err());
        assert!(validate_json(r#"{"a":}"#).is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("01").is_ok()); // lenient on leading zeros
        assert!(validate_json("\"\u{1}\"").is_err());
        assert!(validate_json("{} x").is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let events = vec![
            EventOut {
                kind: EventKind::Span,
                phase: Phase::PortfolioRace,
                label: "base \"race\"".into(),
                tid: 1,
                ts_us: 10,
                dur_us: 250,
                arg: 7,
                seq: 0,
            },
            EventOut {
                kind: EventKind::Instant,
                phase: Phase::DegradeRung,
                label: String::new(),
                tid: 2,
                ts_us: 40,
                dur_us: 0,
                arg: 0,
                seq: 1,
            },
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).expect("chrome trace must parse");
        assert!(json.contains("\"portfolio:race\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn metrics_json_is_valid() {
        let json = metrics_json(&crate::metrics::snapshot());
        validate_json(&json).expect("metrics snapshot must parse");
        assert!(json.contains("\"select_calls\":"));
        assert!(json.contains("\"p99_us\":"));
    }
}
