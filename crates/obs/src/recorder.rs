//! The flight-recorder span ring: per-thread, fixed-capacity,
//! lock-free on the write path.
//!
//! Every thread that records gets its own ring of [`RING_DEFAULT`]
//! slots (override with `HLS_OBS_RING` before the first event).
//! Writes never take a lock and never allocate in steady state: the
//! owning thread bumps a head counter and seqlock-stamps the slot, so
//! a concurrent snapshot ([`snapshot_events`]) either reads a slot
//! consistently or discards it as torn. When the ring wraps, the
//! *oldest* events are overwritten — the newest window survives,
//! which is exactly what a post-mortem wants.
//!
//! Dynamic labels (strategy names, rung names, log messages) are
//! interned into a bounded global table; the ring slots themselves
//! hold only fixed-width words.

use crate::metrics::{self, Hist};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (slots).
pub const RING_DEFAULT: usize = 4096;

/// Everything a span or instant event can be tagged with. The set is
/// closed so trace consumers can rely on the names; free-form detail
/// goes in the interned label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum Phase {
    /// The soft-scheduling phase of a flow (whole phase 1).
    FlowSchedule = 0,
    /// Spill absorption.
    FlowSpill = 1,
    /// φ resolution.
    FlowPhi = 2,
    /// Placement + wire-delay absorption.
    FlowPlace = 3,
    /// Extraction, validation, FSMD build.
    FlowExtract = 4,
    /// One portfolio race (base or refinement round).
    PortfolioRace = 5,
    /// One strategy's run inside a race.
    PortfolioRun = 6,
    /// One feedback-refinement round.
    RefineRound = 7,
    /// The modulo portfolio (II search).
    ModuloRace = 8,
    /// One candidate (II, meta) modulo run.
    ModuloCandidate = 9,
    /// Multilevel min-cut partitioning.
    ParallelPartition = 10,
    /// Per-block scheduling on the worker pool.
    ParallelBlocks = 11,
    /// The seam stitch.
    ParallelStitch = 12,
    /// Materialisation back into a live engine.
    ParallelMaterialize = 13,
    /// One degradation-ladder rung attempt.
    DegradeRung = 14,
    /// One served request, admission to answer.
    ServeRequest = 15,
    /// An ECO delta graft on a cached base.
    EcoGraft = 16,
    /// Daemon lifecycle (boot, drain, shutdown).
    ServeLifecycle = 17,
}

impl Phase {
    /// Every phase, for exporters.
    pub const ALL: [Phase; 18] = [
        Phase::FlowSchedule,
        Phase::FlowSpill,
        Phase::FlowPhi,
        Phase::FlowPlace,
        Phase::FlowExtract,
        Phase::PortfolioRace,
        Phase::PortfolioRun,
        Phase::RefineRound,
        Phase::ModuloRace,
        Phase::ModuloCandidate,
        Phase::ParallelPartition,
        Phase::ParallelBlocks,
        Phase::ParallelStitch,
        Phase::ParallelMaterialize,
        Phase::DegradeRung,
        Phase::ServeRequest,
        Phase::EcoGraft,
        Phase::ServeLifecycle,
    ];

    /// Stable name, used in the Chrome trace and the smoke checks.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FlowSchedule => "flow:schedule",
            Phase::FlowSpill => "flow:spill",
            Phase::FlowPhi => "flow:phi",
            Phase::FlowPlace => "flow:place",
            Phase::FlowExtract => "flow:extract",
            Phase::PortfolioRace => "portfolio:race",
            Phase::PortfolioRun => "portfolio:run",
            Phase::RefineRound => "portfolio:refine-round",
            Phase::ModuloRace => "modulo:race",
            Phase::ModuloCandidate => "modulo:candidate",
            Phase::ParallelPartition => "parallel:partition",
            Phase::ParallelBlocks => "parallel:blocks",
            Phase::ParallelStitch => "parallel:stitch",
            Phase::ParallelMaterialize => "parallel:materialize",
            Phase::DegradeRung => "degrade:rung",
            Phase::ServeRequest => "serve:request",
            Phase::EcoGraft => "serve:eco-graft",
            Phase::ServeLifecycle => "serve:lifecycle",
        }
    }

    /// Chrome-trace category (the subsystem).
    pub fn category(self) -> &'static str {
        match self {
            Phase::FlowSchedule
            | Phase::FlowSpill
            | Phase::FlowPhi
            | Phase::FlowPlace
            | Phase::FlowExtract => "flow",
            Phase::PortfolioRace | Phase::PortfolioRun | Phase::RefineRound => "portfolio",
            Phase::ModuloRace | Phase::ModuloCandidate => "modulo",
            Phase::ParallelPartition
            | Phase::ParallelBlocks
            | Phase::ParallelStitch
            | Phase::ParallelMaterialize => "parallel",
            Phase::DegradeRung => "degrade",
            Phase::ServeRequest | Phase::EcoGraft | Phase::ServeLifecycle => "serve",
        }
    }

    /// The latency histogram this phase's spans feed, if any.
    /// Histograms record on *every* span end (they are cheap
    /// atomics); the ring event itself is subject to sampling.
    pub fn hist(self) -> Option<Hist> {
        match self {
            Phase::FlowSchedule => Some(Hist::FlowScheduleUs),
            Phase::PortfolioRace => Some(Hist::PortfolioRaceUs),
            Phase::PortfolioRun => Some(Hist::PortfolioRunUs),
            Phase::ModuloRace => Some(Hist::ModuloRaceUs),
            Phase::ParallelStitch => Some(Hist::ParallelStitchUs),
            Phase::DegradeRung => Some(Hist::DegradeRungUs),
            Phase::ServeRequest => Some(Hist::ServeRequestUs),
            Phase::EcoGraft => Some(Hist::EcoGraftUs),
            _ => None,
        }
    }

    fn from_u16(v: u16) -> Option<Phase> {
        Phase::ALL.get(v as usize).copied()
    }
}

/// What one ring slot records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts_us` is the start, `dur_us` the length.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A leveled log event (level in `arg`'s low byte).
    Log,
}

impl EventKind {
    fn as_u8(self) -> u8 {
        match self {
            EventKind::Span => 0,
            EventKind::Instant => 1,
            EventKind::Log => 2,
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        match v {
            0 => Some(EventKind::Span),
            1 => Some(EventKind::Instant),
            2 => Some(EventKind::Log),
            _ => None,
        }
    }
}

/// One decoded event, as returned by [`snapshot_events`].
#[derive(Clone, Debug)]
pub struct EventOut {
    /// Span / instant / log.
    pub kind: EventKind,
    /// The phase tag.
    pub phase: Phase,
    /// Resolved dynamic label (empty when none was attached).
    pub label: String,
    /// Small stable id of the recording thread.
    pub tid: u32,
    /// Microseconds since the recorder epoch (start of span for
    /// spans).
    pub ts_us: u64,
    /// Span length in microseconds (0 for instants and logs).
    pub dur_us: u64,
    /// Free argument (trace id, request id, log level…).
    pub arg: u64,
    /// Ring sequence number on the recording thread — strictly
    /// increasing per `tid`, with no gaps among surviving events of
    /// one snapshot except the wrap cutoff.
    pub seq: u64,
}

const SLOT_WORDS: usize = 5;

/// One seqlock-stamped slot. `seq` is odd while the owner writes,
/// `2·generation + 2` once the payload is consistent.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    #[allow(clippy::declare_interior_mutable_const)] // array init seed
    const EMPTY: Slot = Slot {
        seq: AtomicU64::new(0),
        words: [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ],
    };
}

/// A per-thread ring. The owning thread is the only writer; snapshot
/// readers validate each slot's seqlock stamp.
pub(crate) struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
    tid: u32,
}

impl Ring {
    fn new(capacity: usize, tid: u32) -> Ring {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || Slot::EMPTY);
        Ring {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            tid,
        }
    }

    /// Owner-thread write. Not safe for concurrent *writers* — the
    /// thread-local handoff guarantees there is exactly one.
    fn push(&self, words: [u64; SLOT_WORDS]) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot.seq.store(2 * h + 1, Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Snapshot every consistently-readable slot.
    fn collect(&self, out: &mut Vec<EventOut>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let mut words = [0u64; SLOT_WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // torn: overwritten while reading
            }
            let generation = s1 / 2 - 1;
            if let Some(ev) = decode(words, self.tid, generation) {
                out.push(ev);
            }
        }
    }
}

fn encode(
    kind: EventKind,
    phase: Phase,
    label: u32,
    ts_us: u64,
    dur_us: u64,
    arg: u64,
) -> [u64; SLOT_WORDS] {
    let w0 = u64::from(kind.as_u8()) | (u64::from(phase as u16) << 8);
    [w0, u64::from(label), ts_us, dur_us, arg]
}

fn decode(words: [u64; SLOT_WORDS], tid: u32, seq: u64) -> Option<EventOut> {
    let kind = EventKind::from_u8((words[0] & 0xFF) as u8)?;
    let phase = Phase::from_u16(((words[0] >> 8) & 0xFFFF) as u16)?;
    Some(EventOut {
        kind,
        phase,
        label: resolve_label(words[1] as u32),
        tid,
        ts_us: words[2],
        dur_us: words[3],
        arg: words[4],
        seq,
    })
}

/// Global registry of every thread's ring. Rings outlive their
/// threads so a flight dump still sees a dead worker's last events.
fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("HLS_OBS_RING")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 16)
            .unwrap_or(RING_DEFAULT)
    })
}

thread_local! {
    static MY_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::new(
            ring_capacity(),
            NEXT_TID.fetch_add(1, Ordering::Relaxed),
        ));
        registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

/// Microsecond timestamp on the process-wide recorder epoch.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

// ---- label interner -------------------------------------------------

/// Bounded label table: id 0 is the empty label; past
/// [`INTERN_CAP`] entries every new label degrades to id 0 instead of
/// growing without bound.
const INTERN_CAP: usize = 4096;

fn interner() -> &'static Mutex<Vec<String>> {
    static INTERNER: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(vec![String::new()]))
}

/// Interns `label`, returning its stable id (0 for the empty string
/// or when the table is full and the label is novel).
pub fn intern_label(label: &str) -> u32 {
    if label.is_empty() {
        return 0;
    }
    let mut t = interner()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = t.iter().position(|s| s == label) {
        return i as u32;
    }
    if t.len() >= INTERN_CAP {
        return 0;
    }
    t.push(label.to_string());
    (t.len() - 1) as u32
}

fn resolve_label(id: u32) -> String {
    let t = interner()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    t.get(id as usize).cloned().unwrap_or_default()
}

// ---- sampling -------------------------------------------------------

static SAMPLE_EVERY: AtomicU32 = AtomicU32::new(1);

/// Record only every `n`-th span/instant into the ring (histograms
/// and counters are unaffected). `n == 0` is treated as 1.
pub fn set_sample_every(n: u32) {
    SAMPLE_EVERY.store(n.max(1), Ordering::Relaxed);
}

thread_local! {
    static SAMPLE_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn sampled() -> bool {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every <= 1 {
        return true;
    }
    SAMPLE_TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v % every == 0
    })
}

// ---- write paths ----------------------------------------------------

fn push_event(words: [u64; SLOT_WORDS]) {
    MY_RING.with(|r| r.push(words));
}

/// Records an instant event (subject to sampling).
pub fn instant(phase: Phase, label: &str, arg: u64) {
    if !crate::recording() || !sampled() {
        return;
    }
    let label = intern_label(label);
    push_event(encode(EventKind::Instant, phase, label, now_us(), 0, arg));
}

/// Records a log event into the ring (always, when recording — logs
/// are rare and load-bearing in a post-mortem).
pub(crate) fn log_record(level: u8, message: &str) {
    if !crate::recording() {
        return;
    }
    let label = intern_label(message);
    push_event(encode(
        EventKind::Log,
        Phase::ServeLifecycle,
        label,
        now_us(),
        0,
        u64::from(level),
    ));
}

/// An open span. Created by [`span`] (or the `obs_span!` macro);
/// records on drop. Inert (and nearly free) when recording is
/// disabled or the span was not sampled into the ring — the phase
/// histogram still gets the duration whenever recording is enabled.
pub struct SpanGuard {
    /// `None` when recording was disabled at creation.
    start: Option<(Phase, u32, u64, u64, bool)>,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub const fn inert() -> SpanGuard {
        SpanGuard { start: None }
    }
}

/// Opens a span over `phase` with a dynamic `label` and free `arg`.
pub fn span(phase: Phase, label: &str, arg: u64) -> SpanGuard {
    if !crate::recording() {
        return SpanGuard::inert();
    }
    let ringed = sampled();
    let label = if ringed { intern_label(label) } else { 0 };
    SpanGuard {
        start: Some((phase, label, now_us(), arg, ringed)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((phase, label, t0, arg, ringed)) = self.start.take() else {
            return;
        };
        let dur = now_us().saturating_sub(t0);
        if let Some(h) = phase.hist() {
            metrics::hist_record(h, dur);
        }
        if ringed {
            push_event(encode(EventKind::Span, phase, label, t0, dur, arg));
        }
    }
}

/// Collects every consistently-readable event from every thread's
/// ring, ordered by `(ts_us, tid, seq)`. Concurrent writers keep
/// writing; slots caught mid-write are skipped, not mis-read.
pub fn snapshot_events() -> Vec<EventOut> {
    let rings: Vec<Arc<Ring>> = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut out = Vec::new();
    for ring in rings {
        ring.collect(&mut out);
    }
    out.sort_by_key(|e| (e.ts_us, e.tid, e.seq));
    out
}

/// Drops every recorded event (test isolation; rings stay allocated,
/// their heads keep counting so wrap accounting stays truthful).
pub fn clear_events() {
    let rings: Vec<Arc<Ring>> = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    for ring in rings {
        for slot in ring.slots.iter() {
            // Stamp as "never written": readers skip seq == 0.
            slot.seq.store(0, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tables_are_consistent() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{p:?} discriminant mismatch");
            assert_eq!(Phase::from_u16(i as u16), Some(*p));
            assert!(!p.name().is_empty() && !p.category().is_empty());
        }
        assert_eq!(Phase::from_u16(Phase::ALL.len() as u16), None);
    }

    #[test]
    fn interner_is_stable_and_bounded() {
        let a = intern_label("alpha-label");
        assert_eq!(intern_label("alpha-label"), a);
        assert_eq!(resolve_label(a), "alpha-label");
        assert_eq!(intern_label(""), 0);
        assert_eq!(resolve_label(0), "");
    }
}
