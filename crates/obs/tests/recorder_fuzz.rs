//! Multi-threaded recorder torture tests: concurrent writers with a
//! racing snapshot reader must yield only well-formed events, and a
//! wrapped ring must keep the newest window.
//!
//! These tests share process-global recorder state, so they all
//! funnel through one lock and restore the master switch on exit.

use hls_obs::recorder::{self, EventKind, Phase};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

struct Recording<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl Recording<'_> {
    fn start() -> Recording<'static> {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        recorder::clear_events();
        hls_obs::set_enabled(true);
        Recording { _guard: guard }
    }
}

impl Drop for Recording<'_> {
    fn drop(&mut self) {
        hls_obs::set_enabled(false);
        recorder::clear_events();
    }
}

/// Eight writer threads race while a snapshot reader polls: every
/// event that comes out must decode cleanly, belong to a writer, and
/// per-thread sequence numbers must be strictly increasing — i.e.
/// concurrent writers never interleave *within* one event.
#[test]
fn eight_writers_yield_well_formed_spans() {
    let _rec = Recording::start();
    const WRITERS: usize = 8;
    const SPANS_PER_WRITER: usize = 200;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..SPANS_PER_WRITER {
                    let label = format!("writer-{w}");
                    let _span =
                        recorder::span(Phase::PortfolioRun, &label, (w * 10_000 + i) as u64);
                    std::hint::spin_loop();
                }
            });
        }
        // Racing reader: snapshots taken mid-write must not observe
        // torn slots — every event decodes or is skipped.
        scope.spawn(|| {
            for _ in 0..50 {
                for ev in recorder::snapshot_events() {
                    assert_eq!(ev.kind, EventKind::Span);
                    assert_eq!(ev.phase, Phase::PortfolioRun);
                    assert!(
                        ev.label.is_empty() || ev.label.starts_with("writer-"),
                        "interleaved label: {:?}",
                        ev.label
                    );
                }
                std::thread::yield_now();
            }
        });
    });

    let events = recorder::snapshot_events();
    assert!(
        events.len() >= WRITERS * SPANS_PER_WRITER.min(100),
        "expected a healthy number of surviving events, got {}",
        events.len()
    );
    // Group by tid: a writer's surviving events keep strictly
    // increasing seq, and label/arg stay consistent per writer.
    let mut by_tid: std::collections::HashMap<u32, Vec<&recorder::EventOut>> =
        std::collections::HashMap::new();
    for ev in &events {
        by_tid.entry(ev.tid).or_default().push(ev);
    }
    for (tid, mut evs) in by_tid {
        evs.sort_by_key(|e| e.seq);
        let mut writer: Option<u64> = None;
        for pair in evs.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "tid {tid}: duplicate or reordered seq"
            );
        }
        for ev in evs {
            if ev.label.is_empty() {
                continue; // label interner can degrade to id 0 when full
            }
            let w = ev.arg / 10_000;
            assert_eq!(ev.label, format!("writer-{w}"), "label/arg cross-talk");
            match writer {
                None => writer = Some(w),
                Some(prev) => assert_eq!(prev, w, "tid {tid} carries two writers' events"),
            }
        }
    }
}

/// Overfill one thread's ring: the newest events must survive the
/// wrap, the oldest must be gone.
#[test]
fn ring_wrap_keeps_newest_events() {
    let _rec = Recording::start();
    let overfill = recorder::RING_DEFAULT + 512;
    for i in 0..overfill {
        recorder::instant(Phase::ModuloCandidate, "wrap", i as u64);
    }
    let mut mine: Vec<u64> = recorder::snapshot_events()
        .into_iter()
        .filter(|e| e.phase == Phase::ModuloCandidate)
        .map(|e| e.arg)
        .collect();
    mine.sort_unstable();
    assert!(!mine.is_empty());
    assert!(
        mine.len() <= recorder::RING_DEFAULT,
        "ring held more than its capacity"
    );
    // The newest event always survives; the oldest `overfill - cap`
    // must have been overwritten.
    assert_eq!(*mine.last().unwrap(), overfill as u64 - 1);
    assert!(
        *mine.first().unwrap() >= (overfill - recorder::RING_DEFAULT) as u64,
        "an event older than the ring window survived: {}",
        mine.first().unwrap()
    );
    // The surviving window is gap-free: wrap evicts strictly oldest-first.
    for pair in mine.windows(2) {
        assert_eq!(pair[0] + 1, pair[1], "gap inside the surviving window");
    }
}

/// Sampling thins ring traffic without corrupting anything.
#[test]
fn sampling_records_every_nth() {
    let _rec = Recording::start();
    recorder::set_sample_every(10);
    for i in 0..100u64 {
        recorder::instant(Phase::RefineRound, "sampled", i);
    }
    recorder::set_sample_every(1);
    let n = recorder::snapshot_events()
        .into_iter()
        .filter(|e| e.phase == Phase::RefineRound)
        .count();
    assert_eq!(n, 10, "1-in-10 sampling must keep exactly 10 of 100");
}

/// Disabled recording leaves the ring untouched.
#[test]
fn disabled_recorder_records_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    recorder::clear_events();
    hls_obs::set_enabled(false);
    for _ in 0..64 {
        let _span = recorder::span(Phase::FlowSpill, "ghost", 0);
        recorder::instant(Phase::FlowSpill, "ghost", 0);
    }
    assert!(recorder::snapshot_events().is_empty());
}
