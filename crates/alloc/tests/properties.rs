//! Property-based tests for register allocation over randomized
//! schedules.

use hls_alloc::{interference::InterferenceGraph, left_edge, lifetimes, spill};
use hls_baselines::{list_schedule, Priority};
use hls_ir::{generate, ResourceSet};
use proptest::prelude::*;

fn scheduled(
    seed: u64,
    ops: usize,
    alus: usize,
    muls: usize,
) -> (hls_ir::PrecedenceGraph, hls_ir::HardSchedule) {
    let g = generate::layered_dag(
        seed,
        &generate::LayeredConfig {
            ops,
            width: (ops / 4).max(2),
            ..generate::LayeredConfig::default()
        },
    );
    let out = list_schedule(&g, &ResourceSet::classic(alus, muls), Priority::CriticalPath)
        .unwrap();
    (g, out.schedule)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Left-edge is optimal: register count equals MAXLIVE, and no two
    /// overlapping lifetimes share a register.
    #[test]
    fn left_edge_is_optimal_and_conflict_free(
        seed in 0u64..1000,
        ops in 6usize..48,
        alus in 1usize..4,
        muls in 1usize..3,
    ) {
        let (g, sched) = scheduled(seed, ops, alus, muls);
        let ls = lifetimes::lifetimes(&g, &sched).unwrap();
        let alloc = left_edge::allocate(&ls);
        prop_assert_eq!(alloc.register_count(), lifetimes::max_live(&ls));
        for a in &ls {
            for b in &ls {
                if a.producer != b.producer && a.overlaps(*b) {
                    prop_assert_ne!(
                        alloc.register_of(a.producer),
                        alloc.register_of(b.producer)
                    );
                }
            }
        }
    }

    /// Greedy coloring never beats left-edge (interval optimality), and
    /// in birth order it matches exactly.
    #[test]
    fn coloring_bounds_hold(
        seed in 0u64..500,
        ops in 6usize..40,
    ) {
        let (g, sched) = scheduled(seed, ops, 2, 2);
        let ls = lifetimes::lifetimes(&g, &sched).unwrap();
        let le = left_edge::allocate(&ls).register_count();
        let ig = InterferenceGraph::build(&ls);
        let (_, birth_order) = ig.color(&ls);
        prop_assert_eq!(birth_order, le);
        // Arbitrary order: still a proper coloring, possibly wider.
        let order: Vec<usize> = (0..ig.len()).rev().collect();
        let (colors, n) = ig.color_in_order(&order);
        prop_assert!(n >= le || ig.is_empty());
        let live: Vec<_> = ls.iter().filter(|l| !l.is_empty()).collect();
        for (i, a) in live.iter().enumerate() {
            for b in live.iter().skip(i + 1) {
                if a.overlaps(**b) {
                    let ca = colors.iter().find(|(p, _)| *p == a.producer).unwrap().1;
                    let cb = colors.iter().find(|(p, _)| *p == b.producer).unwrap().1;
                    prop_assert_ne!(ca, cb);
                }
            }
        }
    }

    /// The chosen spill victim is always live at a step of maximal
    /// pressure and is a longest such lifetime.
    #[test]
    fn spill_victim_is_at_peak_pressure(
        seed in 0u64..500,
        ops in 8usize..40,
    ) {
        let (g, sched) = scheduled(seed, ops, 2, 2);
        let ls = lifetimes::lifetimes(&g, &sched).unwrap();
        prop_assume!(!ls.is_empty());
        let d = spill::pick_spill(&g, &ls).unwrap();
        let victim = ls.iter().find(|l| l.producer == d.producer).unwrap();
        // The consumer must actually consume the victim's value.
        prop_assert!(g.succs(d.producer).contains(&d.consumer));
        // The victim must be live at a step of globally maximal register
        // pressure (that is what makes spilling it useful).
        let pressure_at = |t: u64| ls.iter().filter(|l| l.birth <= t && t < l.death).count();
        let peak = ls
            .iter()
            .flat_map(|l| [l.birth, l.death.saturating_sub(1)])
            .map(pressure_at)
            .max()
            .unwrap_or(0);
        let victim_peak = (victim.birth..victim.death)
            .map(pressure_at)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(victim_peak, peak, "victim must span a peak step");
    }
}
