//! The left-edge register allocator.
//!
//! Optimal for interval graphs (which schedule lifetimes are): sweep the
//! lifetimes by birth step and put each value in the first register whose
//! previous occupant has died. The number of registers used equals
//! MAXLIVE.

use crate::lifetimes::Lifetime;
use hls_ir::OpId;

/// A register assignment for a set of lifetimes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegAllocation {
    /// `(producer, register)` pairs, one per allocated lifetime.
    assignment: Vec<(OpId, usize)>,
    /// Number of registers used.
    count: usize,
}

impl RegAllocation {
    /// Number of registers used.
    pub fn register_count(&self) -> usize {
        self.count
    }

    /// The register holding the value of `producer`, if it was allocated.
    pub fn register_of(&self, producer: OpId) -> Option<usize> {
        self.assignment
            .iter()
            .find(|(p, _)| *p == producer)
            .map(|&(_, r)| r)
    }

    /// All `(producer, register)` pairs.
    pub fn assignments(&self) -> &[(OpId, usize)] {
        &self.assignment
    }
}

/// Allocates registers by the left-edge algorithm. `lifetimes` may be in
/// any order; empty lifetimes are skipped.
pub fn allocate(lifetimes: &[Lifetime]) -> RegAllocation {
    let mut sorted: Vec<Lifetime> = lifetimes.iter().copied().filter(|l| !l.is_empty()).collect();
    sorted.sort_by_key(|l| (l.birth, l.death, l.producer));
    // free_at[r] = step at which register r becomes free.
    let mut free_at: Vec<u64> = Vec::new();
    let mut assignment = Vec::with_capacity(sorted.len());
    for l in sorted {
        match free_at.iter().position(|&f| f <= l.birth) {
            Some(r) => {
                free_at[r] = l.death;
                assignment.push((l.producer, r));
            }
            None => {
                free_at.push(l.death);
                assignment.push((l.producer, free_at.len() - 1));
            }
        }
    }
    RegAllocation {
        count: free_at.len(),
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetimes::{self, max_live};
    use hls_ir::{bench_graphs, ResourceSet};

    fn lt(i: usize, birth: u64, death: u64) -> Lifetime {
        Lifetime {
            producer: OpId::from_index(i),
            birth,
            death,
        }
    }

    #[test]
    fn disjoint_lifetimes_share_one_register() {
        let alloc = allocate(&[lt(0, 0, 2), lt(1, 2, 4), lt(2, 4, 6)]);
        assert_eq!(alloc.register_count(), 1);
        assert_eq!(alloc.register_of(OpId::from_index(0)), Some(0));
        assert_eq!(alloc.register_of(OpId::from_index(2)), Some(0));
    }

    #[test]
    fn overlapping_lifetimes_get_distinct_registers() {
        let alloc = allocate(&[lt(0, 0, 5), lt(1, 1, 3), lt(2, 2, 4)]);
        assert_eq!(alloc.register_count(), 3);
        let r0 = alloc.register_of(OpId::from_index(0)).unwrap();
        let r1 = alloc.register_of(OpId::from_index(1)).unwrap();
        let r2 = alloc.register_of(OpId::from_index(2)).unwrap();
        assert!(r0 != r1 && r1 != r2 && r0 != r2);
    }

    #[test]
    fn empty_lifetimes_are_skipped() {
        let alloc = allocate(&[lt(0, 3, 3)]);
        assert_eq!(alloc.register_count(), 0);
        assert_eq!(alloc.register_of(OpId::from_index(0)), None);
    }

    #[test]
    fn left_edge_is_optimal_on_benchmarks() {
        // Left-edge register count must equal MAXLIVE on every benchmark
        // under every paper allocation.
        for (_, g) in bench_graphs::all() {
            for (alus, muls) in [(2, 2), (4, 4), (2, 1)] {
                let out = hls_baselines::list_schedule(
                    &g,
                    &ResourceSet::classic(alus, muls),
                    hls_baselines::Priority::CriticalPath,
                )
                .unwrap();
                let ls = lifetimes::lifetimes(&g, &out.schedule).unwrap();
                let alloc = allocate(&ls);
                assert_eq!(alloc.register_count(), max_live(&ls));
            }
        }
    }

    #[test]
    fn no_two_overlapping_values_share_a_register() {
        let g = bench_graphs::ewf();
        let out = hls_baselines::list_schedule(
            &g,
            &ResourceSet::classic(2, 1),
            hls_baselines::Priority::CriticalPath,
        )
        .unwrap();
        let ls = lifetimes::lifetimes(&g, &out.schedule).unwrap();
        let alloc = allocate(&ls);
        for a in &ls {
            for b in &ls {
                if a.producer != b.producer && a.overlaps(*b) {
                    assert_ne!(
                        alloc.register_of(a.producer),
                        alloc.register_of(b.producer),
                        "{} and {} overlap",
                        a.producer,
                        b.producer
                    );
                }
            }
        }
    }
}
