//! Interference graph and greedy coloring — the general-purpose register
//! allocator, kept alongside [`crate::left_edge`] for ablation.
//!
//! On interval graphs (straight-line schedules) left-edge is optimal;
//! greedy coloring in birth order matches it, while arbitrary orders may
//! not. The tests pin both facts.

use crate::lifetimes::Lifetime;
use hls_ir::OpId;

/// An interference graph over value lifetimes.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    producers: Vec<OpId>,
    /// Adjacency by local index.
    adj: Vec<Vec<usize>>,
}

impl InterferenceGraph {
    /// Builds the interference graph of the (non-empty) lifetimes.
    pub fn build(lifetimes: &[Lifetime]) -> Self {
        let live: Vec<Lifetime> = lifetimes.iter().copied().filter(|l| !l.is_empty()).collect();
        let n = live.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if live[i].overlaps(live[j]) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        InterferenceGraph {
            producers: live.iter().map(|l| l.producer).collect(),
            adj,
        }
    }

    /// Number of interfering value pairs.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.producers.len()
    }

    /// `true` if there are no values.
    pub fn is_empty(&self) -> bool {
        self.producers.is_empty()
    }

    /// Greedily colors the values in the given order (indices into this
    /// graph); returns `(producer, color)` pairs and the color count.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn color_in_order(&self, order: &[usize]) -> (Vec<(OpId, usize)>, usize) {
        assert_eq!(order.len(), self.len());
        let mut color: Vec<Option<usize>> = vec![None; self.len()];
        let mut max_color = 0;
        for &i in order {
            let mut used: Vec<bool> = vec![false; self.len() + 1];
            for &j in &self.adj[i] {
                if let Some(c) = color[j] {
                    used[c] = true;
                }
            }
            let c = (0..).find(|&c| !used[c]).expect("some color is free");
            color[i] = Some(c);
            max_color = max_color.max(c + 1);
        }
        let out = self
            .producers
            .iter()
            .zip(color)
            .map(|(&p, c)| (p, c.expect("all colored")))
            .collect();
        (out, max_color)
    }

    /// Greedy coloring in lifetime-birth order — equivalent to left-edge
    /// on interval graphs.
    pub fn color(&self, lifetimes: &[Lifetime]) -> (Vec<(OpId, usize)>, usize) {
        let live: Vec<Lifetime> = lifetimes.iter().copied().filter(|l| !l.is_empty()).collect();
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| (live[i].birth, live[i].death));
        self.color_in_order(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::left_edge;
    use crate::lifetimes::{self, max_live};
    use hls_ir::{bench_graphs, ResourceSet};

    fn lt(i: usize, birth: u64, death: u64) -> Lifetime {
        Lifetime {
            producer: OpId::from_index(i),
            birth,
            death,
        }
    }

    #[test]
    fn interference_edges_match_overlaps() {
        let ls = [lt(0, 0, 5), lt(1, 1, 3), lt(2, 5, 7)];
        let ig = InterferenceGraph::build(&ls);
        assert_eq!(ig.len(), 3);
        assert_eq!(ig.edge_count(), 1, "only 0 and 1 overlap");
    }

    #[test]
    fn coloring_respects_interference() {
        let ls = [lt(0, 0, 5), lt(1, 1, 3), lt(2, 2, 4), lt(3, 5, 6)];
        let ig = InterferenceGraph::build(&ls);
        let (colors, n) = ig.color(&ls);
        assert_eq!(n, 3);
        let get = |i: usize| {
            colors
                .iter()
                .find(|(p, _)| *p == OpId::from_index(i))
                .map(|&(_, c)| c)
                .unwrap()
        };
        assert_ne!(get(0), get(1));
        assert_ne!(get(0), get(2));
        assert_ne!(get(1), get(2));
    }

    #[test]
    fn birth_order_coloring_matches_left_edge_on_benchmarks() {
        for (_, g) in bench_graphs::all() {
            let out = hls_baselines::list_schedule(
                &g,
                &ResourceSet::classic(2, 2),
                hls_baselines::Priority::CriticalPath,
            )
            .unwrap();
            let ls = lifetimes::lifetimes(&g, &out.schedule).unwrap();
            let ig = InterferenceGraph::build(&ls);
            let (_, colors) = ig.color(&ls);
            let le = left_edge::allocate(&ls);
            assert_eq!(colors, le.register_count());
            assert_eq!(colors, max_live(&ls));
        }
    }

    #[test]
    fn empty_graph_colors_trivially() {
        let ig = InterferenceGraph::build(&[]);
        assert!(ig.is_empty());
        let (colors, n) = ig.color(&[]);
        assert!(colors.is_empty());
        assert_eq!(n, 0);
    }
}
