//! Spill-candidate selection.
//!
//! When MAXLIVE exceeds the register budget, some value must move to
//! background memory. Following classic practice the candidate is the
//! value with the **longest lifetime** crossing a maximally congested
//! step; spilling it replaces one long interval by two short ones (birth
//! to `st`, `ld` to consumer) — exactly the `st`/`ld` insertion of the
//! paper's Figure 1(c). The insertion into a live soft schedule is done
//! by `threaded_sched::refine::insert_spill`, driven from `hls-flow`.

use crate::lifetimes::Lifetime;
use hls_ir::{OpId, PrecedenceGraph};

/// A concrete spill decision: the value produced by `producer`, carried
/// on the edge to `consumer`, should go through memory.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SpillDecision {
    /// The producing operation whose value is spilled.
    pub producer: OpId,
    /// The (latest) consumer that will reload the value.
    pub consumer: OpId,
}

/// Picks the spill candidate for one allocation round: the longest
/// lifetime alive at a step of maximal pressure, together with its
/// latest consumer. Returns `None` when `lifetimes` is empty.
pub fn pick_spill(
    g: &PrecedenceGraph,
    lifetimes: &[Lifetime],
) -> Option<SpillDecision> {
    let live: Vec<Lifetime> = lifetimes.iter().copied().filter(|l| !l.is_empty()).collect();
    if live.is_empty() {
        return None;
    }
    // Find a step of maximum pressure.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for l in &live {
        events.push((l.birth, 1));
        events.push((l.death, -1));
    }
    events.sort();
    let mut pressure = 0i64;
    let mut best_step = 0u64;
    let mut best_pressure = -1i64;
    for (t, d) in events {
        pressure += d;
        if pressure > best_pressure {
            best_pressure = pressure;
            best_step = t;
        }
    }
    // Longest lifetime crossing that step. Values produced by reloads
    // are never re-spilled (that would only add memory traffic).
    let victim = live
        .iter()
        .filter(|l| l.birth <= best_step && best_step < l.death)
        .filter(|l| g.kind(l.producer) != hls_ir::OpKind::Load)
        .max_by_key(|l| (l.len(), l.producer))?;
    // Reload before its latest consumer (the one defining `death`).
    let consumer = g
        .succs(victim.producer)
        .iter()
        .copied()
        .max_by_key(|&q| (victim.producer, q))?;
    Some(SpillDecision {
        producer: victim.producer,
        consumer,
    })
}

/// Iteratively proposes spills until MAXLIVE fits `budget`, re-deriving
/// lifetimes through `recompute` after each decision (the caller applies
/// the decision to its schedule/graph and returns the new lifetimes).
/// Returns all decisions taken, in order.
///
/// `recompute` receives the decision to apply; returning `None` stops
/// the loop (e.g. the caller could not apply the spill).
pub fn spill_until_fits(
    budget: usize,
    mut lifetimes: Vec<Lifetime>,
    g: &PrecedenceGraph,
    mut recompute: impl FnMut(SpillDecision) -> Option<(Vec<Lifetime>, PrecedenceGraph)>,
) -> Vec<SpillDecision> {
    let mut decisions = Vec::new();
    let mut graph = g.clone();
    let mut guard = 0;
    while crate::lifetimes::max_live(&lifetimes) > budget {
        guard += 1;
        if guard > graph.len() * 4 {
            break; // Defensive: no progress.
        }
        let Some(d) = pick_spill(&graph, &lifetimes) else { break };
        match recompute(d) {
            Some((ls, ng)) => {
                lifetimes = ls;
                graph = ng;
                decisions.push(d);
            }
            None => break,
        }
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetimes::lifetimes;
    use hls_ir::{HardSchedule, OpKind};

    /// One producer feeding a far consumer (long lifetime) and a pair of
    /// short-lived values.
    fn pressure_case() -> (PrecedenceGraph, HardSchedule) {
        let mut g = PrecedenceGraph::new();
        let long = g.add_op(OpKind::Add, 1, "long");
        let far = g.add_op(OpKind::Add, 1, "far");
        g.add_edge(long, far).unwrap();
        let s1 = g.add_op(OpKind::Add, 1, "s1");
        let u1 = g.add_op(OpKind::Add, 1, "u1");
        g.add_edge(s1, u1).unwrap();
        let mut sched = HardSchedule::new(g.len());
        sched.assign(long, 0, Some(0));
        sched.assign(far, 9, Some(0));
        sched.assign(s1, 1, Some(1));
        sched.assign(u1, 4, Some(1));
        (g, sched)
    }

    #[test]
    fn picks_the_longest_lifetime_at_peak_pressure() {
        let (g, sched) = pressure_case();
        let ls = lifetimes(&g, &sched).unwrap();
        let d = pick_spill(&g, &ls).unwrap();
        assert_eq!(g.label(d.producer), "long");
        assert_eq!(g.label(d.consumer), "far");
    }

    #[test]
    fn no_spill_needed_for_empty_lifetimes() {
        let g = PrecedenceGraph::new();
        assert_eq!(pick_spill(&g, &[]), None);
    }

    #[test]
    fn spill_until_fits_stops_at_budget() {
        let (g, sched) = pressure_case();
        let ls = lifetimes(&g, &sched).unwrap();
        assert_eq!(crate::lifetimes::max_live(&ls), 2);
        // Budget 1: one spill suffices if the callback splits the long
        // lifetime into two short ones.
        let decisions = spill_until_fits(1, ls, &g, |d| {
            let mut g2 = g.clone();
            let inserted = g2
                .splice_on_edge(
                    d.producer,
                    d.consumer,
                    [
                        (OpKind::Store, 1, "st".to_string()),
                        (OpKind::Load, 1, "ld".to_string()),
                    ],
                )
                .unwrap();
            let mut s2 = sched.clone();
            s2.grow(g2.len());
            s2.assign(inserted[0], 1, None);
            s2.assign(inserted[1], 8, None);
            Some((lifetimes(&g2, &s2).unwrap(), g2))
        });
        assert_eq!(decisions.len(), 1);
    }

    #[test]
    fn spill_until_fits_respects_caller_abort() {
        let (g, sched) = pressure_case();
        let ls = lifetimes(&g, &sched).unwrap();
        let decisions = spill_until_fits(0, ls, &g, |_| None);
        assert!(decisions.is_empty());
    }
}
