//! Value lifetimes under a hard schedule.
//!
//! The value computed by an operation is born when the operation
//! finishes and must be held in a register until the start of its last
//! consumer. Operations whose consumers all start in the birth step
//! (chaining) and operations without consumers (primary outputs are
//! handled by the caller) produce empty lifetimes.

use hls_ir::{HardSchedule, OpId, PrecedenceGraph};
use std::error::Error;
use std::fmt;

/// The register lifetime of one produced value, as the half-open step
/// interval `[birth, death)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Lifetime {
    /// The producing operation.
    pub producer: OpId,
    /// First step the value occupies a register (producer finish).
    pub birth: u64,
    /// First step the value is no longer needed (last consumer start).
    pub death: u64,
}

impl Lifetime {
    /// Interval length in steps.
    pub fn len(self) -> u64 {
        self.death - self.birth
    }

    /// `true` if the value never occupies a register.
    pub fn is_empty(self) -> bool {
        self.death == self.birth
    }

    /// `true` if two lifetimes overlap (and thus need distinct
    /// registers).
    pub fn overlaps(self, other: Lifetime) -> bool {
        self.birth < other.death && other.birth < self.death
    }
}

/// Error for lifetime extraction over incomplete schedules.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LifetimeError(pub OpId);

impl fmt::Display for LifetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation {} has no start time", self.0)
    }
}

impl Error for LifetimeError {}

/// Extracts the (non-empty) value lifetimes of `g` under `sched`, sorted
/// by birth step.
///
/// # Errors
///
/// Returns [`LifetimeError`] if any operation with consumers is
/// unscheduled.
pub fn lifetimes(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
) -> Result<Vec<Lifetime>, LifetimeError> {
    let mut out = Vec::new();
    for p in g.op_ids() {
        if g.succs(p).is_empty() {
            continue;
        }
        // A stored value lives in background memory until its reload; it
        // occupies no register (that is what spilling buys).
        if g.kind(p) == hls_ir::OpKind::Store {
            continue;
        }
        let birth = sched.finish(g, p).ok_or(LifetimeError(p))?;
        let mut death = birth;
        for &q in g.succs(p) {
            death = death.max(sched.start(q).ok_or(LifetimeError(q))?);
        }
        if death > birth {
            out.push(Lifetime {
                producer: p,
                birth,
                death,
            });
        }
    }
    out.sort_by_key(|l| (l.birth, l.death, l.producer));
    Ok(out)
}

/// The maximum number of simultaneously live values (MAXLIVE) — a lower
/// bound on the registers any allocator needs.
pub fn max_live(lifetimes: &[Lifetime]) -> usize {
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(lifetimes.len() * 2);
    for l in lifetimes {
        events.push((l.birth, 1));
        events.push((l.death, -1));
    }
    events.sort();
    let mut live = 0i64;
    let mut best = 0i64;
    for (_, d) in events {
        live += d;
        best = best.max(live);
    }
    best as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{OpKind, ResourceSet};

    fn scheduled_hal() -> (PrecedenceGraph, HardSchedule) {
        let g = hls_ir::bench_graphs::hal();
        let out = hls_baselines::list_schedule(
            &g,
            &ResourceSet::classic(2, 2),
            hls_baselines::Priority::CriticalPath,
        )
        .unwrap();
        (g, out.schedule)
    }

    #[test]
    fn lifetimes_start_at_finish_and_end_at_last_use() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        let c = g.add_op(OpKind::Add, 1, "c");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        let mut s = HardSchedule::new(3);
        s.assign(a, 0, Some(0));
        s.assign(b, 2, Some(1));
        s.assign(c, 5, Some(1));
        let ls = lifetimes(&g, &s).unwrap();
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0], Lifetime { producer: a, birth: 2, death: 5 });
        assert_eq!(ls[0].len(), 3);
    }

    #[test]
    fn chained_consumers_need_no_register() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        let mut s = HardSchedule::new(2);
        s.assign(a, 0, Some(0));
        s.assign(b, 1, Some(0));
        let ls = lifetimes(&g, &s).unwrap();
        assert!(ls.is_empty(), "back-to-back value is forwarded");
    }

    #[test]
    fn incomplete_schedule_is_an_error() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        let s = HardSchedule::new(2);
        assert_eq!(lifetimes(&g, &s), Err(LifetimeError(a)));
    }

    #[test]
    fn overlap_predicate_matches_interval_semantics() {
        let a = Lifetime { producer: OpId::from_index(0), birth: 0, death: 3 };
        let b = Lifetime { producer: OpId::from_index(1), birth: 2, death: 5 };
        let c = Lifetime { producer: OpId::from_index(2), birth: 3, death: 4 };
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c), "half-open: death == birth does not clash");
        assert!(b.overlaps(c));
    }

    #[test]
    fn hal_lifetimes_and_maxlive_are_plausible() {
        let (g, s) = scheduled_hal();
        let ls = lifetimes(&g, &s).unwrap();
        assert!(!ls.is_empty());
        let ml = max_live(&ls);
        // HAL under 2 ALU / 2 MUL holds a handful of values, never more
        // than the number of producing ops.
        assert!(ml >= 1 && ml <= g.len());
        for l in &ls {
            assert!(l.death > l.birth);
        }
    }

    #[test]
    fn max_live_of_disjoint_intervals_is_one() {
        let ls = vec![
            Lifetime { producer: OpId::from_index(0), birth: 0, death: 1 },
            Lifetime { producer: OpId::from_index(1), birth: 1, death: 2 },
            Lifetime { producer: OpId::from_index(2), birth: 2, death: 9 },
        ];
        assert_eq!(max_live(&ls), 1);
        assert_eq!(max_live(&[]), 0);
    }
}
