//! Register allocation and binding substrate.
//!
//! The paper's first phase-coupling scenario (Section 1) is register
//! allocation: values that do not fit in the register file must be
//! spilled to background memory, which inserts `st`/`ld` operations into
//! an already-scheduled behavior. This crate provides the allocation
//! machinery that *produces* those decisions:
//!
//! * [`lifetimes`] — value lifetime extraction from a hard schedule;
//! * [`left_edge`] — the classic optimal interval-graph register
//!   allocator;
//! * [`interference`] — interference graph plus greedy coloring (an
//!   alternative allocator, used for ablation);
//! * [`spill`] — spill-candidate selection when the register budget is
//!   exceeded;
//! * [`interconnect`] — connection/multiplexer estimation for a bound
//!   design (the paper's "interconnect binding" subtask).
//!
//! The driver that feeds spill decisions back into a *soft* schedule
//! lives in `hls-flow` (it needs the threaded scheduler).

pub mod interconnect;
pub mod interference;
pub mod left_edge;
pub mod lifetimes;
pub mod spill;

pub use interconnect::InterconnectStats;
pub use left_edge::RegAllocation;
pub use lifetimes::{Lifetime, LifetimeError};
