//! Interconnect (connection/multiplexer) estimation — the paper's
//! "interconnect binding" subtask.
//!
//! Given a bound design — every operation on a functional unit, every
//! carried value in a register — the datapath needs a wire for each
//! distinct `register → unit-input` and `unit-output → register`
//! connection, and a multiplexer in front of every port fed by more than
//! one source.

use crate::left_edge::RegAllocation;
use hls_ir::{HardSchedule, PrecedenceGraph};

/// Summary statistics of the estimated interconnect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InterconnectStats {
    /// Distinct register→unit connections.
    pub reg_to_unit: usize,
    /// Distinct unit→register connections.
    pub unit_to_reg: usize,
    /// Largest multiplexer fan-in over all unit input ports.
    pub max_mux_inputs: usize,
    /// Registers used.
    pub registers: usize,
}

impl InterconnectStats {
    /// Total distinct point-to-point connections.
    pub fn connections(&self) -> usize {
        self.reg_to_unit + self.unit_to_reg
    }
}

/// Estimates the interconnect of a bound schedule.
///
/// Edges whose producer value was not allocated a register (chained
/// values) connect unit to unit directly and are counted on the
/// consumer's mux; edges from/to unbound (wire) operations are skipped.
pub fn estimate(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    regs: &RegAllocation,
) -> InterconnectStats {
    let mut reg_to_unit: Vec<(usize, usize)> = Vec::new();
    let mut unit_to_reg: Vec<(usize, usize)> = Vec::new();
    // Per consumer unit: the set of distinct sources feeding its input.
    let mut mux_sources: Vec<(usize, Vec<Source>)> = Vec::new();

    #[derive(Copy, Clone, PartialEq, Eq, Debug)]
    enum Source {
        Reg(usize),
        Unit(usize),
    }

    for (p, q) in g.edges() {
        let (Some(pu), Some(qu)) = (sched.unit(p), sched.unit(q)) else {
            continue;
        };
        let src = match regs.register_of(p) {
            Some(r) => {
                if !unit_to_reg.contains(&(pu, r)) {
                    unit_to_reg.push((pu, r));
                }
                if !reg_to_unit.contains(&(r, qu)) {
                    reg_to_unit.push((r, qu));
                }
                Source::Reg(r)
            }
            None => Source::Unit(pu),
        };
        match mux_sources.iter_mut().find(|(u, _)| *u == qu) {
            Some((_, srcs)) => {
                if !srcs.contains(&src) {
                    srcs.push(src);
                }
            }
            None => mux_sources.push((qu, vec![src])),
        }
    }

    InterconnectStats {
        reg_to_unit: reg_to_unit.len(),
        unit_to_reg: unit_to_reg.len(),
        max_mux_inputs: mux_sources.iter().map(|(_, s)| s.len()).max().unwrap_or(0),
        registers: regs.register_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{left_edge, lifetimes};
    use hls_ir::{bench_graphs, ResourceSet};

    fn bound_design(
        alus: usize,
        muls: usize,
    ) -> (PrecedenceGraph, HardSchedule, RegAllocation) {
        let g = bench_graphs::hal();
        let out = hls_baselines::list_schedule(
            &g,
            &ResourceSet::classic(alus, muls),
            hls_baselines::Priority::CriticalPath,
        )
        .unwrap();
        let ls = lifetimes::lifetimes(&g, &out.schedule).unwrap();
        let regs = left_edge::allocate(&ls);
        (g, out.schedule, regs)
    }

    #[test]
    fn estimate_produces_consistent_counts() {
        let (g, sched, regs) = bound_design(2, 2);
        let stats = estimate(&g, &sched, &regs);
        assert_eq!(stats.registers, regs.register_count());
        assert!(stats.connections() >= stats.reg_to_unit);
        assert!(stats.max_mux_inputs >= 1);
        // Each register-to-unit wire needs a producing unit-to-register
        // wire for some register (not necessarily 1:1, but non-zero when
        // registers exist).
        if stats.registers > 0 {
            assert!(stats.unit_to_reg > 0);
        }
    }

    #[test]
    fn estimates_stay_within_structural_bounds() {
        for (alus, muls) in [(4, 4), (2, 2), (2, 1)] {
            let (g, sched, regs) = bound_design(alus, muls);
            let stats = estimate(&g, &sched, &regs);
            // A mux can have at most one input per register plus one per
            // unit; connections are bounded by the edge count.
            assert!(stats.max_mux_inputs <= stats.registers + alus + muls);
            assert!(stats.reg_to_unit + stats.unit_to_reg <= 2 * g.edge_count());
            assert!(stats.max_mux_inputs >= 1);
        }
    }
}
