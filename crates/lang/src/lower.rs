//! SSA construction and lowering to the precedence-graph IR.
//!
//! Variables are renamed on every assignment (SSA); `if`/`else` bodies
//! are lowered *speculatively* into the same DFG (superblock style) and
//! their final variable versions merge at the join through a `Phi`
//! operation fed by the branch condition and both versions — the φ the
//! paper's Section 1 points at: whether it becomes a register move or
//! nothing is known only after register allocation.

use crate::ast::{Block, Expr, Program, Stmt};
use crate::LangError;
use hls_ir::{DelayModel, OpId, OpKind, PrecedenceGraph};
use std::collections::BTreeMap;

/// A value an expression can evaluate to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// The result of an operation in the DFG.
    Op(OpId),
    /// A primary input (free; no vertex).
    Input(String),
    /// A compile-time constant (free; no vertex).
    Const(i64),
}

/// The result of lowering a program.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The dataflow precedence graph.
    pub graph: PrecedenceGraph,
    /// Input names, in declaration order.
    pub inputs: Vec<String>,
    /// `(name, value)` for every declared output.
    pub outputs: Vec<(String, Value)>,
    /// All φ operations inserted at joins (candidates for
    /// `threaded_sched::refine::resolve_phi_to_move`).
    pub phis: Vec<OpId>,
}

struct Lowerer<'d> {
    g: PrecedenceGraph,
    delays: &'d DelayModel,
    env: BTreeMap<String, Value>,
    inputs: Vec<String>,
    phis: Vec<OpId>,
    tmp: usize,
}

/// Lowers a parsed [`Program`] to a DFG.
///
/// # Errors
///
/// Returns the semantic [`LangError`]s: undefined reads, assignments to
/// inputs, duplicate declarations, and never-assigned outputs.
pub fn lower(program: &Program, delays: &DelayModel) -> Result<Compiled, LangError> {
    let mut seen: Vec<&String> = Vec::new();
    for name in program.inputs.iter().chain(&program.outputs) {
        if seen.contains(&name) {
            return Err(LangError::DuplicateDecl(name.clone()));
        }
        seen.push(name);
    }
    let mut lw = Lowerer {
        g: PrecedenceGraph::new(),
        delays,
        env: program
            .inputs
            .iter()
            .map(|n| (n.clone(), Value::Input(n.clone())))
            .collect(),
        inputs: program.inputs.clone(),
        phis: Vec::new(),
        tmp: 0,
    };
    lw.block(&program.body)?;
    let mut outputs = Vec::new();
    for name in &program.outputs {
        match lw.env.get(name) {
            Some(v) => outputs.push((name.clone(), v.clone())),
            None => return Err(LangError::OutputNeverAssigned(name.clone())),
        }
    }
    Ok(Compiled {
        graph: lw.g,
        inputs: lw.inputs,
        outputs,
        phis: lw.phis,
    })
}

impl Lowerer<'_> {
    fn block(&mut self, block: &Block) -> Result<(), LangError> {
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Assign { name, value } => {
                if self.inputs.contains(name) {
                    return Err(LangError::AssignToInput(name.clone()));
                }
                let v = self.expr(value, name)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cond_v = self.expr(cond, "cond")?;
                let before = self.env.clone();
                self.block(then_blk)?;
                let then_env = std::mem::replace(&mut self.env, before.clone());
                self.block(else_blk)?;
                let else_env = std::mem::replace(&mut self.env, before.clone());
                // Merge: variables whose versions differ get a phi.
                let mut names: Vec<&String> =
                    then_env.keys().chain(else_env.keys()).collect();
                names.sort();
                names.dedup();
                for name in names {
                    let t = then_env.get(name);
                    let e = else_env.get(name);
                    match (t, e) {
                        (Some(tv), Some(ev)) if tv == ev => {
                            self.env.insert(name.clone(), tv.clone());
                        }
                        (Some(tv), Some(ev)) => {
                            let phi = self.g.add_op(
                                OpKind::Phi,
                                self.delays.delay_of(OpKind::Phi),
                                format!("phi_{name}"),
                            );
                            self.dep(&cond_v, phi)?;
                            self.dep(tv, phi)?;
                            self.dep(ev, phi)?;
                            self.g.set_operands(
                                phi,
                                vec![operand(&cond_v), operand(tv), operand(ev)],
                            );
                            self.phis.push(phi);
                            self.env.insert(name.clone(), Value::Op(phi));
                        }
                        // Defined on one side only: visible after the join
                        // only if it was defined before the branch (then
                        // the unchanged side carried `before`'s version,
                        // handled above). A one-sided fresh definition
                        // does not escape.
                        _ => {}
                    }
                }
                Ok(())
            }
        }
    }

    fn expr(&mut self, expr: &Expr, hint: &str) -> Result<Value, LangError> {
        match expr {
            Expr::Int(v) => Ok(Value::Const(*v)),
            Expr::Ident(name) => self
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| LangError::Undefined(name.clone())),
            Expr::Bin { op, lhs, rhs } => {
                let lv = self.expr(lhs, hint)?;
                let rv = self.expr(rhs, hint)?;
                let kind = op.op_kind();
                self.tmp += 1;
                let id = self.g.add_op(
                    kind,
                    self.delays.delay_of(kind),
                    format!("{hint}_{}{}", kind.mnemonic(), self.tmp),
                );
                self.dep(&lv, id)?;
                self.dep(&rv, id)?;
                self.g.set_operands(id, vec![operand(&lv), operand(&rv)]);
                Ok(Value::Op(id))
            }
        }
    }

    // Lowering only ever emits forward edges, so a rejection here is a
    // front-end bug — reported, not unwrapped.
    fn dep(&mut self, value: &Value, consumer: OpId) -> Result<(), LangError> {
        if let Value::Op(producer) = value {
            self.g
                .add_edge(*producer, consumer)
                .map_err(|e| LangError::Internal(format!("lowering emitted a bad edge: {e}")))?;
        }
        Ok(())
    }
}

fn operand(value: &Value) -> hls_ir::Operand {
    match value {
        Value::Op(id) => hls_ir::Operand::Op(*id),
        Value::Input(name) => hls_ir::Operand::Input(name.clone()),
        Value::Const(v) => hls_ir::Operand::Const(*v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use hls_ir::algo;

    fn dm() -> DelayModel {
        DelayModel::classic()
    }

    #[test]
    fn straight_line_lowers_to_a_chain() {
        let c = compile("input a; output o; t = a * 3; o = t + 1;", &dm()).unwrap();
        assert_eq!(c.graph.len(), 2);
        assert_eq!(c.graph.edge_count(), 1);
        assert_eq!(algo::diameter(&c.graph), 3); // mul(2) + add(1)
        assert_eq!(c.outputs.len(), 1);
        assert!(matches!(c.outputs[0].1, Value::Op(_)));
    }

    #[test]
    fn hal_like_source_gets_the_right_op_mix() {
        let src = "
            input x, dx, u, y, a;
            output x1, y1, u1, c;
            t1 = 3 * x;  t2 = u * dx;  t3 = 3 * y;
            t4 = t1 * t2;
            t5 = t3 * dx;
            s1 = u - t4;
            u1 = s1 - t5;
            y1 = y + u * dx;
            x1 = x + dx;
            c = x1 < a;
        ";
        let c = compile(src, &dm()).unwrap();
        let muls = c
            .graph
            .op_ids()
            .filter(|&v| c.graph.kind(v) == OpKind::Mul)
            .count();
        assert_eq!(muls, 6);
        assert_eq!(algo::diameter(&c.graph), 6, "same critical path as HAL");
    }

    #[test]
    fn reassignment_shadows_ssa_style() {
        let c = compile("input a; output o; t = a + 1; t = t + 2; o = t + 3;", &dm()).unwrap();
        // Three adds chained.
        assert_eq!(c.graph.len(), 3);
        assert_eq!(algo::diameter(&c.graph), 3);
    }

    #[test]
    fn if_else_inserts_one_phi_per_divergent_variable() {
        let src = "
            input a, b; output o;
            if (a < b) { s = a + 1; t = a + 2; } else { s = b + 3; t = a + 2; }
            o = s * s;
        ";
        let c = compile(src, &dm()).unwrap();
        // `s` diverges (phi); `t` computes identical values on both sides
        // but through *different* vertices, so it also gets a phi — yet
        // nothing reads it after the join, so only `s`'s phi feeds `o`.
        assert!(!c.phis.is_empty());
        let phi_s = c
            .phis
            .iter()
            .find(|&&p| c.graph.label(p) == "phi_s")
            .copied()
            .unwrap();
        // cond + two versions feed the phi.
        assert_eq!(c.graph.preds(phi_s).len(), 3);
        let Value::Op(o) = c.outputs[0].1 else { panic!("output is computed") };
        assert!(c.graph.preds(o).contains(&phi_s));
    }

    #[test]
    fn unchanged_variable_needs_no_phi() {
        let src = "
            input a, b; output o;
            s = a + b;
            if (a < b) { u = s + 1; } else { u = s + 2; }
            o = s + 1;
        ";
        let c = compile(src, &dm()).unwrap();
        let phis_for_s = c.phis.iter().filter(|&&p| c.graph.label(p) == "phi_s").count();
        assert_eq!(phis_for_s, 0, "s is not assigned in the branches");
    }

    #[test]
    fn semantic_errors_are_reported() {
        assert_eq!(
            compile("input a; output o; o = z + 1;", &dm()).unwrap_err(),
            LangError::Undefined("z".into())
        );
        assert_eq!(
            compile("input a; output o; a = 1; o = a;", &dm()).unwrap_err(),
            LangError::AssignToInput("a".into())
        );
        assert_eq!(
            compile("input a, a; output o; o = a;", &dm()).unwrap_err(),
            LangError::DuplicateDecl("a".into())
        );
        assert_eq!(
            compile("input a; output o; t = a + 1;", &dm()).unwrap_err(),
            LangError::OutputNeverAssigned("o".into())
        );
    }

    #[test]
    fn output_may_be_a_plain_input_or_constant() {
        let c = compile("input a; output o, k; o = a; k = 42;", &dm()).unwrap();
        assert_eq!(c.outputs[0].1, Value::Input("a".into()));
        assert_eq!(c.outputs[1].1, Value::Const(42));
        assert!(c.graph.is_empty());
    }

    #[test]
    fn lowered_graphs_are_always_acyclic() {
        let src = "
            input a, b, c; output o;
            x = a * b; y = x + c;
            if (y < a) { x = y * 2; } else { x = y + 2; }
            o = x - a;
        ";
        let c = compile(src, &dm()).unwrap();
        assert!(c.graph.validate().is_ok());
        assert!(!c.phis.is_empty());
    }
}
