//! A small behavioral language front end for the HLS flow.
//!
//! The paper's opening sentence: "High level synthesis accepts a
//! behavioral description, typically a sequential algorithm". This crate
//! provides that entry point: a C-like straight-line language with
//! `if`/`else`, compiled via SSA renaming (inserting `Phi` operations at
//! joins — the paper's Section 1 example of a decision resolvable only
//! after register allocation) into the precedence-graph IR.
//!
//! # Syntax
//!
//! ```text
//! input x, dx, u, y, a;
//! output x1;
//! t1 = 3 * x;
//! if (t1 < a) { s = t1 + u; } else { s = t1 - u; }
//! x1 = s * dx;
//! ```
//!
//! Operators by loosening precedence: `* / <<`, then `+ -`, then
//! `& | ^`, then `< >`. All branches are lowered speculatively into one
//! DFG (superblock style); joins become `Phi` operations fed by the
//! condition and both versions.
//!
//! # Example
//!
//! ```
//! use hls_lang::compile;
//! use hls_ir::DelayModel;
//!
//! let src = "input a, b; output o; o = a * b + 1;";
//! let compiled = compile(src, &DelayModel::classic())?;
//! assert_eq!(compiled.graph.len(), 2); // one mul, one add
//! # Ok::<(), hls_lang::LangError>(())
//! ```

// Source text is adversarial input: every front-end failure mode must
// be a typed `LangError`, never an unwrap (`DESIGN.md` §9).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Block, Expr, Program, Stmt};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{Compiled, Value};
pub use parser::parse;

use std::error::Error;
use std::fmt;

/// Errors across all front-end phases, with 1-based source positions
/// where available.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LangError {
    /// Tokenizer rejected a character.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// Parser rejected the token stream.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A name was read before any assignment reaches it.
    Undefined(String),
    /// An `input` variable was assigned.
    AssignToInput(String),
    /// A name was declared twice.
    DuplicateDecl(String),
    /// An `output` variable never received a value.
    OutputNeverAssigned(String),
    /// A front-end invariant broke (a lowering bug, or a panic caught
    /// at the [`compile`] boundary). Never caused by the source text
    /// alone.
    Internal(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, col, msg } => write!(f, "lex error at {line}:{col}: {msg}"),
            LangError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            LangError::Undefined(n) => write!(f, "use of undefined variable `{n}`"),
            LangError::AssignToInput(n) => write!(f, "assignment to input `{n}`"),
            LangError::DuplicateDecl(n) => write!(f, "duplicate declaration of `{n}`"),
            LangError::OutputNeverAssigned(n) => write!(f, "output `{n}` is never assigned"),
            LangError::Internal(msg) => write!(f, "internal front-end error: {msg}"),
        }
    }
}

impl Error for LangError {}

/// Compiles a behavioral source text into a DFG.
///
/// No panic crosses this boundary: anything unwinding out of a
/// front-end phase is caught and returned as [`LangError::Internal`].
/// (Unbounded recursion is prevented separately by the parser's
/// nesting limit — a stack overflow would abort, not unwind.)
///
/// # Errors
///
/// Any [`LangError`] from lexing, parsing or lowering.
pub fn compile(
    source: &str,
    delays: &hls_ir::DelayModel,
) -> Result<lower::Compiled, LangError> {
    let delays = delays.clone();
    std::panic::catch_unwind(move || {
        let tokens = Lexer::new(source).tokenize()?;
        let program = parser::parse(&tokens)?;
        lower::lower(&program, &delays)
    })
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(LangError::Internal(msg))
    })
}
