//! Recursive-descent parser.

use crate::ast::{BinOp, Block, Expr, Program, Stmt};
use crate::lexer::{Token, TokenKind};
use crate::LangError;

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    depth: usize,
}

/// Maximum statement/expression nesting. Recursion in this parser is
/// bounded by input nesting; past this depth a pathological input
/// would overflow the stack (an *abort*, which no `catch_unwind` can
/// contain), so it is rejected with a parse error instead.
const MAX_DEPTH: usize = 200;

/// Stands in for a token when the slice is empty — [`parse`] accepts
/// arbitrary token streams, not only the lexer's `Eof`-terminated
/// ones.
const EOF_TOKEN: Token = Token {
    kind: TokenKind::Eof,
    line: 0,
    col: 0,
};

/// Parses a token stream (as produced by [`crate::Lexer::tokenize`])
/// into a [`Program`].
///
/// # Errors
///
/// Returns [`LangError::Parse`] with the offending position.
pub fn parse(tokens: &[Token]) -> Result<Program, LangError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        depth: 0,
    };
    let mut program = Program::default();
    loop {
        match p.peek() {
            TokenKind::KwInput => {
                p.bump();
                p.ident_list(&mut program.inputs)?;
            }
            TokenKind::KwOutput => {
                p.bump();
                p.ident_list(&mut program.outputs)?;
            }
            _ => break,
        }
    }
    while !matches!(p.peek(), TokenKind::Eof) {
        let stmt = p.stmt()?;
        program.body.stmts.push(stmt);
    }
    Ok(program)
}

impl Parser<'_> {
    fn current(&self) -> &Token {
        self.toks.get(self.pos).unwrap_or(&EOF_TOKEN)
    }

    fn peek(&self) -> &TokenKind {
        &self.current().kind
    }

    fn here(&self) -> (usize, usize) {
        let t = self.current();
        (t.line, t.col)
    }

    fn bump(&mut self) -> &Token {
        let t = self.toks.get(self.pos).unwrap_or(&EOF_TOKEN);
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Bounds the recursion of [`Parser::stmt`] / [`Parser::expr`];
    /// the matching decrement is in those wrappers.
    fn descend(&mut self) -> Result<(), LangError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            Ok(())
        }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let (line, col) = self.here();
        LangError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LangError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn ident_list(&mut self, into: &mut Vec<String>) -> Result<(), LangError> {
        loop {
            into.push(self.ident()?);
            match self.peek() {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::Semi => {
                    self.bump();
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `;` in declaration")),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        self.descend()?;
        let stmt = self.stmt_inner();
        self.depth -= 1;
        stmt
    }

    fn stmt_inner(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                self.expect(&TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Assign { name, value })
            }
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(&TokenKind::KwIf, "`if`")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let then_blk = self.block()?;
        let else_blk = if matches!(self.peek(), TokenKind::KwElse) {
            self.bump();
            self.block()?
        } else {
            Block::default()
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(Block { stmts })
    }

    // Precedence (loosest to tightest): cmp, logic, sum, product.
    fn expr(&mut self) -> Result<Expr, LangError> {
        self.descend()?;
        let expr = self.expr_inner();
        self.depth -= 1;
        expr
    }

    fn expr_inner(&mut self) -> Result<Expr, LangError> {
        let lhs = self.logic()?;
        match self.peek() {
            TokenKind::Lt => {
                self.bump();
                let rhs = self.logic()?;
                Ok(bin(BinOp::Lt, lhs, rhs))
            }
            TokenKind::Gt => {
                self.bump();
                let rhs = self.logic()?;
                // `a > b` is `b < a`.
                Ok(bin(BinOp::Lt, rhs, lhs))
            }
            _ => Ok(lhs),
        }
    }

    fn logic(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.sum()?;
        while matches!(self.peek(), TokenKind::Amp | TokenKind::Pipe | TokenKind::Caret) {
            self.bump();
            let rhs = self.sum()?;
            lhs = bin(BinOp::Logic, lhs, rhs);
        }
        Ok(lhs)
    }

    fn sum(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.product()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.product()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn product(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Shl => BinOp::Shl,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = bin(op, lhs, rhs);
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lexer;

    fn parse_src(src: &str) -> Result<Program, LangError> {
        parse(&Lexer::new(src).tokenize()?)
    }

    #[test]
    fn parses_declarations_and_assignment() {
        let p = parse_src("input a, b; output o; o = a + b;").unwrap();
        assert_eq!(p.inputs, vec!["a", "b"]);
        assert_eq!(p.outputs, vec!["o"]);
        assert_eq!(p.body.stmts.len(), 1);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_src("o = a + b * c;").unwrap();
        let Stmt::Assign { value, .. } = &p.body.stmts[0] else {
            panic!("expected assign")
        };
        let Expr::Bin { op: BinOp::Add, rhs, .. } = value else {
            panic!("expected + at the top, got {value:?}")
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_src("o = (a + b) * c;").unwrap();
        let Stmt::Assign { value, .. } = &p.body.stmts[0] else {
            panic!("expected assign")
        };
        assert!(matches!(value, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn gt_swaps_operands() {
        let p = parse_src("o = a > b;").unwrap();
        let Stmt::Assign { value, .. } = &p.body.stmts[0] else {
            panic!("expected assign")
        };
        let Expr::Bin { op: BinOp::Lt, lhs, rhs } = value else {
            panic!("expected <")
        };
        assert_eq!(**lhs, Expr::Ident("b".into()));
        assert_eq!(**rhs, Expr::Ident("a".into()));
    }

    #[test]
    fn parses_if_else_with_blocks() {
        let p = parse_src("if (a < b) { x = a; y = b; } else { x = b; }").unwrap();
        let Stmt::If { then_blk, else_blk, .. } = &p.body.stmts[0] else {
            panic!("expected if")
        };
        assert_eq!(then_blk.stmts.len(), 2);
        assert_eq!(else_blk.stmts.len(), 1);
    }

    #[test]
    fn if_without_else_has_empty_else_block() {
        let p = parse_src("if (a < 1) { x = a; }").unwrap();
        let Stmt::If { else_blk, .. } = &p.body.stmts[0] else {
            panic!("expected if")
        };
        assert!(else_blk.stmts.is_empty());
    }

    #[test]
    fn reports_position_of_parse_errors() {
        let err = parse_src("o = ;").unwrap_err();
        assert!(matches!(err, LangError::Parse { col: 5, .. }), "{err}");
        let err = parse_src("input a").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
    }

    #[test]
    fn nested_ifs_parse() {
        let p = parse_src("if (a < 1) { if (b < 2) { x = 1; } else { x = 2; } }").unwrap();
        let Stmt::If { then_blk, .. } = &p.body.stmts[0] else {
            panic!("expected if")
        };
        assert!(matches!(then_blk.stmts[0], Stmt::If { .. }));
    }
}
