//! Hand-rolled tokenizer with source positions.

use crate::LangError;

/// Token kinds of the behavioral language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `input` keyword.
    KwInput,
    /// `output` keyword.
    KwOutput,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<<`.
    Shl,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// End of input.
    Eof,
}

/// A token with its 1-based source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// The tokenizer. Supports `//` line comments and arbitrary whitespace.
#[derive(Clone, Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input, ending with [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Lex`] on an unexpected character or a
    /// numeric literal overflow.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token { kind: TokenKind::Eof, line, col });
                return Ok(out);
            };
            let kind = match c {
                b'=' => self.single(TokenKind::Assign),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'&' => self.single(TokenKind::Amp),
                b'|' => self.single(TokenKind::Pipe),
                b'^' => self.single(TokenKind::Caret),
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'>' => self.single(TokenKind::Gt),
                b'<' => {
                    if self.src.get(self.pos + 1) == Some(&b'<') {
                        self.advance();
                        self.advance();
                        TokenKind::Shl
                    } else {
                        self.single(TokenKind::Lt)
                    }
                }
                b'0'..=b'9' => self.number(line, col)?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                other => {
                    return Err(LangError::Lex {
                        line,
                        col,
                        msg: format!("unexpected character `{}`", other as char),
                    })
                }
            };
            out.push(Token { kind, line, col });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.advance();
        kind
    }

    fn number(&mut self, line: usize, col: usize) -> Result<TokenKind, LangError> {
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.advance();
        }
        // The slice is all ASCII digits; lossy conversion cannot lose
        // anything and keeps the lexer free of unwraps on its hot path.
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| LangError::Lex {
                line,
                col,
                msg: format!("integer literal `{text}` out of range"),
            })
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.advance();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        match text.as_ref() {
            "input" => TokenKind::KwInput,
            "output" => TokenKind::KwOutput,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            _ => TokenKind::Ident(text.into_owned()),
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.advance(),
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while self.src.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.advance();
                    }
                }
                _ => return,
            }
        }
    }

    fn advance(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_statement() {
        assert_eq!(
            kinds("x1 = x + 3;"),
            vec![
                TokenKind::Ident("x1".into()),
                TokenKind::Assign,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Int(3),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_lt_and_shl() {
        assert_eq!(
            kinds("a < b << 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Lt,
                TokenKind::Ident("b".into()),
                TokenKind::Shl,
                TokenKind::Int(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_not_idents() {
        assert_eq!(
            kinds("input if else output"),
            vec![
                TokenKind::KwInput,
                TokenKind::KwIf,
                TokenKind::KwElse,
                TokenKind::KwOutput,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        assert_eq!(
            kinds("a // comment + * \n = 1;"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = Lexer::new("a =\n b;").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 2));
    }

    #[test]
    fn rejects_garbage() {
        let err = Lexer::new("a = $;").tokenize().unwrap_err();
        assert!(matches!(err, LangError::Lex { col: 5, .. }));
    }

    #[test]
    fn rejects_huge_literals() {
        let err = Lexer::new("a = 99999999999999999999;").tokenize().unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
    }
}
