//! Abstract syntax of the behavioral language.

/// Binary operators, mapped 1:1 onto [`hls_ir::OpKind`]s during lowering.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<` (and `>` with swapped operands)
    Lt,
    /// `<<`
    Shl,
    /// `&`, `|`, `^` (all lowered to the logic unit)
    Logic,
}

impl BinOp {
    /// The IR operation kind implementing this operator.
    pub fn op_kind(self) -> hls_ir::OpKind {
        match self {
            BinOp::Add => hls_ir::OpKind::Add,
            BinOp::Sub => hls_ir::OpKind::Sub,
            BinOp::Mul => hls_ir::OpKind::Mul,
            BinOp::Div => hls_ir::OpKind::Div,
            BinOp::Lt => hls_ir::OpKind::Cmp,
            BinOp::Shl => hls_ir::OpKind::Shl,
            BinOp::Logic => hls_ir::OpKind::Logic,
        }
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Variable reference.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// Value expression.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }` (else optional).
    If {
        /// Branch condition.
        cond: Expr,
        /// Then block.
        then_blk: Block,
        /// Else block (possibly empty).
        else_blk: Block,
    },
}

/// A brace-delimited statement list.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Declared input variables.
    pub inputs: Vec<String>,
    /// Declared output variables.
    pub outputs: Vec<String>,
    /// Top-level statements.
    pub body: Block,
}
