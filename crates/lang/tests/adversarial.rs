//! Adversarial front-end inputs (`DESIGN.md` §9).
//!
//! Every input here must come back as `Ok` or a typed [`LangError`] —
//! never a panic, and never a stack overflow (which would abort the
//! whole process, so the parser's nesting limit is load-bearing).

use hls_ir::DelayModel;
use hls_lang::{compile, parse, LangError};

fn dm() -> DelayModel {
    DelayModel::classic()
}

#[test]
fn empty_source_compiles_to_an_empty_program() {
    let c = compile("", &dm()).expect("empty program is valid");
    assert!(c.graph.is_empty());
    assert!(c.inputs.is_empty());
    assert!(c.outputs.is_empty());
}

#[test]
fn whitespace_and_comments_only_compile_cleanly() {
    let c = compile("  \n\t // nothing here\n// or here\n", &dm()).unwrap();
    assert!(c.graph.is_empty());
}

#[test]
fn empty_token_slice_is_a_valid_parse() {
    // `parse` is public; callers may hand it slices the lexer never
    // produced — including one without the trailing `Eof`.
    let p = parse(&[]).expect("empty slice parses as empty program");
    assert!(p.body.stmts.is_empty());
}

#[test]
fn unbalanced_parens_are_a_parse_error() {
    for src in [
        "input a; output o; o = (a + 1;",
        "input a; output o; o = a + 1);",
        "input a; output o; o = ((a);",
        "if (a < 1 { x = 1; }",
        "if (a < 1) { x = 1;",
    ] {
        let err = compile(src, &dm()).unwrap_err();
        assert!(
            matches!(err, LangError::Parse { .. }),
            "`{src}` should be a parse error, got {err:?}"
        );
    }
}

#[test]
fn deeply_nested_parens_are_rejected_not_overflowed() {
    // 10k nesting levels would blow the stack in a naive recursive
    // descent; the depth limit must turn it into a typed error.
    let depth = 10_000;
    let src = format!(
        "input a; output o; o = {}a{};",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    let err = compile(&src, &dm()).unwrap_err();
    let LangError::Parse { msg, .. } = err else {
        panic!("expected a parse error, got {err:?}");
    };
    assert!(msg.contains("nesting"), "unexpected message: {msg}");
}

#[test]
fn deeply_nested_ifs_are_rejected_not_overflowed() {
    let depth = 10_000;
    let mut src = String::from("input a; output o; ");
    for _ in 0..depth {
        src.push_str("if (a < 1) { ");
    }
    src.push_str("o = a + 1; ");
    for _ in 0..depth {
        src.push('}');
    }
    let err = compile(&src, &dm()).unwrap_err();
    assert!(matches!(err, LangError::Parse { .. }), "got {err:?}");
}

#[test]
fn moderate_nesting_still_parses() {
    let depth = 64;
    let src = format!(
        "input a; output o; o = {}a + 1{};",
        "(".repeat(depth),
        ")".repeat(depth)
    );
    let c = compile(&src, &dm()).unwrap();
    assert_eq!(c.graph.len(), 1);
}

#[test]
fn shadowed_names_resolve_to_the_latest_version() {
    // SSA renaming: each assignment shadows the previous; the output
    // must read the last version, and nothing may panic on the redefinitions.
    let src = "input a; output o; \
               t = a + 1; t = t * 2; t = t - 3; t = t << 1; o = t;";
    let c = compile(src, &dm()).unwrap();
    assert_eq!(c.graph.len(), 4);
    assert!(c.graph.validate().is_ok());
}

#[test]
fn shadowing_across_a_branch_join_is_merged_with_a_phi() {
    let src = "input a, b; output o; \
               t = a + b; \
               if (a < b) { t = t * 2; t = t + 1; } \
               o = t;";
    let c = compile(src, &dm()).unwrap();
    assert!(!c.phis.is_empty(), "divergent `t` needs a phi");
    assert!(c.graph.validate().is_ok());
}

#[test]
fn huge_literals_are_a_lex_error_not_a_panic() {
    for lit in [
        "99999999999999999999",
        "9223372036854775808", // i64::MAX + 1
        &"9".repeat(4096),
    ] {
        let err = compile(&format!("input a; output o; o = a + {lit};"), &dm()).unwrap_err();
        assert!(
            matches!(err, LangError::Lex { .. }),
            "`{lit}` should be a lex error, got {err:?}"
        );
    }
}

#[test]
fn i64_max_is_still_a_valid_literal() {
    let src = format!("input a; output o; o = a + {};", i64::MAX);
    compile(&src, &dm()).unwrap();
}

#[test]
fn garbage_bytes_never_panic() {
    // A grab-bag of malformed inputs; typed error or clean compile,
    // nothing else.
    for src in [
        ";", "=", "}", ")", "((((", "input", "input ;", "output ,;",
        "if", "if (", "if (a", "else { }", "o =", "o = ;", "o = a +;",
        "a = b = c;", "input a; input a;", "\u{0}", "o = a @ b;",
    ] {
        let _ = compile(src, &dm());
    }
}
