//! Chain-cover reachability index — a sub-quadratic replacement for the
//! dense transitive-closure [`BitMatrix`](crate::BitMatrix) pair.
//!
//! The vertex set of a DAG is partitioned into *chains*: sequences
//! `x₁, x₂, …` in which every element reaches the next (both
//! decompositions below follow graph edges, which is sufficient). The
//! initial cover is a *minimum path cover* via Hopcroft–Karp matching,
//! so `#chains` tracks the graph's width rather than degrading with
//! scale. Every vertex gets one `(chain, position)` coordinate, and two
//! per-vertex vectors of length `#chains`:
//!
//! * `down[v][c]` — the **lowest** position in chain `c` occupied by a
//!   strict descendant of `v` ([`NO_DOWN`] when none). Because chain
//!   members reach all of their chain successors, *every* position
//!   `≥ down[v][c]` is reachable from `v`.
//! * `up[v][c]` — the **highest** position in chain `c` occupied by a
//!   strict ancestor of `v` ([`NO_UP`] when none); every position
//!   `≤ up[v][c]` reaches `v`.
//!
//! So `reaches(u, v)` is one comparison (`down[u][chain(v)] ≤ pos(v)`),
//! an existential probe against a vertex set reduces to `#chains`
//! comparisons against a per-chain extremum, and the whole index costs
//! `O(|V| · #chains)` memory — `o(|V|²)` whenever the cover is small,
//! which it is for bounded-width behavior DAGs (by Dilworth the optimal
//! cover equals the maximum antichain). The dense matrices remain
//! available through [`crate::algo::closures`] as the small-`V` oracle;
//! [`ReachIndex::check`] cross-validates against them.
//!
//! The index is *incrementally maintainable*: [`ReachIndex::grow`]
//! absorbs appended vertices (refinement splices, ECO ops) by chaining
//! the new vertices, seeding their vectors from their neighbours, and
//! running a localized min/max relaxation over the affected cone only —
//! no from-scratch rebuild, no `O(|V|²)` row surgery.

use crate::{algo, OpId, PrecedenceGraph};

/// Chain position type. Positions are chain-local and chains are split
/// at `MAX_POS` members, so 16 bits always suffice — this halves the
/// `O(|V| · #chains)` tables relative to a `u32` encoding (the tables
/// dominate the index's footprint at production sizes).
pub type Pos = u16;

/// Longest permitted chain; longer paths are split into several chains
/// (still a valid cover), keeping every position below the sentinels.
const MAX_POS: u32 = u16::MAX as u32 - 1;

/// Hard vertex capacity: chain ids live in `u32` with `u32::MAX` as
/// the "unassigned" sentinel, and every chain holds at least one
/// vertex, so `#chains ≤ |V|` must stay strictly below the sentinel.
const MAX_VERTICES: usize = u32::MAX as usize - 1;

/// The graph exceeds the index's capacity limits (vertex-id width or
/// table size) — see [`ReachIndex::try_build`]. Schedulers surface
/// this as their `ResourceExhausted` error rather than truncating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// Human-readable description of the exceeded limit.
    msg: String,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reachability index capacity exceeded: {}", self.msg)
    }
}

impl std::error::Error for CapacityError {}

/// Rejects vertex counts that would overflow the chain-id space, and
/// table sizes that would overflow `usize`.
fn capacity_check(n: usize, stride: usize) -> Result<(), CapacityError> {
    if n > MAX_VERTICES {
        return Err(CapacityError {
            msg: format!("{n} vertices exceed the {MAX_VERTICES}-vertex chain-id space"),
        });
    }
    if n.checked_mul(stride).is_none() {
        return Err(CapacityError {
            msg: format!("down/up tables of {n} x {stride} positions overflow usize"),
        });
    }
    Ok(())
}

/// "No descendant in this chain" sentinel: larger than every position.
pub const NO_DOWN: Pos = Pos::MAX;
/// "No ancestor in this chain" sentinel: smaller than every position
/// (positions are 1-based).
pub const NO_UP: Pos = 0;

/// Per-chain position extrema of a vertex subset — the shared
/// ingredient of every `O(#chains)` existential probe ("does any
/// member of the set strictly reach / get reached by `v`?").
///
/// For a set `S`, `min[c]` is the lowest chain-`c` position occupied
/// by a member (or [`NO_DOWN`] when none) and `max[c]` the highest (or
/// [`NO_UP`]). Because chain members reach their chain successors, the
/// chain-minimum member reaches everything any member of that chain
/// reaches, so the extrema alone decide set-level reachability — see
/// [`ReachIndex::set_reaches`] and [`ReachIndex::set_reached_by`].
///
/// Build one for an ad-hoc set with [`ReachIndex::extrema`], or keep
/// one incrementally with [`ChainExtrema::insert`] (the threaded
/// scheduler maintains its scheduled-set extrema this way, one `O(1)`
/// insert per commit). After [`ReachIndex::grow`] adds chains, call
/// [`ChainExtrema::sync_chain_count`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainExtrema {
    /// Per chain: lowest member position, [`NO_DOWN`] when empty.
    min: Vec<Pos>,
    /// Per chain: highest member position, [`NO_UP`] when empty.
    max: Vec<Pos>,
}

impl ChainExtrema {
    /// The extrema of the empty set over the chains of `index`.
    pub fn empty(index: &ReachIndex) -> ChainExtrema {
        ChainExtrema {
            min: vec![NO_DOWN; index.chain_count()],
            max: vec![NO_UP; index.chain_count()],
        }
    }

    /// Adds vertex `v` to the set. `O(1)`.
    pub fn insert(&mut self, index: &ReachIndex, v: usize) {
        let c = index.chain_of(v);
        let p = index.pos_of(v);
        self.min[c] = self.min[c].min(p);
        self.max[c] = self.max[c].max(p);
    }

    /// Number of chains the extrema cover.
    pub fn chain_count(&self) -> usize {
        self.min.len()
    }

    /// Extends the per-chain tables with empty entries after the
    /// underlying index grew new chains ([`ReachIndex::grow`]).
    pub fn sync_chain_count(&mut self, index: &ReachIndex) {
        self.min.resize(index.chain_count(), NO_DOWN);
        self.max.resize(index.chain_count(), NO_UP);
    }

    /// Empties the set in place — every chain back to "no member" —
    /// re-synced to the chains of `index`. Buffer capacity is retained,
    /// so arena-style reuse of a scheduler state allocates nothing.
    pub fn clear(&mut self, index: &ReachIndex) {
        self.min.clear();
        self.max.clear();
        self.min.resize(index.chain_count(), NO_DOWN);
        self.max.resize(index.chain_count(), NO_UP);
    }

    /// The lowest member position in chain `c` ([`NO_DOWN`] when the
    /// chain holds no member).
    pub fn min_of(&self, c: usize) -> Pos {
        self.min[c]
    }

    /// The highest member position in chain `c` ([`NO_UP`] when none).
    pub fn max_of(&self, c: usize) -> Pos {
        self.max[c]
    }
}

/// The chain-cover reachability index of a [`PrecedenceGraph`].
///
/// Answers strict-reachability queries (`u ≺_G v`) in `O(1)` and
/// "does `v` reach / is `v` reached by any member of a set" probes in
/// `O(#chains)`, using `O(|V| · #chains)` memory. See the [module
/// docs](self).
#[derive(Clone, Debug)]
pub struct ReachIndex {
    /// Number of indexed vertices.
    n: usize,
    /// Number of chains in the cover.
    chains: usize,
    /// Row width of `down`/`up`; `>= chains`, grown by doubling under
    /// [`ReachIndex::grow`] so relayouts stay amortized.
    stride: usize,
    /// Per vertex: its chain.
    chain: Vec<u32>,
    /// Per vertex: its 1-based position within its chain.
    pos: Vec<Pos>,
    /// Per chain: number of members (positions are `1..=len`).
    chain_len: Vec<Pos>,
    /// `down[v·stride + c]`: lowest chain-`c` position strictly
    /// reachable from `v`, or [`NO_DOWN`].
    down: Vec<Pos>,
    /// `up[v·stride + c]`: highest chain-`c` position strictly reaching
    /// `v`, or [`NO_UP`].
    up: Vec<Pos>,
}

impl ReachIndex {
    /// Builds the index for `g`: a *minimum path cover* (König/Dilworth
    /// reduction to bipartite matching, solved with Hopcroft–Karp in
    /// `O(|E|·√|V|)`) for the chains, then one sweep per direction for
    /// the vectors (`O(|E| · #chains)`).
    ///
    /// The matching matters: a greedy cover of a wide layered DAG
    /// fragments into `Θ(|V|)` chains once early chains steal later
    /// vertices' successors, which silently re-inflates the index to
    /// quadratic; the matching cover tracks the graph's width
    /// (`|V| − |matching|` paths) independent of scale.
    ///
    /// # Panics
    ///
    /// Panics if `g` is cyclic or exceeds the index's capacity; use
    /// [`ReachIndex::try_build`] for a fallible variant.
    pub fn build(g: &PrecedenceGraph) -> ReachIndex {
        match ReachIndex::try_build(g) {
            Ok(idx) => idx,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ReachIndex::build`]: rejects graphs whose vertex
    /// count would overflow the `u32` chain-id space or whose
    /// `|V| × #chains` tables would overflow `usize`, instead of
    /// silently truncating ids.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] when a capacity limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `g` is cyclic.
    pub fn try_build(g: &PrecedenceGraph) -> Result<ReachIndex, CapacityError> {
        let order = algo::topo_order(g).expect("ReachIndex requires an acyclic graph");
        let n = g.len();
        capacity_check(n, 1)?;
        let mut idx = ReachIndex {
            n,
            chains: 0,
            stride: 0,
            chain: vec![u32::MAX; n],
            pos: vec![0; n],
            chain_len: Vec::new(),
            down: Vec::new(),
            up: Vec::new(),
        };
        // Minimum path cover: each vertex is matched to at most one
        // successor and one predecessor; the matched edges decompose
        // `V` into `|V| − |matching|` vertex-disjoint paths. Chains
        // follow edges, so membership order is reachability order.
        let pair_succ = max_matching(g);
        let mut is_head = vec![true; n];
        for &s in &pair_succ {
            if s != u32::MAX {
                is_head[s as usize] = false;
            }
        }
        for &v in &order {
            if !is_head[v.index()] {
                continue;
            }
            idx.cover_path(v.index(), |_, cur| {
                (pair_succ[cur] != u32::MAX).then_some(pair_succ[cur] as usize)
            });
        }
        idx.chains = idx.chain_len.len();
        idx.stride = idx.chains.max(1);
        capacity_check(n, idx.stride)?;
        idx.down = vec![NO_DOWN; n * idx.stride];
        idx.up = vec![NO_UP; n * idx.stride];
        let mut buf = vec![0 as Pos; idx.chains];
        for &v in order.iter().rev() {
            for &s in g.succs(v) {
                idx.refl_down_into(s.index(), &mut buf);
                min_into(idx.down_row_mut(v.index()), &buf);
            }
        }
        for &v in &order {
            for &p in g.preds(v) {
                idx.refl_up_into(p.index(), &mut buf);
                max_into(idx.up_row_mut(v.index()), &buf);
            }
        }
        Ok(idx)
    }

    /// Number of indexed vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the empty index.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of chains in the cover.
    pub fn chain_count(&self) -> usize {
        self.chains
    }

    /// The chain of vertex `v`.
    pub fn chain_of(&self, v: usize) -> usize {
        self.chain[v] as usize
    }

    /// The 1-based position of vertex `v` within its chain.
    pub fn pos_of(&self, v: usize) -> Pos {
        self.pos[v]
    }

    /// `true` iff `u` strictly reaches `v` (`u ≺_G v`).
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        hls_obs::obs_count!(ReachPairProbes);
        self.down[u * self.stride + self.chain[v] as usize] <= self.pos[v]
    }

    /// The `down` vector of `v`, one entry per chain: the lowest
    /// position strictly reachable from `v`, or [`NO_DOWN`]. A vertex
    /// set containing any chain-`c` member at position `≥ down[c]`
    /// contains a strict descendant of `v`.
    pub fn down_row(&self, v: usize) -> &[Pos] {
        &self.down[v * self.stride..v * self.stride + self.chains]
    }

    /// The `up` vector of `v`: the highest chain position strictly
    /// reaching `v`, or [`NO_UP`] — the mirror of
    /// [`ReachIndex::down_row`].
    pub fn up_row(&self, v: usize) -> &[Pos] {
        &self.up[v * self.stride..v * self.stride + self.chains]
    }

    /// Builds the [`ChainExtrema`] of an ad-hoc vertex set.
    pub fn extrema(&self, set: impl IntoIterator<Item = usize>) -> ChainExtrema {
        let mut ex = ChainExtrema::empty(self);
        for v in set {
            ex.insert(self, v);
        }
        ex
    }

    /// `true` iff some member of the set behind `ex` strictly reaches
    /// `v`. `O(#chains)`: a chain's minimum member reaches everything
    /// any member of that chain reaches, so chain `c` contributes an
    /// ancestor exactly when `ex.min_of(c) ≤ up[v][c]`.
    pub fn set_reaches(&self, ex: &ChainExtrema, v: usize) -> bool {
        hls_obs::obs_count!(ReachSetProbes);
        debug_assert_eq!(
            ex.min.len(),
            self.chains,
            "extrema must be synced to the index (sync_chain_count after grow)"
        );
        kernels::any_le(&ex.min, self.up_row(v))
    }

    /// `true` iff some member of the set behind `ex` is strictly
    /// reached by `v` — the mirror of [`ReachIndex::set_reaches`]
    /// against the per-chain maxima and the `down` vector.
    pub fn set_reached_by(&self, ex: &ChainExtrema, v: usize) -> bool {
        hls_obs::obs_count!(ReachSetProbes);
        debug_assert_eq!(
            ex.max.len(),
            self.chains,
            "extrema must be synced to the index (sync_chain_count after grow)"
        );
        kernels::any_le(self.down_row(v), &ex.max)
    }

    /// The *convex closure* of `seed`: the seed vertices plus every
    /// vertex lying on a path between two of them (a strict ancestor of
    /// one seed member and a strict descendant of another). This is the
    /// critical-path *cone* extraction used by the feedback-guided
    /// refinement loop: seeded with the zero-slack operations, it
    /// returns a dependence-convex subgraph whose internal order is the
    /// only thing the re-scheduling perturbations need to vary.
    ///
    /// `O(|V| · #chains)` — two set-probes per vertex against the
    /// seed's [`ChainExtrema`]. The result is sorted ascending and
    /// duplicate-free (assuming `seed` is).
    pub fn convex_closure(&self, seed: &[usize]) -> Vec<usize> {
        let ex = self.extrema(seed.iter().copied());
        let mut in_seed = vec![false; self.n];
        for &v in seed {
            in_seed[v] = true;
        }
        (0..self.n)
            .filter(|&v| {
                in_seed[v] || (self.set_reaches(&ex, v) && self.set_reached_by(&ex, v))
            })
            .collect()
    }

    /// Absorbs vertices appended to `g` since the index was built or
    /// last grown (refinement splices, ECO ops — the mutation API only
    /// appends). New vertices are covered by fresh chains following
    /// their forward edges, seeded from their neighbours' vectors, and
    /// the existing entries are repaired by a *localized* min/max
    /// relaxation: only vertices whose vectors actually change are
    /// visited (all new reachability routes through the new vertices,
    /// and every affected ancestor/descendant strictly improves in a
    /// fresh-chain column, so the worklist reaches exactly the affected
    /// cone).
    ///
    /// # Panics
    ///
    /// Panics if the grown graph exceeds the index's capacity; use
    /// [`ReachIndex::try_grow`] for a fallible variant.
    pub fn grow(&mut self, g: &PrecedenceGraph) {
        if let Err(e) = self.try_grow(g) {
            panic!("{e}");
        }
    }

    /// Fallible [`ReachIndex::grow`] — the growth analogue of
    /// [`ReachIndex::try_build`]. On `Err` the index is unchanged.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] when a capacity limit is exceeded.
    pub fn try_grow(&mut self, g: &PrecedenceGraph) -> Result<(), CapacityError> {
        let old = self.n;
        let new = g.len();
        if new == old {
            return Ok(());
        }
        // Check the worst-case post-growth table up front (stride at
        // most doubles or becomes #chains ≤ |V|) so a failure leaves
        // the index untouched.
        capacity_check(new, self.stride.saturating_mul(2).max(new).max(1))?;
        let old_chains = self.chains;
        self.chain.resize(new, u32::MAX);
        self.pos.resize(new, 0);
        for w in old..new {
            if self.chain[w] != u32::MAX {
                continue;
            }
            // New chains extend greedily along edges, and only through
            // this batch's vertices: old vertices are already covered.
            self.cover_path(w, |chain, cur| {
                g.succs(OpId::from_index(cur))
                    .iter()
                    .map(|s| s.index())
                    .find(|&s| s >= old && chain[s] == u32::MAX)
            });
        }
        self.chains = self.chain_len.len();
        self.n = new;
        if self.chains > self.stride {
            let old_stride = self.stride;
            let stride = (old_stride * 2).max(self.chains);
            let relayout = |tab: &mut Vec<Pos>, fill: Pos| {
                let mut next = vec![fill; new * stride];
                for i in 0..old {
                    next[i * stride..i * stride + old_chains]
                        .copy_from_slice(&tab[i * old_stride..i * old_stride + old_chains]);
                }
                *tab = next;
            };
            relayout(&mut self.down, NO_DOWN);
            relayout(&mut self.up, NO_UP);
            self.stride = stride;
        } else {
            self.down.resize(new * self.stride, NO_DOWN);
            self.up.resize(new * self.stride, NO_UP);
        }
        // Seed the new vertices from their direct neighbours. Edges of
        // a growth batch run forward (old → new, new → higher-new,
        // new → old), so a reverse pass finalises `down` seeds and a
        // forward pass `up` seeds; any residual staleness is closed by
        // the relaxation below.
        let mut buf = vec![0 as Pos; self.chains];
        for w in (old..new).rev() {
            for &s in g.succs(OpId::from_index(w)) {
                self.refl_down_into(s.index(), &mut buf);
                min_into(self.down_row_mut(w), &buf);
            }
        }
        for w in old..new {
            for &p in g.preds(OpId::from_index(w)) {
                self.refl_up_into(p.index(), &mut buf);
                max_into(self.up_row_mut(w), &buf);
            }
        }
        // Backward min-relaxation: every vertex gaining reachability
        // gains it through a new vertex, so propagating the (reflexive)
        // down vectors of the new vertices to fixpoint repairs exactly
        // the affected backward cone.
        let mut queue: Vec<u32> = (old as u32..new as u32).collect();
        while let Some(x) = queue.pop() {
            self.refl_down_into(x as usize, &mut buf);
            for &p in g.preds(OpId::from_index(x as usize)) {
                if min_into(self.down_row_mut(p.index()), &buf) {
                    queue.push(p.index() as u32);
                }
            }
        }
        // Forward max-relaxation for `up`, mirrored.
        let mut queue: Vec<u32> = (old as u32..new as u32).collect();
        while let Some(x) = queue.pop() {
            self.refl_up_into(x as usize, &mut buf);
            for &s in g.succs(OpId::from_index(x as usize)) {
                if max_into(self.up_row_mut(s.index()), &buf) {
                    queue.push(s.index() as u32);
                }
            }
        }
        Ok(())
    }

    /// Verifies the index against the dense closures of `g` — the
    /// small-`V` oracle: chain well-formedness (positions `1..=len`,
    /// members in reachability order) and exact agreement of
    /// `reaches`/`down`/`up` with the [`BitMatrix`](crate::BitMatrix)
    /// pair. `O(|V|²)` — verification only, never on a hot path.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    pub fn check(&self, g: &PrecedenceGraph) -> Result<(), String> {
        if self.n != g.len() {
            return Err(format!("index covers {} vertices, graph has {}", self.n, g.len()));
        }
        if self.chains != self.chain_len.len() {
            return Err("chain count disagrees with chain_len".to_string());
        }
        // Chains partition the vertices with positions exactly 1..=len,
        // in reachability order.
        let mut members: Vec<Vec<(Pos, usize)>> = vec![Vec::new(); self.chains];
        for v in 0..self.n {
            let c = self.chain[v] as usize;
            if c >= self.chains {
                return Err(format!("vertex {v}: chain {c} out of range"));
            }
            members[c].push((self.pos[v], v));
        }
        let (anc, desc) = algo::closures(g);
        for (c, mem) in members.iter_mut().enumerate() {
            mem.sort_unstable();
            if mem.len() != self.chain_len[c] as usize {
                return Err(format!("chain {c}: {} members, recorded {}", mem.len(), self.chain_len[c]));
            }
            for (i, &(p, v)) in mem.iter().enumerate() {
                if p as usize != i + 1 {
                    return Err(format!("chain {c}: vertex {v} at position {p}, expected {}", i + 1));
                }
                if i > 0 && !desc.get(mem[i - 1].1, v) {
                    return Err(format!("chain {c}: member {} does not reach member {v}", mem[i - 1].1));
                }
            }
        }
        // down/up agree exactly with the dense closures.
        for v in 0..self.n {
            for (c, mem) in members.iter().enumerate() {
                let want_down = mem
                    .iter()
                    .find(|&&(_, m)| desc.get(v, m))
                    .map_or(NO_DOWN, |&(p, _)| p);
                if self.down_row(v)[c] != want_down {
                    return Err(format!(
                        "vertex {v}: down[{c}] = {} but closure says {want_down}",
                        self.down_row(v)[c]
                    ));
                }
                let want_up = mem
                    .iter()
                    .rev()
                    .find(|&&(_, m)| anc.get(v, m))
                    .map_or(NO_UP, |&(p, _)| p);
                if self.up_row(v)[c] != want_up {
                    return Err(format!(
                        "vertex {v}: up[{c}] = {} but closure says {want_up}",
                        self.up_row(v)[c]
                    ));
                }
            }
            for u in 0..self.n {
                if self.reaches(v, u) != desc.get(v, u) {
                    return Err(format!(
                        "reaches({v}, {u}) = {} but closure says {}",
                        self.reaches(v, u),
                        desc.get(v, u)
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    /// Covers one path starting at `head`: assigns chain ids and
    /// 1-based positions along the vertices yielded by `next` (which
    /// sees the current chain-assignment table and the current vertex),
    /// splitting at [`MAX_POS`] members so positions always fit
    /// [`Pos`] — a path prefix is still a valid chain.
    fn cover_path(
        &mut self,
        head: usize,
        mut next: impl FnMut(&[u32], usize) -> Option<usize>,
    ) {
        let mut c = self.chain_len.len() as u32;
        let mut cur = head;
        let mut p = 0u32;
        loop {
            if p >= MAX_POS {
                self.chain_len.push(p as Pos);
                c = self.chain_len.len() as u32;
                p = 0;
            }
            p += 1;
            // A full chain ends exactly at MAX_POS = 65534: strictly
            // below NO_DOWN (65535) and strictly above NO_UP (0), so
            // both sentinels stay outside the position range even for
            // the boundary member.
            debug_assert!(p as Pos > NO_UP && (p as Pos) < NO_DOWN);
            self.chain[cur] = c;
            self.pos[cur] = p as Pos;
            match next(&self.chain, cur) {
                Some(s) => cur = s,
                None => break,
            }
        }
        self.chain_len.push(p as Pos);
    }

    fn down_row_mut(&mut self, v: usize) -> &mut [Pos] {
        &mut self.down[v * self.stride..v * self.stride + self.chains]
    }

    fn up_row_mut(&mut self, v: usize) -> &mut [Pos] {
        &mut self.up[v * self.stride..v * self.stride + self.chains]
    }

    /// Copies the *reflexive* down vector of `v` into `buf`: `down[v]`
    /// with `v`'s own coordinate folded in.
    fn refl_down_into(&self, v: usize, buf: &mut [Pos]) {
        buf.copy_from_slice(self.down_row(v));
        let c = self.chain[v] as usize;
        buf[c] = buf[c].min(self.pos[v]);
    }

    /// Reflexive up vector of `v` — the mirror of
    /// [`ReachIndex::refl_down_into`].
    fn refl_up_into(&self, v: usize, buf: &mut [Pos]) {
        buf.copy_from_slice(self.up_row(v));
        let c = self.chain[v] as usize;
        buf[c] = buf[c].max(self.pos[v]);
    }
}

/// Maximum bipartite matching of the DAG's edge set (left copy =
/// vertices as edge *sources*, right copy = vertices as *targets*) via
/// Hopcroft–Karp — `O(|E|·√|V|)`. Returns `pair_succ`: per vertex, its
/// matched successor or `u32::MAX`. The matched edges form the minimum
/// path cover used as the chain decomposition.
fn max_matching(g: &PrecedenceGraph) -> Vec<u32> {
    const FREE: u32 = u32::MAX;
    const INF: u32 = u32::MAX;
    let n = g.len();
    let mut pair_succ = vec![FREE; n];
    let mut pair_pred = vec![FREE; n];
    let mut dist = vec![INF; n];
    let mut queue: Vec<u32> = Vec::with_capacity(n);
    // DFS stack: (left vertex, index of the next successor to try).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    loop {
        // BFS phase: layer the left vertices by alternating-path depth
        // from the free ones; stop when a free right vertex is seen.
        queue.clear();
        for u in 0..n {
            if pair_succ[u] == FREE {
                dist[u] = 0;
                queue.push(u as u32);
            } else {
                dist[u] = INF;
            }
        }
        let mut augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            for &v in g.succs(OpId::from_index(u)) {
                let w = pair_pred[v.index()];
                if w == FREE {
                    augmenting = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !augmenting {
            return pair_succ;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths along
        // the BFS layering, iterative to keep the stack off the call
        // stack for deep phases.
        for u0 in 0..n {
            if pair_succ[u0] != FREE {
                continue;
            }
            stack.clear();
            stack.push((u0 as u32, 0));
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                let ui = u as usize;
                let succs = g.succs(OpId::from_index(ui));
                if *i >= succs.len() {
                    // Dead end: bar this vertex for the rest of the phase.
                    dist[ui] = INF;
                    stack.pop();
                    continue;
                }
                let v = succs[*i];
                *i += 1;
                let w = pair_pred[v.index()];
                if w == FREE {
                    // Free right vertex: flip the whole alternating
                    // path. Every frame's chosen edge is its previous
                    // successor (`i - 1`); re-matching from the top
                    // down rewrites each link exactly once.
                    while let Some((u, i)) = stack.pop() {
                        let chosen = g.succs(OpId::from_index(u as usize))[i - 1];
                        pair_succ[u as usize] = chosen.index() as u32;
                        pair_pred[chosen.index()] = u;
                    }
                } else if dist[w as usize] == dist[ui] + 1 {
                    stack.push((w, 0));
                }
            }
        }
    }
}

pub use kernels::{max_into, min_into};

/// Word-parallel (SWAR) kernels over the `u16` extremum rows.
///
/// Every row walk the index performs — the build/grow min/max
/// relaxations and the `O(#chains)` set probes — reduces to an
/// elementwise `min`/`max`/`≤` over two `u16` vectors. These kernels
/// process **4 lanes per iteration** by packing four positions into one
/// `u64` and doing per-lane unsigned comparison with plain integer
/// arithmetic, so they run on stable Rust with no `unsafe` and no
/// target-feature gates (the CI toolchain has no nightly `std::simd`).
///
/// The word trick: split a packed word into its even lanes (bits
/// 0–15, 32–47) and odd lanes (shifted right 16). With 16-bit values
/// `a`, `b` in even-lane slots, `(b | GUARD) − a` cannot borrow across
/// lanes — `0x1_0000 + b − a` always fits in 17 bits — and its guard
/// bit (bit 16 of each 32-bit slot) survives exactly when `a ≤ b`.
/// That bit yields an "any lane ≤" probe directly, or a full-lane
/// select mask via `(guard_bits >> 16) * 0xFFFF`. The scalar
/// `*_scalar` twins are the oracles for the differential fuzz suite
/// (`reach_properties.rs`) and for the microbench before/after.
pub mod kernels {
    use super::Pos;

    /// Even-lane mask of a packed 4×`u16` word: lanes 0 and 2.
    const EVEN: u64 = 0x0000_FFFF_0000_FFFF;
    /// Per-even-lane borrow guards: bit 16 of each 32-bit slot.
    const GUARD: u64 = 0x0001_0000_0001_0000;

    /// Packs 4 consecutive positions into a `u64`, lane 0 lowest.
    /// Compiles to a single 8-byte load on little-endian targets.
    #[inline(always)]
    fn pack(c: &[Pos]) -> u64 {
        (c[0] as u64) | (c[1] as u64) << 16 | (c[2] as u64) << 32 | (c[3] as u64) << 48
    }

    /// Guard bits (16 and 48) set where `a ≤ b`, for even-lane values.
    /// No inter-lane borrow: `0x1_0000 + b − a` fits in 17 bits.
    #[inline(always)]
    fn le_guards(a: u64, b: u64) -> u64 {
        ((b | GUARD).wrapping_sub(a)) & GUARD
    }

    /// `0xFFFF` in each even lane where `a ≤ b`, `0` elsewhere. The
    /// multiply broadcasts the isolated guard bits (at 0 and 32 after
    /// the shift) into full lanes without overlap.
    #[inline(always)]
    fn le_mask(a: u64, b: u64) -> u64 {
        (le_guards(a, b) >> 16).wrapping_mul(0xFFFF)
    }

    /// Per-lane minimum of two packed 4×`u16` words.
    #[inline(always)]
    fn lane_min(a: u64, b: u64) -> u64 {
        let (ae, be) = (a & EVEN, b & EVEN);
        let (ao, bo) = ((a >> 16) & EVEN, (b >> 16) & EVEN);
        // Select `a` where `a ≤ b`, else `b`: b ^ ((a^b) & mask).
        let me = be ^ ((ae ^ be) & le_mask(ae, be));
        let mo = bo ^ ((ao ^ bo) & le_mask(ao, bo));
        me | (mo << 16)
    }

    /// Per-lane maximum of two packed 4×`u16` words.
    #[inline(always)]
    fn lane_max(a: u64, b: u64) -> u64 {
        let (ae, be) = (a & EVEN, b & EVEN);
        let (ao, bo) = ((a >> 16) & EVEN, (b >> 16) & EVEN);
        // Select `b` where `a ≤ b`, else `a`: a ^ ((a^b) & mask).
        let me = ae ^ ((ae ^ be) & le_mask(ae, be));
        let mo = ao ^ ((ao ^ bo) & le_mask(ao, bo));
        me | (mo << 16)
    }

    /// Unpacks a word back into 4 consecutive positions.
    #[inline(always)]
    fn unpack(w: u64, c: &mut [Pos]) {
        c[0] = w as Pos;
        c[1] = (w >> 16) as Pos;
        c[2] = (w >> 32) as Pos;
        c[3] = (w >> 48) as Pos;
    }

    /// `dst = min(dst, src)` elementwise; `true` if anything changed.
    /// 4 lanes per iteration, scalar ragged tail.
    pub fn min_into(dst: &mut [Pos], src: &[Pos]) -> bool {
        let n = dst.len().min(src.len());
        let mut diff = 0u64;
        let mut i = 0;
        while i + 4 <= n {
            let d = pack(&dst[i..i + 4]);
            let m = lane_min(d, pack(&src[i..i + 4]));
            diff |= d ^ m;
            unpack(m, &mut dst[i..i + 4]);
            i += 4;
        }
        let mut changed = diff != 0;
        for (d, &s) in dst[i..n].iter_mut().zip(&src[i..n]) {
            if s < *d {
                *d = s;
                changed = true;
            }
        }
        changed
    }

    /// `dst = max(dst, src)` elementwise; `true` if anything changed.
    pub fn max_into(dst: &mut [Pos], src: &[Pos]) -> bool {
        let n = dst.len().min(src.len());
        let mut diff = 0u64;
        let mut i = 0;
        while i + 4 <= n {
            let d = pack(&dst[i..i + 4]);
            let m = lane_max(d, pack(&src[i..i + 4]));
            diff |= d ^ m;
            unpack(m, &mut dst[i..i + 4]);
            i += 4;
        }
        let mut changed = diff != 0;
        for (d, &s) in dst[i..n].iter_mut().zip(&src[i..n]) {
            if s > *d {
                *d = s;
                changed = true;
            }
        }
        changed
    }

    /// `true` iff some lane has `a[i] ≤ b[i]` — the shared body of the
    /// two set probes ([`super::ReachIndex::set_reaches`] is
    /// `any_le(min, up_row)`; [`super::ReachIndex::set_reached_by`] is
    /// `any_le(down_row, max)`). The all-false case — the common one
    /// while a probe's answer is "no" — runs the full row at 4 lanes
    /// per iteration with no data-dependent branches.
    pub fn any_le(a: &[Pos], b: &[Pos]) -> bool {
        let n = a.len().min(b.len());
        let mut i = 0;
        while i + 4 <= n {
            let aw = pack(&a[i..i + 4]);
            let bw = pack(&b[i..i + 4]);
            let even = le_guards(aw & EVEN, bw & EVEN);
            let odd = le_guards((aw >> 16) & EVEN, (bw >> 16) & EVEN);
            if even | odd != 0 {
                return true;
            }
            i += 4;
        }
        a[i..n].iter().zip(&b[i..n]).any(|(&x, &y)| x <= y)
    }

    /// Scalar oracle for [`min_into`] — reference semantics for the
    /// differential fuzz suite and the kernel microbench.
    pub fn min_into_scalar(dst: &mut [Pos], src: &[Pos]) -> bool {
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(src) {
            if s < *d {
                *d = s;
                changed = true;
            }
        }
        changed
    }

    /// Scalar oracle for [`max_into`].
    pub fn max_into_scalar(dst: &mut [Pos], src: &[Pos]) -> bool {
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(src) {
            if s > *d {
                *d = s;
                changed = true;
            }
        }
        changed
    }

    /// Scalar oracle for [`any_le`].
    pub fn any_le_scalar(a: &[Pos], b: &[Pos]) -> bool {
        a.iter().zip(b).any(|(&x, &y)| x <= y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// a -> b -> d, a -> c -> d.
    fn diamond() -> (PrecedenceGraph, [OpId; 4]) {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let c = g.add_op(OpKind::Sub, 1, "c");
        let d = g.add_op(OpKind::Add, 1, "d");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn diamond_reachability_and_cover() {
        let (g, [a, b, c, d]) = diamond();
        let idx = ReachIndex::build(&g);
        idx.check(&g).unwrap();
        assert!(idx.reaches(a.index(), d.index()));
        assert!(idx.reaches(a.index(), b.index()));
        assert!(!idx.reaches(b.index(), c.index()));
        assert!(!idx.reaches(d.index(), a.index()));
        assert!(!idx.reaches(a.index(), a.index()), "strict");
        // A 4-vertex diamond is covered by 2 chains (Dilworth: max
        // antichain {b, c}).
        assert_eq!(idx.chain_count(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let g = PrecedenceGraph::new();
        let idx = ReachIndex::build(&g);
        assert!(idx.is_empty());
        assert_eq!(idx.chain_count(), 0);
        idx.check(&g).unwrap();

        let mut g = PrecedenceGraph::new();
        let v = g.add_op(OpKind::Add, 1, "v");
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.chain_count(), 1);
        assert!(!idx.reaches(v.index(), v.index()));
        idx.check(&g).unwrap();
    }

    #[test]
    fn antichain_degenerates_to_one_chain_per_vertex() {
        let mut g = PrecedenceGraph::new();
        for i in 0..17 {
            g.add_op(OpKind::Add, 1, format!("n{i}"));
        }
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.chain_count(), 17);
        idx.check(&g).unwrap();
    }

    #[test]
    fn chain_graph_is_one_chain() {
        let mut g = PrecedenceGraph::new();
        let ids: Vec<OpId> = (0..130).map(|i| g.add_op(OpKind::Add, 1, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.chain_count(), 1);
        assert!(idx.reaches(0, 129));
        assert!(!idx.reaches(129, 0));
        idx.check(&g).unwrap();
    }

    #[test]
    fn grow_absorbs_a_splice() {
        let (mut g, [a, b, _c, d]) = diamond();
        let mut idx = ReachIndex::build(&g);
        let inserted = g
            .splice_on_edge(
                a,
                b,
                [
                    (OpKind::WireDelay, 1, "w0".to_string()),
                    (OpKind::WireDelay, 1, "w1".to_string()),
                ],
            )
            .unwrap();
        idx.grow(&g);
        idx.check(&g).unwrap();
        assert!(idx.reaches(a.index(), inserted[0].index()));
        assert!(idx.reaches(inserted[0].index(), inserted[1].index()));
        assert!(idx.reaches(inserted[1].index(), d.index()));
        assert!(!idx.reaches(inserted[0].index(), a.index()));
        // The spliced pair forms one new chain.
        assert_eq!(idx.chain_of(inserted[0].index()), idx.chain_of(inserted[1].index()));
    }

    #[test]
    fn grow_absorbs_an_eco_op_bridging_old_vertices() {
        // b and c are incomparable; an added op b -> x -> c creates the
        // new old-to-old reachability b ≺ c that must propagate to b's
        // ancestors.
        let (mut g, [a, b, c, d]) = diamond();
        let mut idx = ReachIndex::build(&g);
        assert!(!idx.reaches(b.index(), c.index()));
        let x = g.add_op(OpKind::Add, 1, "x");
        g.add_edge(b, x).unwrap();
        g.add_edge(x, c).unwrap();
        idx.grow(&g);
        idx.check(&g).unwrap();
        assert!(idx.reaches(b.index(), c.index()), "new path b -> x -> c");
        assert!(idx.reaches(a.index(), x.index()), "ancestors learn the new vertex");
        assert!(idx.reaches(x.index(), d.index()));
    }

    #[test]
    fn repeated_grows_stay_exact() {
        let (mut g, [a, _b, c, d]) = diamond();
        let mut idx = ReachIndex::build(&g);
        // Enough batches to force several stride doublings.
        let mut last = c;
        for i in 0..10 {
            let w = g.add_op(OpKind::WireDelay, 1, format!("w{i}"));
            g.add_edge(last, w).unwrap();
            g.add_edge(w, d).unwrap();
            idx.grow(&g);
            idx.check(&g).unwrap();
            assert!(idx.reaches(a.index(), w.index()));
            last = w;
        }
        assert_eq!(idx.len(), g.len());
    }

    #[test]
    fn set_probes_match_the_dense_closure() {
        let (g, ids) = {
            let (g, ids) = diamond();
            (g, ids.to_vec())
        };
        let idx = ReachIndex::build(&g);
        let (anc, desc) = crate::algo::closures(&g);
        // Every nonempty subset of the 4 vertices, both probes, every
        // probe vertex — exhaustive against the dense oracle.
        for bits in 1u32..16 {
            let set: Vec<usize> = (0..4).filter(|i| bits & (1 << i) != 0).collect();
            let ex = idx.extrema(set.iter().copied());
            for v in 0..4 {
                let want_anc = set.iter().any(|&u| desc.get(u, v));
                let want_desc = set.iter().any(|&u| anc.get(u, v));
                assert_eq!(idx.set_reaches(&ex, v), want_anc, "set {set:?} reaches {v}");
                assert_eq!(idx.set_reached_by(&ex, v), want_desc, "set {set:?} reached by {v}");
            }
        }
        let _ = ids;
    }

    #[test]
    fn convex_closure_fills_in_the_between_vertices() {
        // a -> b -> d, a -> c -> d: the closure of {a, d} must pull in
        // b and c (both between), while {b} alone stays {b}.
        let (g, [a, b, c, d]) = diamond();
        let idx = ReachIndex::build(&g);
        let cone = idx.convex_closure(&[a.index(), d.index()]);
        assert_eq!(cone, vec![a.index(), b.index(), c.index(), d.index()]);
        assert_eq!(idx.convex_closure(&[b.index()]), vec![b.index()]);
        assert_eq!(idx.convex_closure(&[]), Vec::<usize>::new());
    }

    #[test]
    fn extrema_track_grow_and_incremental_inserts() {
        let (mut g, [a, b, _c, d]) = diamond();
        let mut idx = ReachIndex::build(&g);
        let mut ex = ChainExtrema::empty(&idx);
        ex.insert(&idx, a.index());
        assert!(idx.set_reaches(&ex, d.index()));
        assert!(!idx.set_reaches(&ex, a.index()), "strict: a does not reach itself");
        // Grow the graph; the extrema must resize before further use.
        let x = g.add_op(OpKind::Add, 1, "x");
        g.add_edge(b, x).unwrap();
        idx.grow(&g);
        ex.sync_chain_count(&idx);
        assert_eq!(ex.chain_count(), idx.chain_count());
        assert!(idx.set_reaches(&ex, x.index()), "a reaches the new vertex");
        // Incremental inserts agree with the batch constructor.
        ex.insert(&idx, x.index());
        let batch = idx.extrema([a.index(), x.index()]);
        assert_eq!(ex, batch);
    }

    #[test]
    fn chain_split_at_the_u16_boundary_keeps_reachability_exact() {
        // A path one longer than the largest single chain: MAX_POS + 2
        // vertices force a split into exactly two chains, with the
        // first holding MAX_POS members at positions 1..=MAX_POS. The
        // dense-oracle `check` is out of reach here (Θ(|V|²) closures),
        // so assert the split geometry and reachability directly.
        let n = MAX_POS as usize + 2; // 65536
        let mut g = PrecedenceGraph::new();
        let ids: Vec<OpId> = (0..n).map(|i| g.add_op(OpKind::Add, 1, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let idx = ReachIndex::try_build(&g).unwrap();
        assert_eq!(idx.chain_count(), 2, "one split at MAX_POS");
        let first = ids[0].index();
        let boundary = ids[MAX_POS as usize - 1].index(); // last of chain 0
        let after = ids[MAX_POS as usize].index(); // first of chain 1
        let last = ids[n - 1].index();
        assert_eq!(idx.pos_of(boundary) as u32, MAX_POS, "no truncation at the boundary");
        assert_ne!(idx.chain_of(boundary), idx.chain_of(after));
        assert_eq!(idx.pos_of(after), 1, "split chain restarts at position 1");
        // Reachability across the split stays exact in both directions.
        assert!(idx.reaches(first, last));
        assert!(idx.reaches(boundary, after));
        assert!(idx.reaches(first, after));
        assert!(!idx.reaches(after, boundary));
        assert!(!idx.reaches(last, first));
        // Set probes see through the split too.
        let ex = idx.extrema([first]);
        assert!(idx.set_reaches(&ex, last));
        assert!(!idx.set_reached_by(&ex, last));
    }

    #[test]
    fn exactly_full_chain_at_the_u16_limit_probes_both_endpoints() {
        // A path of exactly MAX_POS = 65534 vertices: the largest graph
        // a single chain may cover. The boundary member sits at
        // position 65534 — one below the NO_DOWN sentinel (65535) — so
        // any off-by-one in the extremum/sentinel arithmetic (a split
        // one early, a position colliding with a sentinel, an extremum
        // saturating at the wrong end) shows up here first.
        let n = MAX_POS as usize; // 65534
        let mut g = PrecedenceGraph::new();
        let ids: Vec<OpId> = (0..n).map(|i| g.add_op(OpKind::Add, 1, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let idx = ReachIndex::try_build(&g).unwrap();
        assert_eq!(idx.chain_count(), 1, "an exactly-full path must not split");
        let first = ids[0].index();
        let last = ids[n - 1].index();
        assert_eq!(idx.pos_of(first), 1);
        assert_eq!(idx.pos_of(last) as u32, MAX_POS, "last position is 65534, not a sentinel");
        assert!((idx.pos_of(last)) < NO_DOWN && idx.pos_of(first) > NO_UP);
        // Pair probes at both endpoints, both directions.
        assert!(idx.reaches(first, last));
        assert!(!idx.reaches(last, first));
        assert!(!idx.reaches(first, first), "strict at the head");
        assert!(!idx.reaches(last, last), "strict at the boundary member");
        // Extremum rows at the endpoints: the head's down entry is 2
        // (its first strict descendant), the tail's up entry is 65533.
        assert_eq!(idx.down_row(first)[0], 2);
        assert_eq!(idx.up_row(first)[0], NO_UP);
        assert_eq!(idx.down_row(last)[0], NO_DOWN);
        assert_eq!(idx.up_row(last)[0] as u32, MAX_POS - 1);
        // Set probes with each endpoint as the singleton set: min/max
        // at the saturated position must compare correctly against the
        // sentinels on the far side.
        let head_ex = idx.extrema([first]);
        assert!(idx.set_reaches(&head_ex, last), "head (min = 1) reaches the boundary member");
        assert!(!idx.set_reached_by(&head_ex, last));
        let tail_ex = idx.extrema([last]);
        assert_eq!(tail_ex.min_of(0) as u32, MAX_POS);
        assert_eq!(tail_ex.max_of(0) as u32, MAX_POS);
        assert!(idx.set_reached_by(&tail_ex, first), "head is reached by the boundary member");
        assert!(!idx.set_reaches(&tail_ex, first));
        // One more vertex would split: pin the transition too.
        let next = g.add_op(OpKind::Add, 1, "overflow");
        g.add_edge(ids[n - 1], next).unwrap();
        let mut idx2 = ReachIndex::try_build(&g).unwrap();
        assert_eq!(idx2.chain_count(), 2, "the 65535th member starts a fresh chain");
        assert_eq!(idx2.pos_of(next.index()), 1);
        assert!(idx2.reaches(first, next.index()));
        // And grow() across the boundary agrees with a fresh build.
        let mut grown = ReachIndex::try_build(&{
            let mut base = PrecedenceGraph::new();
            let ids2: Vec<OpId> =
                (0..n).map(|i| base.add_op(OpKind::Add, 1, format!("n{i}"))).collect();
            for w in ids2.windows(2) {
                base.add_edge(w[0], w[1]).unwrap();
            }
            base
        })
        .unwrap();
        grown.try_grow(&g).unwrap();
        assert!(grown.reaches(first, next.index()));
        assert!(!grown.reaches(next.index(), first));
        assert_eq!(grown.pos_of(last) as u32, MAX_POS);
        let _ = idx2.try_grow(&g);
    }

    /// In-module spot checks of the word-parallel kernels; the ragged
    /// tail / saturated-row fuzz lives in `tests/reach_properties.rs`.
    #[test]
    fn word_kernels_agree_with_scalar_oracles_on_edge_rows() {
        use kernels::*;
        let rows: [&[Pos]; 6] = [
            &[],
            &[NO_DOWN; 7],
            &[NO_UP; 7],
            &[1, NO_DOWN, MAX_POS as Pos, 0, 2, 65535, 3],
            &[MAX_POS as Pos; 8],
            &[5, 4, 3, 2, 1, 0, NO_DOWN, 9],
        ];
        for a in rows {
            for b in rows {
                if a.len() != b.len() {
                    continue;
                }
                assert_eq!(any_le(a, b), any_le_scalar(a, b), "{a:?} vs {b:?}");
                let mut d1 = a.to_vec();
                let mut d2 = a.to_vec();
                assert_eq!(min_into(&mut d1, b), min_into_scalar(&mut d2, b));
                assert_eq!(d1, d2, "min {a:?} {b:?}");
                let mut d1 = a.to_vec();
                let mut d2 = a.to_vec();
                assert_eq!(max_into(&mut d1, b), max_into_scalar(&mut d2, b));
                assert_eq!(d1, d2, "max {a:?} {b:?}");
            }
        }
    }

    #[test]
    fn capacity_limits_are_explicit_errors() {
        // The guard itself (a graph this size cannot be materialized).
        assert!(capacity_check(MAX_VERTICES, 1).is_ok());
        let too_many = capacity_check(MAX_VERTICES + 1, 1).unwrap_err();
        assert!(too_many.to_string().contains("chain-id space"), "{too_many}");
        let overflow = capacity_check(MAX_VERTICES, usize::MAX).unwrap_err();
        assert!(overflow.to_string().contains("overflow"), "{overflow}");
        // Ordinary graphs are untouched by the guard.
        let (g, _) = diamond();
        assert!(ReachIndex::try_build(&g).is_ok());
        let mut idx = ReachIndex::try_build(&g).unwrap();
        assert!(idx.try_grow(&g).is_ok(), "no-op grow stays Ok");
    }

    #[test]
    fn probe_rows_encode_set_membership() {
        let (g, [a, b, _c, d]) = diamond();
        let idx = ReachIndex::build(&g);
        // "Does a reach anything in {d}": d's coordinate is at or after
        // a's down entry for d's chain.
        let dc = idx.chain_of(d.index());
        assert!(idx.down_row(a.index())[dc] <= idx.pos_of(d.index()));
        // "Does anything in {a} reach b": a's coordinate is at or
        // before b's up entry for a's chain.
        let ac = idx.chain_of(a.index());
        assert!(idx.up_row(b.index())[ac] >= idx.pos_of(a.index()));
        // Sources have all-NO_UP rows; sinks all-NO_DOWN.
        assert!(idx.up_row(a.index()).iter().all(|&u| u == NO_UP));
        assert!(idx.down_row(d.index()).iter().all(|&x| x == NO_DOWN));
    }
}
