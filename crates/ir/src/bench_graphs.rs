//! The benchmark data-flow graphs used by the paper's evaluation
//! (Section 5, Figure 3) plus the Figure 1 motivating example.
//!
//! The paper does not publish its DFG files; these are reconstructions from
//! the published literature descriptions of the classic HLS benchmark suite
//! (op mixes, dependence shapes, classical delay model `mul = 2`,
//! `add/sub/cmp = 1`). `EXPERIMENTS.md` records where the resulting
//! schedule lengths deviate from the paper's table.
//!
//! Beyond the paper's acyclic set, [`loops`] collects classic *loop
//! kernels* whose edges carry inter-iteration distances ([`mac_loop`],
//! [`fir_loop`], [`iir_biquad`], [`gcd_loop`]) — the loop-pipelining
//! workload of BENCH_4.

use crate::{DelayModel, OpId, OpKind, PrecedenceGraph};

/// The reconstructed Figure 1 example: seven unit-delay operations.
///
/// Edges: `1→2, 2→4, 3→4, 4→6, 5→6, 6→7`. With two universal functional
/// units and threads `{3,4,6,7}` / `{1,2,5}` (artificial edge `2→5`), this
/// reproduces every number quoted in the paper's text: a 5-state soft
/// schedule (Figure 1(e)), 6 states after spilling vertex 3's value
/// (Figure 1(c) scenario), and 5 states after a wire-delay insertion
/// (Figure 1(d) scenario).
#[derive(Clone, Debug)]
pub struct Fig1 {
    /// The dataflow graph of Figure 1(a).
    pub graph: PrecedenceGraph,
    /// Vertices `1..=7` as `v[0..=6]`.
    pub v: [OpId; 7],
}

/// Builds the Figure 1 example graph.
pub fn fig1() -> Fig1 {
    let mut g = PrecedenceGraph::new();
    let v: Vec<OpId> = (1..=7)
        .map(|i| g.add_op(OpKind::Add, 1, format!("{i}")))
        .collect();
    let e = [(1, 2), (2, 4), (3, 4), (4, 6), (5, 6), (6, 7)];
    for (a, b) in e {
        g.add_edge(v[a - 1], v[b - 1]).expect("static edge list is valid");
    }
    Fig1 {
        graph: g,
        v: v.try_into().expect("exactly 7 vertices"),
    }
}

/// The HAL differential-equation benchmark (Paulin & Knight): 11 operations
/// — 6 multiplications, 2 subtractions, 2 additions, 1 comparison.
///
/// Solves one Euler step of `y'' + 3xy' + 3y = 0`:
/// `u' = u − (3x·u·dx) − (3y·dx)`, `y' = y + u·dx`, `x' = x + dx`,
/// loop test `x' < a`.
pub fn hal() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(11);
    let mul = |g: &mut PrecedenceGraph, l: &str| g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), l);
    let m1 = mul(&mut g, "m1=3*x");
    let m2 = mul(&mut g, "m2=u*dx");
    let m3 = mul(&mut g, "m3=3*y");
    let m4 = mul(&mut g, "m4=m1*m2");
    let m5 = mul(&mut g, "m5=m3*dx");
    let m6 = mul(&mut g, "m6=u*dx");
    let s1 = g.add_op(OpKind::Sub, 1, "s1=u-m4");
    let s2 = g.add_op(OpKind::Sub, 1, "s2=s1-m5");
    let a1 = g.add_op(OpKind::Add, 1, "a1=x+dx");
    let a2 = g.add_op(OpKind::Add, 1, "a2=y+m6");
    let c1 = g.add_op(OpKind::Cmp, 1, "c1=a1<a");
    for (u, v) in [
        (m1, m4),
        (m2, m4),
        (m3, m5),
        (m4, s1),
        (s1, s2),
        (m5, s2),
        (m6, a2),
        (a1, c1),
    ] {
        g.add_edge(u, v).expect("static edge list is valid");
    }
    g
}

/// The AR lattice filter benchmark: 28 operations — 16 multiplications and
/// 12 additions in three multiply levels with pairwise accumulation.
pub fn ar() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(28);
    let mul = |g: &mut PrecedenceGraph, l: String| {
        g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), l)
    };
    let add = |g: &mut PrecedenceGraph, l: String| g.add_op(OpKind::Add, 1, l);

    // Level 1: four input products, two pair sums.
    let l1: Vec<OpId> = (1..=4).map(|i| mul(&mut g, format!("m{i}"))).collect();
    let a1 = add(&mut g, "a1".into());
    let a2 = add(&mut g, "a2".into());
    g.add_edge(l1[0], a1).unwrap();
    g.add_edge(l1[1], a1).unwrap();
    g.add_edge(l1[2], a2).unwrap();
    g.add_edge(l1[3], a2).unwrap();

    // Level 2: eight lattice products off the two pair sums, four pair sums.
    let mut l2 = Vec::new();
    for i in 5..=12 {
        let m = mul(&mut g, format!("m{i}"));
        let src = if i % 2 == 1 { a1 } else { a2 };
        g.add_edge(src, m).unwrap();
        l2.push(m);
    }
    let mut l2_sums = Vec::new();
    for (j, pair) in l2.chunks(2).enumerate() {
        let a = add(&mut g, format!("a{}", 3 + j));
        g.add_edge(pair[0], a).unwrap();
        g.add_edge(pair[1], a).unwrap();
        l2_sums.push(a);
    }

    // Level 3: one product per level-2 sum, two pair sums.
    let mut l3 = Vec::new();
    for (j, &src) in l2_sums.iter().enumerate() {
        let m = mul(&mut g, format!("m{}", 13 + j));
        g.add_edge(src, m).unwrap();
        l3.push(m);
    }
    let a7 = add(&mut g, "a7".into());
    let a8 = add(&mut g, "a8".into());
    g.add_edge(l3[0], a7).unwrap();
    g.add_edge(l3[1], a7).unwrap();
    g.add_edge(l3[2], a8).unwrap();
    g.add_edge(l3[3], a8).unwrap();

    // Output accumulation and the filter's independent input updates.
    let a9 = add(&mut g, "a9".into());
    g.add_edge(a7, a9).unwrap();
    g.add_edge(a8, a9).unwrap();
    let a10 = add(&mut g, "a10".into());
    g.add_edge(a9, a10).unwrap();
    add(&mut g, "a11".into());
    add(&mut g, "a12".into());
    g
}

/// The fifth-order elliptic wave filter (EF) benchmark: 34 operations — 26
/// additions and 8 multiplications, dominated by a long adder cascade
/// (critical path 17 under the classical delay model).
pub fn ewf() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(34);
    let mul = |g: &mut PrecedenceGraph, l: &str| g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), l);
    let add = |g: &mut PrecedenceGraph, l: &str| g.add_op(OpKind::Add, 1, l);
    let chain = |g: &mut PrecedenceGraph, from: OpId, to: OpId| g.add_edge(from, to).unwrap();

    // Ladder backbone: input add, 12 cascade adds, two scaling multipliers.
    let t0 = add(&mut g, "t0");
    let a1 = add(&mut g, "a1");
    chain(&mut g, t0, a1);
    let a2 = add(&mut g, "a2");
    chain(&mut g, a1, a2);
    let a3 = add(&mut g, "a3");
    chain(&mut g, a2, a3);
    let m1 = mul(&mut g, "M1");
    chain(&mut g, a3, m1);
    let a4 = add(&mut g, "a4");
    chain(&mut g, m1, a4);
    let a5 = add(&mut g, "a5");
    chain(&mut g, a4, a5);
    let a6 = add(&mut g, "a6");
    chain(&mut g, a5, a6);
    let m2 = mul(&mut g, "M2");
    chain(&mut g, a6, m2);
    let a7 = add(&mut g, "a7");
    chain(&mut g, m2, a7);
    let a8 = add(&mut g, "a8");
    chain(&mut g, a7, a8);
    let a9 = add(&mut g, "a9");
    chain(&mut g, a8, a9);
    let a10 = add(&mut g, "a10");
    chain(&mut g, a9, a10);
    let a11 = add(&mut g, "a11");
    chain(&mut g, a10, a11);
    let a12 = add(&mut g, "a12");
    chain(&mut g, a11, a12);

    // Six side branches (scale-and-correct): mul followed by two adds,
    // reconverging into the backbone further down the cascade.
    let side = |g: &mut PrecedenceGraph, i: usize, src: OpId, dst: OpId| {
        let m = mul(g, &format!("m{i}"));
        g.add_edge(src, m).unwrap();
        let p = add(g, &format!("p{i}"));
        g.add_edge(m, p).unwrap();
        let w = add(g, &format!("w{i}"));
        g.add_edge(p, w).unwrap();
        g.add_edge(w, dst).unwrap();
        w
    };
    side(&mut g, 3, t0, a5);
    side(&mut g, 4, a2, a7);
    side(&mut g, 5, a4, a9);
    side(&mut g, 6, a5, a11);
    side(&mut g, 7, a6, a12);
    let w8 = side(&mut g, 8, a6, a12);
    // Second filter output tap (the 26th addition).
    let out2 = add(&mut g, "out2");
    g.add_edge(w8, out2).unwrap();
    g.add_edge(a10, out2).unwrap();
    g
}

/// An 8-tap FIR filter: 8 coefficient multiplications feeding a balanced
/// 7-addition reduction tree (15 operations).
pub fn fir() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(15);
    let taps: Vec<OpId> = (1..=8)
        .map(|i| g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), format!("m{i}")))
        .collect();
    let mut level = taps;
    let mut next_add = 1;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            let a = g.add_op(OpKind::Add, 1, format!("a{next_add}"));
            next_add += 1;
            g.add_edge(pair[0], a).unwrap();
            g.add_edge(pair[1], a).unwrap();
            next.push(a);
        }
        level = next;
    }
    g
}

/// All four Figure 3 benchmarks, in the paper's row order.
pub fn all() -> Vec<(&'static str, PrecedenceGraph)> {
    vec![("HAL", hal()), ("AR", ar()), ("EF", ewf()), ("FIR", fir())]
}

// ---------------------------------------------------------------------
// Loop kernels (positive-distance edges; scheduled by the modulo
// scheduler, `threaded_sched::ModuloScheduler`).
// ---------------------------------------------------------------------

/// Dot-product / MAC loop: `s += a[i] * b[i]` — two loads feed a
/// multiply feeding the accumulator add, which recurs on itself at
/// distance 1. The archetypal memory-bound kernel: RecMII is 1 (the
/// 1-cycle add), so the achievable II is set by the memory ports.
pub fn mac_loop() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(4);
    let la = g.add_op(OpKind::Load, dm.delay_of(OpKind::Load), "ld_a");
    let lb = g.add_op(OpKind::Load, dm.delay_of(OpKind::Load), "ld_b");
    let m = g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), "mul");
    let acc = g.add_op(OpKind::Add, dm.delay_of(OpKind::Add), "acc");
    g.add_edge(la, m).unwrap();
    g.add_edge(lb, m).unwrap();
    g.add_edge(m, acc).unwrap();
    g.add_dep_edge(acc, acc, 1).unwrap();
    g
}

/// A `taps`-tap transposed FIR loop: the sample delay line is a chain
/// of register moves carried across iterations (`x[n-k]` edges at
/// distance 1), each tap multiplies its coefficient, and an adder
/// chain folds the products. No recurrence cycle — RecMII stays 1 —
/// so the kernel isolates the *resource* side of the MII bound
/// (multipliers and the memory port).
///
/// # Panics
///
/// Panics if `taps < 2`.
pub fn fir_loop(taps: usize) -> PrecedenceGraph {
    assert!(taps >= 2, "a FIR needs at least two taps");
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(3 * taps);
    let x = g.add_op(OpKind::Load, dm.delay_of(OpKind::Load), "x");
    // Delay line: tap k holds x[n-k].
    let mut line = Vec::with_capacity(taps);
    line.push(x);
    for k in 1..taps {
        let t = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), format!("z{k}"));
        g.add_dep_edge(line[k - 1], t, 1).unwrap();
        line.push(t);
    }
    // Coefficient products and the folding adder chain.
    let mut sum: Option<OpId> = None;
    for (k, &t) in line.iter().enumerate() {
        let m = g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), format!("m{k}"));
        g.add_edge(t, m).unwrap();
        sum = Some(match sum {
            None => m,
            Some(s) => {
                let a = g.add_op(OpKind::Add, dm.delay_of(OpKind::Add), format!("s{k}"));
                g.add_edge(s, a).unwrap();
                g.add_edge(m, a).unwrap();
                a
            }
        });
    }
    g
}

/// A direct-form-II IIR biquad: `y[n] = b0·x + b1·x[n-1] + b2·x[n-2]
/// − a1·y[n-1] − a2·y[n-2]`. The feedback taps close true recurrence
/// cycles (`y → y[n-1] → a1-product → subtract → y` at distance 1),
/// so RecMII — 5 under the classic delay model — dominates any
/// reasonable allocation: the latency-bound counterpart to
/// [`fir_loop`].
pub fn iir_biquad() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mul = dm.delay_of(OpKind::Mul);
    let mut g = PrecedenceGraph::with_capacity(13);
    let x = g.add_op(OpKind::Load, dm.delay_of(OpKind::Load), "x");
    let x1 = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "x1");
    let x2 = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "x2");
    g.add_dep_edge(x, x1, 1).unwrap();
    g.add_dep_edge(x1, x2, 1).unwrap();
    let m0 = g.add_op(OpKind::Mul, mul, "b0x");
    let m1 = g.add_op(OpKind::Mul, mul, "b1x1");
    let m2 = g.add_op(OpKind::Mul, mul, "b2x2");
    g.add_edge(x, m0).unwrap();
    g.add_edge(x1, m1).unwrap();
    g.add_edge(x2, m2).unwrap();
    let y1 = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "y1");
    let y2 = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "y2");
    let ma1 = g.add_op(OpKind::Mul, mul, "a1y1");
    let ma2 = g.add_op(OpKind::Mul, mul, "a2y2");
    g.add_edge(y1, ma1).unwrap();
    g.add_edge(y2, ma2).unwrap();
    let add1 = g.add_op(OpKind::Add, 1, "fwd1");
    let add2 = g.add_op(OpKind::Add, 1, "fwd2");
    g.add_edge(m0, add1).unwrap();
    g.add_edge(m1, add1).unwrap();
    g.add_edge(add1, add2).unwrap();
    g.add_edge(m2, add2).unwrap();
    let sub1 = g.add_op(OpKind::Sub, 1, "fb1");
    let y = g.add_op(OpKind::Sub, 1, "y");
    g.add_edge(add2, sub1).unwrap();
    g.add_edge(ma1, sub1).unwrap();
    g.add_edge(sub1, y).unwrap();
    g.add_edge(ma2, y).unwrap();
    // Feedback taps: next iteration's y1 is this iteration's y.
    g.add_dep_edge(y, y1, 1).unwrap();
    g.add_dep_edge(y1, y2, 1).unwrap();
    g
}

/// A GCD-style data-dependent recurrence: compare and subtract the
/// running pair, the subtract result becoming next iteration's
/// operand (`a' = a − b` at distance 1, with the pair swap riding a
/// second distance-1 move edge). A tiny, control-flavoured kernel
/// whose 2-op recurrence cycle gives RecMII 2 under unit ALU delays.
pub fn gcd_loop() -> PrecedenceGraph {
    let dm = DelayModel::classic();
    let mut g = PrecedenceGraph::with_capacity(4);
    let ma = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "a");
    let mb = g.add_op(OpKind::Move, dm.delay_of(OpKind::Move), "b");
    let c = g.add_op(OpKind::Cmp, dm.delay_of(OpKind::Cmp), "a<b");
    let s = g.add_op(OpKind::Sub, dm.delay_of(OpKind::Sub), "a-b");
    g.add_edge(ma, c).unwrap();
    g.add_edge(mb, c).unwrap();
    g.add_edge(ma, s).unwrap();
    g.add_edge(mb, s).unwrap();
    // Next iteration: a' = a − b, b' = old a (Euclid with a swap).
    g.add_dep_edge(s, ma, 1).unwrap();
    g.add_dep_edge(ma, mb, 1).unwrap();
    g
}

/// The classic loop-pipelining kernels: a memory-bound MAC, a
/// resource-bound FIR, the latency-bound IIR biquad and the
/// control-flavoured GCD recurrence.
pub fn loops() -> Vec<(&'static str, PrecedenceGraph)> {
    vec![
        ("MAC", mac_loop()),
        ("FIR8", fir_loop(8)),
        ("BIQUAD", iir_biquad()),
        ("GCD", gcd_loop()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    fn count(g: &PrecedenceGraph, kind: OpKind) -> usize {
        g.op_ids().filter(|&v| g.kind(v) == kind).count()
    }

    #[test]
    fn fig1_matches_the_reconstruction() {
        let f = fig1();
        assert_eq!(f.graph.len(), 7);
        assert_eq!(f.graph.edge_count(), 6);
        assert!(f.graph.validate().is_ok());
        // Unit delays; diameter = critical path 1,2,4,6,7 = 5 states.
        assert_eq!(algo::diameter(&f.graph), 5);
        // Vertex 5 is a source; vertex 3 is a source.
        assert!(f.graph.preds(f.v[4]).is_empty());
        assert!(f.graph.preds(f.v[2]).is_empty());
    }

    #[test]
    fn hal_has_the_published_op_mix() {
        let g = hal();
        assert_eq!(g.len(), 11);
        assert_eq!(count(&g, OpKind::Mul), 6);
        assert_eq!(count(&g, OpKind::Add), 2);
        assert_eq!(count(&g, OpKind::Sub), 2);
        assert_eq!(count(&g, OpKind::Cmp), 1);
        assert!(g.validate().is_ok());
        // Critical path: m1/m2 (2) -> m4 (2) -> s1 (1) -> s2 (1).
        assert_eq!(algo::diameter(&g), 6);
    }

    #[test]
    fn ar_has_the_published_op_mix() {
        let g = ar();
        assert_eq!(g.len(), 28);
        assert_eq!(count(&g, OpKind::Mul), 16);
        assert_eq!(count(&g, OpKind::Add), 12);
        assert!(g.validate().is_ok());
        // m(2) a(1) m(2) a(1) m(2) a(1) + output accumulate a(1)+a(1) = 11.
        assert_eq!(algo::diameter(&g), 11);
    }

    #[test]
    fn ewf_has_the_published_op_mix() {
        let g = ewf();
        assert_eq!(g.len(), 34);
        assert_eq!(count(&g, OpKind::Mul), 8);
        assert_eq!(count(&g, OpKind::Add), 26);
        assert!(g.validate().is_ok());
        // The cascade dominates: 13 adds and 2 muls on the critical path.
        assert_eq!(algo::diameter(&g), 17);
    }

    #[test]
    fn fir_has_the_published_op_mix() {
        let g = fir();
        assert_eq!(g.len(), 15);
        assert_eq!(count(&g, OpKind::Mul), 8);
        assert_eq!(count(&g, OpKind::Add), 7);
        assert!(g.validate().is_ok());
        // mul (2) + three tree levels (3).
        assert_eq!(algo::diameter(&g), 5);
    }

    #[test]
    fn all_returns_the_four_figure3_rows() {
        let rows = all();
        let names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["HAL", "AR", "EF", "FIR"]);
        for (_, g) in &rows {
            assert!(g.validate().is_ok());
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn loop_kernels_are_valid_kernels_with_loop_edges() {
        for (name, g) in loops() {
            assert!(g.has_loop_edges(), "{name} must carry a loop edge");
            assert!(g.validate_kernel().is_ok(), "{name} kernel DAG cyclic");
            assert!(g.kernel_dag().validate().is_ok(), "{name}");
        }
    }

    #[test]
    fn mac_and_gcd_close_recurrence_cycles() {
        // The MAC accumulator recurs on itself; the flat graph is
        // cyclic while the kernel is not.
        let mac = mac_loop();
        assert!(mac.validate().is_err());
        assert!(mac.validate_kernel().is_ok());
        let gcd = gcd_loop();
        assert!(gcd.validate().is_err());
        assert_eq!(gcd.len(), 4);
    }

    #[test]
    fn fir_loop_shape_scales_with_taps() {
        let g = fir_loop(8);
        assert_eq!(count(&g, OpKind::Mul), 8);
        assert_eq!(count(&g, OpKind::Add), 7);
        assert_eq!(count(&g, OpKind::Move), 7);
        // The delay line is loop-carried but acyclic: distances only
        // push values forward in time.
        assert!(g.has_loop_edges());
        assert!(g.validate_kernel().is_ok());
    }

    #[test]
    fn biquad_mixes_feedforward_and_feedback_taps() {
        let g = iir_biquad();
        assert_eq!(count(&g, OpKind::Mul), 5);
        assert_eq!(g.max_distance(), 1);
        assert!(g.validate().is_err(), "feedback closes a cycle");
        assert!(g.validate_kernel().is_ok());
    }
}
