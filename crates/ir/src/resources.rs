//! Resource (functional-unit) allocations.
//!
//! A [`ResourceSet`] describes the datapath's functional-unit instances.
//! In the threaded scheduler each unit becomes one *thread*; in the list
//! scheduler each unit is a slot that an operation can occupy for its
//! delay. The paper's experiments use allocations written like `2+/- 2*`
//! (two ALUs, two multipliers); [`ResourceSet::classic`] builds those.

use crate::{OpKind, ResourceClass};
use std::fmt;

/// A fixed allocation of functional-unit instances.
///
/// Units are indexed `0..k()`. A *uniform* set (built by
/// [`ResourceSet::uniform`]) models the paper's simplifying assumption
/// that "each functional unit can implement all the operations"; a typed
/// set restricts each unit to the operations of its [`ResourceClass`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResourceSet {
    units: Vec<Option<ResourceClass>>,
}

impl ResourceSet {
    /// Creates an empty allocation; add units with [`ResourceSet::with`].
    pub fn new() -> Self {
        ResourceSet { units: Vec::new() }
    }

    /// Creates `k` universal units (any operation can run on any unit).
    pub fn uniform(k: usize) -> Self {
        ResourceSet {
            units: vec![None; k],
        }
    }

    /// The paper's Figure 3 style allocation: `alus` ALUs plus `muls`
    /// multipliers.
    pub fn classic(alus: usize, muls: usize) -> Self {
        ResourceSet::new()
            .with(ResourceClass::Alu, alus)
            .with(ResourceClass::Multiplier, muls)
    }

    /// Adds `count` units of `class` (builder style).
    #[must_use]
    pub fn with(mut self, class: ResourceClass, count: usize) -> Self {
        for _ in 0..count {
            self.units.push(Some(class));
        }
        self
    }

    /// Number of functional-unit instances.
    pub fn k(&self) -> usize {
        self.units.len()
    }

    /// `true` if no units were allocated.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The class of unit `i`, or `None` for a universal unit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.k()`.
    pub fn class(&self, i: usize) -> Option<ResourceClass> {
        self.units[i]
    }

    /// `true` if operation kind `kind` may execute on unit `i`.
    ///
    /// Zero-resource kinds ([`ResourceClass::Wire`]) are compatible with
    /// no unit — they never occupy one.
    pub fn compatible(&self, i: usize, kind: OpKind) -> bool {
        let need = kind.resource_class();
        if need == ResourceClass::Wire {
            return false;
        }
        match self.units[i] {
            None => true,
            Some(class) => class == need,
        }
    }

    /// Indices of the units able to execute `kind`.
    pub fn compatible_units(&self, kind: OpKind) -> Vec<usize> {
        (0..self.k()).filter(|&i| self.compatible(i, kind)).collect()
    }

    /// Number of units of the given class (universal units match all).
    pub fn count_of(&self, class: ResourceClass) -> usize {
        self.units
            .iter()
            .filter(|u| u.is_none() || **u == Some(class))
            .count()
    }
}

impl Default for ResourceSet {
    fn default() -> Self {
        ResourceSet::new()
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut groups: Vec<(Option<ResourceClass>, usize)> = Vec::new();
        for &u in &self.units {
            match groups.iter_mut().find(|(c, _)| *c == u) {
                Some((_, n)) => *n += 1,
                None => groups.push((u, 1)),
            }
        }
        let mut first = true;
        for (c, n) in groups {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match c {
                Some(class) => write!(f, "{n} {class}")?,
                None => write!(f, "{n} ANY")?,
            }
        }
        if first {
            write!(f, "(no units)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_builds_typed_units() {
        let r = ResourceSet::classic(2, 1);
        assert_eq!(r.k(), 3);
        assert_eq!(r.class(0), Some(ResourceClass::Alu));
        assert_eq!(r.class(2), Some(ResourceClass::Multiplier));
        assert_eq!(r.count_of(ResourceClass::Alu), 2);
        assert_eq!(r.count_of(ResourceClass::Multiplier), 1);
    }

    #[test]
    fn uniform_units_accept_everything_but_wire() {
        let r = ResourceSet::uniform(2);
        assert!(r.compatible(0, OpKind::Mul));
        assert!(r.compatible(1, OpKind::Add));
        assert!(r.compatible(0, OpKind::Load));
        assert!(!r.compatible(0, OpKind::WireDelay));
        assert!(!r.compatible(0, OpKind::Phi));
    }

    #[test]
    fn typed_units_enforce_class() {
        let r = ResourceSet::classic(1, 1);
        assert!(r.compatible(0, OpKind::Add));
        assert!(r.compatible(0, OpKind::Sub));
        assert!(r.compatible(0, OpKind::Cmp));
        assert!(!r.compatible(0, OpKind::Mul));
        assert!(r.compatible(1, OpKind::Mul));
        assert!(!r.compatible(1, OpKind::Add));
        assert_eq!(r.compatible_units(OpKind::Mul), vec![1]);
    }

    #[test]
    fn memory_ports_serve_loads_and_stores() {
        let r = ResourceSet::classic(1, 1).with(ResourceClass::MemPort, 1);
        assert_eq!(r.compatible_units(OpKind::Load), vec![2]);
        assert_eq!(r.compatible_units(OpKind::Store), vec![2]);
    }

    #[test]
    fn display_groups_units() {
        assert_eq!(ResourceSet::classic(2, 2).to_string(), "2 ALU, 2 MUL");
        assert_eq!(ResourceSet::uniform(3).to_string(), "3 ANY");
        assert_eq!(ResourceSet::new().to_string(), "(no units)");
    }

    #[test]
    fn empty_set_has_no_compatible_units() {
        let r = ResourceSet::new();
        assert!(r.is_empty());
        assert!(r.compatible_units(OpKind::Add).is_empty());
    }
}
