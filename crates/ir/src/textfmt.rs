//! A line-oriented text format for precedence graphs (`.dfg`).
//!
//! Lets users ship their own workloads to the schedulers and lets the
//! benchmark DFGs be inspected/diffed as text. Format:
//!
//! ```text
//! # comment
//! op <id> <kind> <delay> <label>
//! edge <from> <to> [distance]
//! operand <id> op:<id> | const:<int> | in:<name>
//! ```
//!
//! `edge` takes an optional inter-iteration distance (omitted and `0`
//! both mean an intra-iteration dependence); loop kernels round-trip
//! with their carried edges intact.
//!
//! Ids are dense indices in declaration order; `kind` uses the
//! mnemonics of [`OpKind`] plus names (`add`, `mul`, ...).
//!
//! This is the untrusted-input boundary of the workspace: arbitrary
//! bytes may arrive here, so the parse path is panic-free by policy
//! (enforced by the `unwrap_used`/`expect_used` lint gate below and the
//! seeded byte-mutation fuzz test) and every error carries 1-based
//! line *and column* context.

// Hardened-module policy: the parse path must return ParseDfgError,
// never panic, on any input.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::{IrError, OpId, OpKind, Operand, PrecedenceGraph};
use std::error::Error;
use std::fmt;

/// Parse errors with 1-based line and column context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseDfgError {
    /// 1-based source line (0 for whole-input errors, e.g. final
    /// graph validation).
    pub line: usize,
    /// 1-based byte column of the offending token (0 when the error
    /// has no single column, e.g. whole-input errors).
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(f, "dfg parse error at line {}:{}: {}", self.line, self.col, self.msg)
        } else {
            write!(f, "dfg parse error at line {}: {}", self.line, self.msg)
        }
    }
}

impl Error for ParseDfgError {}

fn kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Cmp => "cmp",
        OpKind::Shl => "shl",
        OpKind::Logic => "logic",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Move => "move",
        OpKind::Phi => "phi",
        OpKind::WireDelay => "wire",
        OpKind::Nop => "nop",
    }
}

fn kind_from(name: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|&k| kind_name(k) == name)
}

/// Serializes a graph to the text format.
pub fn to_text(g: &PrecedenceGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# soft-hls dfg: {} ops, {} edges", g.len(), g.edge_count());
    for v in g.op_ids() {
        let _ = writeln!(
            out,
            "op {} {} {} {}",
            v.index(),
            kind_name(g.kind(v)),
            g.delay(v),
            g.label(v)
        );
    }
    for (a, b, d) in g.edges_dist() {
        if d == 0 {
            let _ = writeln!(out, "edge {} {}", a.index(), b.index());
        } else {
            let _ = writeln!(out, "edge {} {} {}", a.index(), b.index(), d);
        }
    }
    for v in g.op_ids() {
        for operand in g.operands(v) {
            let spec = match operand {
                Operand::Op(p) => format!("op:{}", p.index()),
                Operand::Const(c) => format!("const:{c}"),
                Operand::Input(n) => format!("in:{n}"),
            };
            let _ = writeln!(out, "operand {} {}", v.index(), spec);
        }
    }
    out
}

/// A whitespace-separated token with its 1-based byte column.
#[derive(Clone, Copy)]
struct Token<'a> {
    col: usize,
    text: &'a str,
}

/// Splits a raw line into tokens carrying their source columns (the
/// subslices of `split_whitespace` give their offsets for free).
fn tokens(raw: &str) -> impl Iterator<Item = Token<'_>> {
    raw.split_whitespace().map(move |tok| Token {
        col: tok.as_ptr() as usize - raw.as_ptr() as usize + 1,
        text: tok,
    })
}

/// Structural capacity limits for parsing untrusted input.
///
/// A serving daemon cannot let one request allocate without bound, so
/// the parser can enforce hard ceilings *while* parsing — the error
/// carries the position where the limit was crossed, not a generic
/// failure after the damage is done. [`Limits::UNBOUNDED`] (what
/// [`from_text`] uses) disables every check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Maximum input size in bytes; blamed at the byte where the limit
    /// is crossed.
    pub max_bytes: usize,
    /// Maximum number of `op` declarations.
    pub max_ops: usize,
    /// Maximum number of `edge` declarations.
    pub max_edges: usize,
}

impl Limits {
    /// No limits (trusted input).
    pub const UNBOUNDED: Limits = Limits {
        max_bytes: usize::MAX,
        max_ops: usize::MAX,
        max_edges: usize::MAX,
    };

    /// Defaults for a network-facing parser: 4 MiB of text, 200k ops,
    /// 2M edges — far above any legitimate workload in this repo, far
    /// below an allocation bomb.
    pub fn serving() -> Limits {
        Limits {
            max_bytes: 4 << 20,
            max_ops: 200_000,
            max_edges: 2_000_000,
        }
    }
}

/// The 1-based (line, col) of byte `offset` in `text`, for blaming a
/// size-limit crossing on a real position.
fn position_of(text: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(text.len());
    let before = &text.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + before.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

/// Parses the text format back into a graph, with no capacity limits
/// ([`from_text_limited`] with [`Limits::UNBOUNDED`]).
///
/// This is the untrusted boundary: any byte sequence (lossily decoded
/// to `&str`) must yield `Ok` or a typed error, never a panic — the
/// seeded fuzz test below holds the parser to that.
///
/// # Errors
///
/// Returns [`ParseDfgError`] (with line/column context) on malformed
/// lines, unknown kinds or directives, out-of-order ids, invalid
/// edges, or operand references to undeclared ops.
pub fn from_text(text: &str) -> Result<PrecedenceGraph, ParseDfgError> {
    from_text_limited(text, &Limits::UNBOUNDED)
}

/// Parses the text format back into a graph, rejecting input that
/// crosses the given [`Limits`] with a positioned error.
///
/// # Errors
///
/// Everything [`from_text`] rejects, plus `input exceeds N bytes` /
/// `op limit exceeded` / `edge limit exceeded`, each blamed at the
/// line and column where the limit was crossed.
pub fn from_text_limited(text: &str, limits: &Limits) -> Result<PrecedenceGraph, ParseDfgError> {
    if text.len() > limits.max_bytes {
        let (line, col) = position_of(text, limits.max_bytes);
        return Err(ParseDfgError {
            line,
            col,
            msg: format!(
                "input exceeds {} bytes ({} received)",
                limits.max_bytes,
                text.len()
            ),
        });
    }
    let mut g = PrecedenceGraph::new();
    // Deferred so `op:` references may point forward; each remembers
    // its source position for the post-pass check.
    let mut operands: Vec<(OpId, Operand, usize, usize)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Column to blame when a token is missing entirely.
        let end_col = raw.trim_end().len() + 1;
        let err = |col: usize, msg: String| ParseDfgError { line: lineno, col, msg };
        let mut parts = tokens(raw);
        let Some(directive) = parts.next() else { continue };
        match directive.text {
            "op" => {
                if g.len() >= limits.max_ops {
                    return Err(err(
                        directive.col,
                        format!("op limit exceeded (max {})", limits.max_ops),
                    ));
                }
                let id_tok = parts.next();
                let id: usize = parse_field(id_tok, "id", lineno, end_col)?;
                if id != g.len() {
                    let col = id_tok.map_or(end_col, |t| t.col);
                    return Err(err(col, format!("op id {id} out of order (expected {})", g.len())));
                }
                let kind_tok = parts.next().ok_or_else(|| err(end_col, "missing kind".into()))?;
                let kind = kind_from(kind_tok.text)
                    .ok_or_else(|| err(kind_tok.col, format!("unknown kind `{}`", kind_tok.text)))?;
                let delay: u64 = parse_field(parts.next(), "delay", lineno, end_col)?;
                let label = parts.map(|t| t.text).collect::<Vec<_>>().join(" ");
                g.add_op(kind, delay, if label.is_empty() { format!("v{id}") } else { label });
            }
            "edge" => {
                if g.edge_count() >= limits.max_edges {
                    return Err(err(
                        directive.col,
                        format!("edge limit exceeded (max {})", limits.max_edges),
                    ));
                }
                let a_tok = parts.next();
                let a: usize = parse_field(a_tok, "from", lineno, end_col)?;
                let b: usize = parse_field(parts.next(), "to", lineno, end_col)?;
                // Optional carried distance; absent means 0
                // (intra-iteration).
                let dist: u32 = match parts.next() {
                    Some(tok) => tok.text.parse().map_err(|_| {
                        err(tok.col, format!("bad distance `{}`", tok.text))
                    })?,
                    None => 0,
                };
                g.add_dep_edge(OpId::from_index(a), OpId::from_index(b), dist)
                    .map_err(|e: IrError| err(a_tok.map_or(end_col, |t| t.col), e.to_string()))?;
            }
            "operand" => {
                let id_tok = parts.next();
                let id: usize = parse_field(id_tok, "id", lineno, end_col)?;
                if id >= g.len() {
                    let col = id_tok.map_or(end_col, |t| t.col);
                    return Err(err(col, format!("operand for unknown op {id}")));
                }
                let spec = parts.next().ok_or_else(|| err(end_col, "missing operand spec".into()))?;
                let operand = if let Some(p) = spec.text.strip_prefix("op:") {
                    let p: usize = p
                        .parse()
                        .map_err(|_| err(spec.col, format!("bad op ref `{}`", spec.text)))?;
                    Operand::Op(OpId::from_index(p))
                } else if let Some(c) = spec.text.strip_prefix("const:") {
                    let c: i64 = c
                        .parse()
                        .map_err(|_| err(spec.col, format!("bad const `{}`", spec.text)))?;
                    Operand::Const(c)
                } else if let Some(n) = spec.text.strip_prefix("in:") {
                    Operand::Input(n.to_string())
                } else {
                    return Err(err(spec.col, format!("unknown operand spec `{}`", spec.text)));
                };
                operands.push((OpId::from_index(id), operand, lineno, spec.col));
            }
            other => return Err(err(directive.col, format!("unknown directive `{other}`"))),
        }
    }
    // Attach operands after all ops exist; `op:` references must name
    // a declared op or downstream consumers would index out of bounds.
    let mut per_op: Vec<Vec<Operand>> = vec![Vec::new(); g.len()];
    for (v, operand, line, col) in operands {
        if let Operand::Op(p) = &operand {
            if p.index() >= g.len() {
                return Err(ParseDfgError {
                    line,
                    col,
                    msg: format!("operand references unknown op {}", p.index()),
                });
            }
        }
        per_op[v.index()].push(operand);
    }
    for (i, ops) in per_op.into_iter().enumerate() {
        if !ops.is_empty() {
            g.set_operands(OpId::from_index(i), ops);
        }
    }
    // A behavior with carried (positive-distance) edges is a loop
    // kernel: cycles are legal exactly when every one passes through a
    // carried edge. Plain DAG validation would misreject them.
    if g.has_loop_edges() {
        g.validate_kernel()
    } else {
        g.validate()
    }
    .map_err(|e| ParseDfgError { line: 0, col: 0, msg: e.to_string() })?;
    Ok(g)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<Token<'_>>,
    what: &str,
    line: usize,
    end_col: usize,
) -> Result<T, ParseDfgError> {
    let tok = field.ok_or_else(|| ParseDfgError {
        line,
        col: end_col,
        msg: format!("missing {what}"),
    })?;
    tok.text.parse().map_err(|_| ParseDfgError {
        line,
        col: tok.col,
        msg: format!("bad {what} `{}`", tok.text),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_graphs, sim_operands};

    #[test]
    fn roundtrip_preserves_all_benchmarks() {
        for (name, mut g) in bench_graphs::all() {
            sim_operands::infer(&mut g);
            let text = to_text(&g);
            let back = from_text(&text).unwrap();
            assert_eq!(back.len(), g.len(), "{name}");
            assert_eq!(
                back.edges().collect::<Vec<_>>(),
                g.edges().collect::<Vec<_>>(),
                "{name}"
            );
            for v in g.op_ids() {
                assert_eq!(back.kind(v), g.kind(v));
                assert_eq!(back.delay(v), g.delay(v));
                assert_eq!(back.label(v), g.label(v));
                assert_eq!(back.operands(v), g.operands(v));
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = from_text("# hello\n\nop 0 add 1 a\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("op 0 add 1 a\nbogus 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("op 3 add 1 a\n").unwrap_err();
        assert!(err.msg.contains("out of order"));
        let err = from_text("op 0 quux 1 a\n").unwrap_err();
        assert!(err.msg.contains("unknown kind"));
        let err = from_text("op 0 add 1 a\nedge 0 7\n").unwrap_err();
        assert!(err.msg.contains("unknown operation"));
    }

    #[test]
    fn cyclic_text_is_rejected() {
        let text = "op 0 add 1 a\nop 1 add 1 b\nedge 0 1\nedge 1 0\n";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("cycle"));
    }

    #[test]
    fn errors_carry_columns() {
        // `quux` starts at byte 6 of "op 0 quux 1 a".
        let err = from_text("op 0 quux 1 a\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 6));
        assert!(err.to_string().contains("1:6"), "{err}");
        // Missing delay: blamed on the end of the line.
        let err = from_text("op 0 add\n").unwrap_err();
        assert_eq!((err.line, err.col), (1, 9));
        // Bad numeric field: blamed on the token, with the token in
        // the message.
        let err = from_text("op 0 add banana a\n").unwrap_err();
        assert_eq!(err.col, 10);
        assert!(err.msg.contains("banana"), "{err}");
        // Indentation shifts columns (they are raw-line offsets).
        let err = from_text("   bogus\n").unwrap_err();
        assert_eq!(err.col, 4);
    }

    #[test]
    fn operand_refs_to_undeclared_ops_are_rejected() {
        // Forward references to declared ops are fine...
        let ok = from_text("op 0 add 1 a\nop 1 add 1 b\noperand 0 op:1\n");
        assert!(ok.is_ok());
        // ...references past the graph are a typed error, not a latent
        // out-of-bounds index for downstream consumers.
        let err = from_text("op 0 add 1 a\noperand 0 op:7\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unknown op 7"), "{err}");
    }

    #[test]
    fn mutated_bench_corpus_never_panics_the_parser() {
        // Seeded in-tree fuzz: byte-level mutations of every benchmark
        // graph's serialization must parse to Ok or Err — never panic.
        // The seed base is overridable so CI can sweep several.
        let base: u64 = std::env::var("TEXTFMT_FUZZ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let mut trials = 0u32;
        for (_name, mut g) in bench_graphs::all() {
            sim_operands::infer(&mut g);
            let text = to_text(&g);
            for round in 0..64u64 {
                let mutated = crate::faultinject::mutate_bytes(
                    base.wrapping_mul(0x1000_0001).wrapping_add(round),
                    text.as_bytes(),
                );
                let decoded = String::from_utf8_lossy(&mutated);
                let _ = from_text(&decoded); // Ok or Err both fine
                trials += 1;
            }
        }
        assert!(trials >= 256, "corpus shrank: only {trials} trials");
    }

    #[test]
    fn carried_distance_edges_roundtrip() {
        for (name, g) in bench_graphs::loops() {
            let text = to_text(&g);
            let back = from_text(&text).unwrap();
            let mut want: Vec<_> = g.edges_dist().collect();
            let mut got: Vec<_> = back.edges_dist().collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "{name}");
        }
    }

    #[test]
    fn bad_distance_is_a_positioned_error() {
        let err = from_text("op 0 add 1 a\nop 1 add 1 b\nedge 0 1 banana\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("banana"), "{err}");
    }

    #[test]
    fn distance_zero_cycles_are_still_rejected() {
        // A dist-0 cycle is illegal even in a kernel that also has
        // carried edges.
        let text = "op 0 add 1 a\nop 1 add 1 b\nedge 0 1\nedge 1 0\nedge 1 1 1\n";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("cycle"), "{err}");
    }

    #[test]
    fn oversized_input_is_rejected_at_the_crossing_byte() {
        let limits = Limits {
            max_bytes: 20,
            ..Limits::serving()
        };
        let text = "op 0 add 1 a\nop 1 add 1 b\nedge 0 1\n";
        let err = from_text_limited(text, &limits).unwrap_err();
        assert!(err.msg.contains("exceeds 20 bytes"), "{err}");
        // Byte 20 is inside line 2.
        assert_eq!(err.line, 2);
        assert!(err.col > 0);
        // Under the limit, the same text parses.
        assert!(from_text_limited(text, &Limits::serving()).is_ok());
    }

    #[test]
    fn op_and_edge_limits_are_positioned_errors() {
        let limits = Limits {
            max_ops: 2,
            max_edges: 1,
            ..Limits::UNBOUNDED
        };
        let err =
            from_text_limited("op 0 add 1 a\nop 1 add 1 b\nop 2 add 1 c\n", &limits).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("op limit exceeded"), "{err}");
        let err = from_text_limited(
            "op 0 add 1 a\nop 1 add 1 b\nop 2 add 1 c\nedge 0 1\nedge 1 2\n",
            &Limits { max_ops: 8, ..limits },
        )
        .unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.msg.contains("edge limit exceeded"), "{err}");
    }

    #[test]
    fn operand_specs_roundtrip() {
        let text = "op 0 add 1 a\nop 1 sub 1 b\nedge 0 1\noperand 1 op:0\noperand 1 const:-5\noperand 0 in:x\noperand 0 const:2\n";
        let g = from_text(text).unwrap();
        assert_eq!(
            g.operands(OpId::from_index(1)),
            &[Operand::Op(OpId::from_index(0)), Operand::Const(-5)]
        );
        assert_eq!(
            g.operands(OpId::from_index(0)),
            &[Operand::Input("x".into()), Operand::Const(2)]
        );
    }
}
