//! A line-oriented text format for precedence graphs (`.dfg`).
//!
//! Lets users ship their own workloads to the schedulers and lets the
//! benchmark DFGs be inspected/diffed as text. Format:
//!
//! ```text
//! # comment
//! op <id> <kind> <delay> <label>
//! edge <from> <to>
//! operand <id> op:<id> | const:<int> | in:<name>
//! ```
//!
//! Ids are dense indices in declaration order; `kind` uses the
//! mnemonics of [`OpKind`] plus names (`add`, `mul`, ...).

use crate::{IrError, OpId, OpKind, Operand, PrecedenceGraph};
use std::error::Error;
use std::fmt;

/// Parse errors with 1-based line numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseDfgError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dfg parse error at line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseDfgError {}

fn kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Cmp => "cmp",
        OpKind::Shl => "shl",
        OpKind::Logic => "logic",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Move => "move",
        OpKind::Phi => "phi",
        OpKind::WireDelay => "wire",
        OpKind::Nop => "nop",
    }
}

fn kind_from(name: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|&k| kind_name(k) == name)
}

/// Serializes a graph to the text format.
pub fn to_text(g: &PrecedenceGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# soft-hls dfg: {} ops, {} edges", g.len(), g.edge_count());
    for v in g.op_ids() {
        let _ = writeln!(
            out,
            "op {} {} {} {}",
            v.index(),
            kind_name(g.kind(v)),
            g.delay(v),
            g.label(v)
        );
    }
    for (a, b) in g.edges() {
        let _ = writeln!(out, "edge {} {}", a.index(), b.index());
    }
    for v in g.op_ids() {
        for operand in g.operands(v) {
            let spec = match operand {
                Operand::Op(p) => format!("op:{}", p.index()),
                Operand::Const(c) => format!("const:{c}"),
                Operand::Input(n) => format!("in:{n}"),
            };
            let _ = writeln!(out, "operand {} {}", v.index(), spec);
        }
    }
    out
}

/// Parses the text format back into a graph.
///
/// # Errors
///
/// Returns [`ParseDfgError`] on malformed lines, unknown kinds,
/// out-of-order ids or invalid edges.
pub fn from_text(text: &str) -> Result<PrecedenceGraph, ParseDfgError> {
    let mut g = PrecedenceGraph::new();
    let mut operands: Vec<(OpId, Operand)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| ParseDfgError { line: lineno, msg };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("op") => {
                let id: usize = parse_field(parts.next(), "id", lineno)?;
                if id != g.len() {
                    return Err(err(format!("op id {id} out of order (expected {})", g.len())));
                }
                let kind_s = parts.next().ok_or_else(|| err("missing kind".into()))?;
                let kind = kind_from(kind_s)
                    .ok_or_else(|| err(format!("unknown kind `{kind_s}`")))?;
                let delay: u64 = parse_field(parts.next(), "delay", lineno)?;
                let label = parts.collect::<Vec<_>>().join(" ");
                g.add_op(kind, delay, if label.is_empty() { format!("v{id}") } else { label });
            }
            Some("edge") => {
                let a: usize = parse_field(parts.next(), "from", lineno)?;
                let b: usize = parse_field(parts.next(), "to", lineno)?;
                g.add_edge(OpId::from_index(a), OpId::from_index(b))
                    .map_err(|e: IrError| err(e.to_string()))?;
            }
            Some("operand") => {
                let id: usize = parse_field(parts.next(), "id", lineno)?;
                if id >= g.len() {
                    return Err(err(format!("operand for unknown op {id}")));
                }
                let spec = parts.next().ok_or_else(|| err("missing operand spec".into()))?;
                let operand = if let Some(p) = spec.strip_prefix("op:") {
                    let p: usize = p.parse().map_err(|_| err(format!("bad op ref `{spec}`")))?;
                    Operand::Op(OpId::from_index(p))
                } else if let Some(c) = spec.strip_prefix("const:") {
                    let c: i64 = c.parse().map_err(|_| err(format!("bad const `{spec}`")))?;
                    Operand::Const(c)
                } else if let Some(n) = spec.strip_prefix("in:") {
                    Operand::Input(n.to_string())
                } else {
                    return Err(err(format!("unknown operand spec `{spec}`")));
                };
                operands.push((OpId::from_index(id), operand));
            }
            Some(other) => return Err(err(format!("unknown directive `{other}`"))),
            None => {}
        }
    }
    // Attach operands after all ops exist.
    let mut per_op: Vec<Vec<Operand>> = vec![Vec::new(); g.len()];
    for (v, operand) in operands {
        per_op[v.index()].push(operand);
    }
    for (i, ops) in per_op.into_iter().enumerate() {
        if !ops.is_empty() {
            g.set_operands(OpId::from_index(i), ops);
        }
    }
    g.validate()
        .map_err(|e| ParseDfgError { line: 0, msg: e.to_string() })?;
    Ok(g)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, ParseDfgError> {
    field
        .ok_or_else(|| ParseDfgError {
            line,
            msg: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseDfgError {
            line,
            msg: format!("bad {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_graphs, sim_operands};

    #[test]
    fn roundtrip_preserves_all_benchmarks() {
        for (name, mut g) in bench_graphs::all() {
            sim_operands::infer(&mut g);
            let text = to_text(&g);
            let back = from_text(&text).unwrap();
            assert_eq!(back.len(), g.len(), "{name}");
            assert_eq!(
                back.edges().collect::<Vec<_>>(),
                g.edges().collect::<Vec<_>>(),
                "{name}"
            );
            for v in g.op_ids() {
                assert_eq!(back.kind(v), g.kind(v));
                assert_eq!(back.delay(v), g.delay(v));
                assert_eq!(back.label(v), g.label(v));
                assert_eq!(back.operands(v), g.operands(v));
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = from_text("# hello\n\nop 0 add 1 a\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("op 0 add 1 a\nbogus 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_text("op 3 add 1 a\n").unwrap_err();
        assert!(err.msg.contains("out of order"));
        let err = from_text("op 0 quux 1 a\n").unwrap_err();
        assert!(err.msg.contains("unknown kind"));
        let err = from_text("op 0 add 1 a\nedge 0 7\n").unwrap_err();
        assert!(err.msg.contains("unknown operation"));
    }

    #[test]
    fn cyclic_text_is_rejected() {
        let text = "op 0 add 1 a\nop 1 add 1 b\nedge 0 1\nedge 1 0\n";
        let err = from_text(text).unwrap_err();
        assert!(err.msg.contains("cycle"));
    }

    #[test]
    fn operand_specs_roundtrip() {
        let text = "op 0 add 1 a\nop 1 sub 1 b\nedge 0 1\noperand 1 op:0\noperand 1 const:-5\noperand 0 in:x\noperand 0 const:2\n";
        let g = from_text(text).unwrap();
        assert_eq!(
            g.operands(OpId::from_index(1)),
            &[Operand::Op(OpId::from_index(0)), Operand::Const(-5)]
        );
        assert_eq!(
            g.operands(OpId::from_index(0)),
            &[Operand::Input("x".into()), Operand::Const(2)]
        );
    }
}
