//! Deterministic, seeded fault injection for robustness testing.
//!
//! The scheduling engines promise that no input, deadline, or internal
//! panic brings a caller down: every public entry point returns either
//! a checker-valid result or a typed error. This module is the harness
//! that *proves* it. It can inject three failure modes:
//!
//! * **panics at chosen commit counts** — every scheduler commit loop
//!   calls [`tick_commit`]; an armed plan with `panic_at_commit = k`
//!   panics the `k`-th commit of each matching run, exercising the
//!   `catch_unwind` isolation in the portfolio workers and the
//!   poisoned-state handling of the schedulers;
//! * **clock skew in deadline checks** — [`crate::Budget`] reads the
//!   clock through [`now`], and an armed plan can push that clock
//!   forward (a constant skew and/or a per-commit advance), making
//!   wall-clock deadlines fire at deterministic commit counts without
//!   real waiting;
//! * **byte-level input mutations** — [`mutate_bytes`] is a seeded,
//!   dependency-free mutator for wire-format fuzzing (`ir::textfmt`).
//!
//! # Arming and scopes
//!
//! Plans are process-global but **run-scoped**: a racing portfolio
//! worker wraps each run in a [`RunScope`] named after the candidate,
//! and a plan may restrict itself to one run name via
//! [`FaultPlan::target`]. Commit counters are per-scope (thread-local),
//! so "panic at commit 3 of run `dfs`" is deterministic regardless of
//! how many OS threads the race uses. `arm` (feature-gated, like
//! `Armed`) returns an RAII guard holding a global lock: concurrent
//! arming tests
//! serialize, and disarming is automatic.
//!
//! # Cost when disarmed
//!
//! With the `faultinject` cargo feature off (the default for release
//! builds), [`tick_commit`] and [`now`] compile to a no-op and a bare
//! `Instant::now()`. With the feature on but no plan armed, the hook
//! is one relaxed atomic load. The crates under test enable the
//! feature from their dev-dependencies, so `cargo test` runs with live
//! hooks and `cargo build --release` ships without them.

use std::time::Instant;

/// An injection plan. Arm it with `arm` (feature-gated); all fields
/// compose.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic when a matching run commits its `k`-th operation
    /// (1-based). `None` injects no panics.
    pub panic_at_commit: Option<u64>,
    /// Restrict the plan to runs whose [`RunScope`] name equals this;
    /// `None` matches every run (including un-scoped callers).
    pub target: Option<String>,
    /// Restrict the plan to runs whose [`RunScope`] name *starts with*
    /// this — e.g. `"serve:"` hits every request a scheduling daemon
    /// serves while sparing the harness's own runs. Composes with
    /// [`FaultPlan::target`] (both must match when both are set).
    pub target_prefix: Option<String>,
    /// Constant forward skew added to every [`now`] read.
    pub clock_skew: std::time::Duration,
    /// Additional forward skew per committed operation of the current
    /// scope — a deterministic "virtual clock" that makes a wall
    /// deadline expire at a chosen commit count.
    pub clock_skew_per_commit: std::time::Duration,
}

impl FaultPlan {
    /// A plan that panics at the `k`-th commit of every run.
    pub fn panic_at(k: u64) -> FaultPlan {
        FaultPlan {
            panic_at_commit: Some(k),
            ..FaultPlan::default()
        }
    }

    /// This plan restricted to runs scoped under `name`.
    #[must_use]
    pub fn in_run(mut self, name: impl Into<String>) -> FaultPlan {
        self.target = Some(name.into());
        self
    }

    /// This plan restricted to runs whose scope name starts with
    /// `prefix` (serve-path targeting: every request scope of a
    /// daemon is named `serve:req<N>`).
    #[must_use]
    pub fn in_runs_prefixed(mut self, prefix: impl Into<String>) -> FaultPlan {
        self.target_prefix = Some(prefix.into());
        self
    }
}

#[cfg(feature = "faultinject")]
mod armed_impl {
    use super::FaultPlan;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    /// Serializes arming tests; held by [`super::Armed`].
    static ARM_LOCK: Mutex<()> = Mutex::new(());
    /// The current plan (readers copy it into thread-local caches).
    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    /// Bumped on every arm/disarm so caches revalidate.
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    /// Fast-path gate: `false` means every hook returns immediately.
    static ARMED: AtomicBool = AtomicBool::new(false);

    /// Per-thread cache of the plan, resolved against the current
    /// run scope.
    #[derive(Default)]
    struct Cache {
        epoch: u64,
        scope: String,
        /// Plan applies to this scope.
        active: bool,
        panic_at: Option<u64>,
        skew: Duration,
        per_commit: Duration,
        /// Commits seen in the current scope.
        commits: u64,
    }

    thread_local! {
        static CACHE: RefCell<Cache> = RefCell::new(Cache::default());
    }

    fn unpoisoned<'a, T>(
        r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    ) -> MutexGuard<'a, T> {
        r.unwrap_or_else(PoisonError::into_inner)
    }

    fn refresh(c: &mut Cache) {
        let epoch = EPOCH.load(Ordering::Acquire);
        if c.epoch == epoch {
            return;
        }
        c.epoch = epoch;
        let plan = unpoisoned(PLAN.lock()).clone();
        match plan {
            Some(p) => {
                c.active = p.target.as_deref().is_none_or(|t| t == c.scope)
                    && p
                        .target_prefix
                        .as_deref()
                        .is_none_or(|t| c.scope.starts_with(t));
                c.panic_at = p.panic_at_commit;
                c.skew = p.clock_skew;
                c.per_commit = p.clock_skew_per_commit;
            }
            None => {
                c.active = false;
                c.panic_at = None;
                c.skew = Duration::ZERO;
                c.per_commit = Duration::ZERO;
            }
        }
    }

    /// RAII guard of an armed plan. Dropping disarms and releases the
    /// global arming lock.
    pub struct Armed {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            *unpoisoned(PLAN.lock()) = None;
            ARMED.store(false, Ordering::Release);
            EPOCH.fetch_add(1, Ordering::Release);
        }
    }

    /// Arms `plan` process-wide until the returned guard drops.
    pub fn arm(plan: FaultPlan) -> Armed {
        let lock = unpoisoned(ARM_LOCK.lock());
        *unpoisoned(PLAN.lock()) = Some(plan);
        EPOCH.fetch_add(1, Ordering::Release);
        ARMED.store(true, Ordering::Release);
        Armed { _lock: lock }
    }

    /// RAII run scope: names the current run and zeroes its commit
    /// counter; restores the enclosing scope on drop.
    pub struct RunScope {
        saved_scope: String,
        saved_commits: u64,
    }

    impl RunScope {
        /// Enters a run scope named `name` on this thread.
        pub fn enter(name: &str) -> RunScope {
            CACHE.with(|c| {
                let mut c = c.borrow_mut();
                let saved_scope = std::mem::replace(&mut c.scope, name.to_string());
                let saved_commits = std::mem::replace(&mut c.commits, 0);
                c.epoch = u64::MAX; // force re-resolution against the new scope
                refresh(&mut c);
                RunScope {
                    saved_scope,
                    saved_commits,
                }
            })
        }
    }

    impl Drop for RunScope {
        fn drop(&mut self) {
            CACHE.with(|c| {
                let mut c = c.borrow_mut();
                c.scope = std::mem::take(&mut self.saved_scope);
                c.commits = self.saved_commits;
                c.epoch = u64::MAX;
                refresh(&mut c);
            });
        }
    }

    pub fn tick_commit_impl() {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        CACHE.with(|c| {
            let mut c = c.borrow_mut();
            refresh(&mut c);
            if !c.active {
                return;
            }
            c.commits += 1;
            if c.panic_at == Some(c.commits) {
                panic!(
                    "faultinject: injected panic at commit {} of run `{}`",
                    c.commits, c.scope
                );
            }
        });
    }

    pub fn now_impl() -> Instant {
        let real = Instant::now();
        if !ARMED.load(Ordering::Relaxed) {
            return real;
        }
        CACHE.with(|c| {
            let mut c = c.borrow_mut();
            refresh(&mut c);
            if !c.active {
                return real;
            }
            let per = c.per_commit * u32::try_from(c.commits).unwrap_or(u32::MAX);
            real + c.skew + per
        })
    }
}

#[cfg(feature = "faultinject")]
pub use armed_impl::{arm, Armed, RunScope};

/// No-op stand-in for the feature-gated run scope, so production code
/// (e.g. portfolio workers) can name its runs unconditionally; with
/// the `faultinject` feature off this compiles away entirely.
#[cfg(not(feature = "faultinject"))]
pub struct RunScope {
    _private: (),
}

#[cfg(not(feature = "faultinject"))]
impl RunScope {
    /// Enters a (no-op) run scope named `name` on this thread.
    pub fn enter(_name: &str) -> RunScope {
        RunScope { _private: () }
    }
}

/// Scheduler commit hook: a no-op unless the `faultinject` feature is
/// enabled *and* a plan targeting the current run is armed.
#[inline]
pub fn tick_commit() {
    #[cfg(feature = "faultinject")]
    armed_impl::tick_commit_impl();
}

/// The clock deadline checks read: real time, plus the armed plan's
/// skew when the `faultinject` feature is enabled.
#[inline]
pub fn now() -> Instant {
    #[cfg(feature = "faultinject")]
    {
        armed_impl::now_impl()
    }
    #[cfg(not(feature = "faultinject"))]
    {
        Instant::now()
    }
}

/// A seeded, dependency-free byte mutator for wire-format fuzzing.
///
/// Applies 1–8 mutations (bit flips, byte substitutions, insertions,
/// deletions, truncations, and segment duplications) chosen by an
/// xorshift stream over `seed`. Deterministic: the same `(seed, input)`
/// always yields the same output. Empty inputs get random garbage
/// appended so every seed still produces a probe.
pub fn mutate_bytes(seed: u64, input: &[u8]) -> Vec<u8> {
    let mut rng = Xorshift::new(seed);
    let mut out = input.to_vec();
    let rounds = 1 + (rng.next() % 8) as usize;
    for _ in 0..rounds {
        if out.is_empty() {
            out.push(rng.next() as u8);
            continue;
        }
        let i = (rng.next() as usize) % out.len();
        match rng.next() % 6 {
            0 => out[i] ^= 1 << (rng.next() % 8),            // bit flip
            1 => out[i] = rng.next() as u8,                  // substitution
            2 => out.insert(i, rng.next() as u8),            // insertion
            3 => {
                out.remove(i);                               // deletion
            }
            4 => out.truncate(i),                            // truncation
            _ => {
                // Duplicate a short segment starting at i.
                let len = ((rng.next() % 16) as usize + 1).min(out.len() - i);
                let seg: Vec<u8> = out[i..i + len].to_vec();
                let at = (rng.next() as usize) % (out.len() + 1);
                out.splice(at..at, seg);
            }
        }
    }
    out
}

/// xorshift64* — tiny deterministic stream for the mutator.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        // Avoid the all-zero fixed point.
        Xorshift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic_per_seed() {
        let input = b"op 0 add 1 a\nedge 0 1\n";
        let a = mutate_bytes(42, input);
        let b = mutate_bytes(42, input);
        assert_eq!(a, b);
        let c = mutate_bytes(43, input);
        // Overwhelmingly likely to differ; equality would mean the seed
        // is ignored.
        assert_ne!(a, c);
    }

    #[test]
    fn mutator_handles_empty_input() {
        for seed in 0..32 {
            let m = mutate_bytes(seed, b"");
            assert!(!m.is_empty() || m.is_empty()); // must simply not panic
        }
    }

    #[cfg(feature = "faultinject")]
    #[test]
    fn panic_plan_fires_at_the_chosen_commit() {
        let _armed = arm(FaultPlan::panic_at(3));
        let _scope = RunScope::enter("victim");
        tick_commit();
        tick_commit();
        let caught = std::panic::catch_unwind(tick_commit);
        assert!(caught.is_err(), "third commit must panic");
    }

    #[cfg(feature = "faultinject")]
    #[test]
    fn targeted_plan_spares_other_runs() {
        let _armed = arm(FaultPlan::panic_at(1).in_run("victim"));
        let _scope = RunScope::enter("innocent");
        tick_commit(); // must not panic
        drop(_scope);
        let _scope = RunScope::enter("victim");
        assert!(std::panic::catch_unwind(tick_commit).is_err());
    }

    #[cfg(feature = "faultinject")]
    #[test]
    fn prefix_targeted_plan_hits_matching_scopes_only() {
        let _armed = arm(FaultPlan::panic_at(1).in_runs_prefixed("serve:"));
        let _scope = RunScope::enter("portfolio:dfs");
        tick_commit(); // must not panic
        drop(_scope);
        let _scope = RunScope::enter("serve:req7");
        assert!(std::panic::catch_unwind(tick_commit).is_err());
    }

    #[cfg(feature = "faultinject")]
    #[test]
    fn per_commit_skew_advances_the_virtual_clock() {
        use std::time::Duration;
        let _armed = arm(FaultPlan {
            clock_skew_per_commit: Duration::from_secs(1),
            ..FaultPlan::default()
        });
        let _scope = RunScope::enter("clocked");
        let t0 = now();
        tick_commit();
        tick_commit();
        let t1 = now();
        assert!(t1 >= t0 + Duration::from_secs(2) - Duration::from_millis(1));
    }

    #[cfg(feature = "faultinject")]
    #[test]
    fn disarmed_hooks_are_inert() {
        {
            let _armed = arm(FaultPlan::panic_at(1));
        } // dropped: disarmed
        let _scope = RunScope::enter("anyone");
        tick_commit(); // must not panic
    }
}
