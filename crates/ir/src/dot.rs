//! Graphviz DOT export for precedence graphs.

use crate::{OpId, PrecedenceGraph};
use std::fmt::Write as _;

/// Renders `g` as a DOT digraph named `name`.
///
/// Each vertex shows its label, mnemonic and delay.
pub fn to_dot(g: &PrecedenceGraph, name: &str) -> String {
    to_dot_with(g, name, |_| String::new())
}

/// Renders `g` as DOT, appending `extra(v)` (raw attribute text, e.g.
/// `", color=red"`) to every vertex. Used by the scheduler to colour
/// threads.
pub fn to_dot_with(
    g: &PrecedenceGraph,
    name: &str,
    mut extra: impl FnMut(OpId) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for v in g.op_ids() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{} d={}\"{}];",
            v.index(),
            g.label(v),
            g.kind(v),
            g.delay(v),
            extra(v)
        );
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  n{} -> n{};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "m1");
        let b = g.add_op(OpKind::Add, 1, "a1");
        g.add_edge(a, b).unwrap();
        let dot = to_dot(&g, "t");
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("n0 [label=\"m1\\n* d=2\"]"));
        assert!(dot.contains("n1 [label=\"a1\\n+ d=1\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn extra_attributes_are_appended() {
        let mut g = PrecedenceGraph::new();
        g.add_op(OpKind::Add, 1, "x");
        let dot = to_dot_with(&g, "t", |_| ", color=red".to_string());
        assert!(dot.contains(", color=red]"));
    }
}
