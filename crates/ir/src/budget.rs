//! Deadlines and cooperative cancellation budgets.
//!
//! Every long-running engine in the stack — the threaded scheduler's
//! commit loop, the modulo scheduler's placement loop, the portfolio
//! races and the flow driver — accepts a [`Budget`] and checks it
//! *cooperatively* after every unit of work (one committed operation),
//! so a run always stops within one commit of its deadline. A budget
//! carries two independent limits:
//!
//! * a **wall-clock deadline** (an absolute [`Instant`]) — the
//!   production limit: "this request must answer within 50 ms". Which
//!   commit observes the expiry depends on machine speed, so results
//!   under a wall deadline are *not* deterministic across runs;
//! * a **step quota** — a deterministic per-run commit budget: "no
//!   single scheduling run may commit more than `n` operations". The
//!   quota is counted per run (each `schedule_all_*` call counts its
//!   own commits), which is what makes budgeted results reproducible
//!   across thread counts: a racing run expires at exactly the same
//!   commit no matter how it is interleaved with its rivals. The
//!   degradation tests (`crates/flow/tests`) and the fault-injection
//!   suite lean on this mode.
//!
//! Wall-clock reads go through [`crate::faultinject::now`], so the
//! fault-injection harness can skew the clock a deadline check sees
//! without touching the real clock (see `DESIGN.md` §9).

use std::time::{Duration, Instant};

/// A cooperative cancellation budget: an optional wall-clock deadline
/// plus an optional deterministic per-run step quota. The default
/// (`Budget::NONE`) imposes no limit. See the [module docs](self).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Budget {
    /// Absolute wall-clock cutoff, if any.
    deadline: Option<Instant>,
    /// Per-run commit quota, if any.
    max_steps: Option<u64>,
}

impl Budget {
    /// The unlimited budget — every check passes.
    pub const NONE: Budget = Budget {
        deadline: None,
        max_steps: None,
    };

    /// A budget expiring `window` from now (wall clock).
    pub fn deadline_in(window: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + window),
            max_steps: None,
        }
    }

    /// A budget expiring at the absolute instant `at`.
    pub fn deadline_at(at: Instant) -> Budget {
        Budget {
            deadline: Some(at),
            max_steps: None,
        }
    }

    /// A deterministic budget: any single run may commit at most
    /// `steps` operations. Zero means "expired immediately".
    pub fn steps(steps: u64) -> Budget {
        Budget {
            deadline: None,
            max_steps: Some(steps),
        }
    }

    /// This budget with a step quota added (keeps the deadline).
    #[must_use]
    pub fn and_steps(mut self, steps: u64) -> Budget {
        self.max_steps = Some(steps);
        self
    }

    /// This budget with a wall deadline `window` from now added
    /// (keeps the step quota).
    #[must_use]
    pub fn and_deadline_in(mut self, window: Duration) -> Budget {
        self.deadline = Some(Instant::now() + window);
        self
    }

    /// `true` if neither a deadline nor a step quota is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_steps.is_none()
    }

    /// The step quota, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` once `steps_done` commits exhaust the quota or the
    /// (possibly fault-skewed) wall clock passed the deadline. The
    /// deterministic quota is checked first so quota-budgeted runs
    /// never depend on machine speed.
    pub fn expired(&self, steps_done: u64) -> bool {
        if self.max_steps.is_some_and(|q| steps_done >= q) {
            return true;
        }
        self.wall_expired()
    }

    /// `true` if the wall-clock deadline (alone) has passed, under the
    /// fault-injection clock skew when armed.
    pub fn wall_expired(&self) -> bool {
        self.deadline.is_some_and(|at| crate::faultinject::now() >= at)
    }

    /// A proportional slice `num/den` of this budget, for handing one
    /// rung of a degradation ladder its share:
    ///
    /// * the step quota becomes `⌊max_steps · num / den⌋`;
    /// * the deadline becomes `now + remaining · num / den` (a slice of
    ///   the *remaining* window; an already-expired deadline stays
    ///   expired).
    ///
    /// `den` must be non-zero; `num >= den` returns the budget
    /// unchanged.
    #[must_use]
    pub fn slice(&self, num: u32, den: u32) -> Budget {
        assert!(den > 0, "slice denominator must be non-zero");
        if num >= den {
            return *self;
        }
        let max_steps = self
            .max_steps
            .map(|q| q.saturating_mul(u64::from(num)) / u64::from(den));
        let deadline = self.deadline.map(|at| {
            let now = Instant::now();
            match at.checked_duration_since(now) {
                Some(remaining) => now + remaining * num / den,
                None => at, // already expired; keep it expired
            }
        });
        Budget { deadline, max_steps }
    }

    /// The pointwise-tighter combination of two budgets: the earlier
    /// deadline and the smaller step quota.
    #[must_use]
    pub fn tighter(&self, other: &Budget) -> Budget {
        let deadline = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let max_steps = match (self.max_steps, other.max_steps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Budget { deadline, max_steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let b = Budget::NONE;
        assert!(b.is_unlimited());
        assert!(!b.expired(0));
        assert!(!b.expired(u64::MAX));
        assert!(!b.wall_expired());
    }

    #[test]
    fn step_quota_is_exact_and_deterministic() {
        let b = Budget::steps(3);
        assert!(!b.expired(0));
        assert!(!b.expired(2));
        assert!(b.expired(3));
        assert!(b.expired(4));
        assert!(Budget::steps(0).expired(0), "zero quota expires immediately");
    }

    #[test]
    fn wall_deadline_expires() {
        let b = Budget::deadline_at(Instant::now() - Duration::from_millis(1));
        assert!(b.wall_expired());
        assert!(b.expired(0));
        let far = Budget::deadline_in(Duration::from_secs(3600));
        assert!(!far.expired(u64::MAX - 1) || far.max_steps().is_none());
        assert!(!far.wall_expired());
    }

    #[test]
    fn slice_scales_the_quota() {
        let b = Budget::steps(100);
        assert_eq!(b.slice(1, 2).max_steps(), Some(50));
        assert_eq!(b.slice(3, 4).max_steps(), Some(75));
        assert_eq!(b.slice(1, 1).max_steps(), Some(100));
        assert_eq!(b.slice(5, 4).max_steps(), Some(100), "num >= den is identity");
        assert_eq!(Budget::NONE.slice(1, 2), Budget::NONE);
    }

    #[test]
    fn tighter_takes_the_minimum_of_each_limit() {
        let a = Budget::steps(10);
        let b = Budget::steps(5).and_deadline_in(Duration::from_secs(60));
        let t = a.tighter(&b);
        assert_eq!(t.max_steps(), Some(5));
        assert!(t.deadline().is_some());
        assert_eq!(Budget::NONE.tighter(&Budget::NONE), Budget::NONE);
    }
}
