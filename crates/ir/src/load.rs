//! The one shared workload loader for examples and benchmark
//! binaries.
//!
//! Every front end that takes "a graph" from the command line resolves
//! it through [`load_graph`]/[`load_suite`] instead of hand-rolling
//! its own mix of `bench_graphs` lookups, generator calls and
//! [`textfmt`] file reads. The spec grammar:
//!
//! | spec                 | resolves to                                   |
//! |----------------------|-----------------------------------------------|
//! | `hal` `ar` `ewf` `fir` | the named paper kernel                      |
//! | `fig1`               | the Figure 1 motivating example               |
//! | `all`                | the four paper kernels (suite only)           |
//! | `stress:<seed>:<ops>` | [`generate::stress_dag`]                     |
//! | `<path>.dfg`         | a textfmt file from disk                      |
//!
//! Specs are case-insensitive for the named kernels. A path is
//! anything containing a `/` or ending in `.dfg`; unknown bare words
//! are reported as such rather than treated as file names, so a typo
//! in a kernel name does not turn into a confusing I/O error.

use crate::{bench_graphs, generate, textfmt, PrecedenceGraph};
use std::fmt;
use std::path::Path;

/// Why a workload spec failed to resolve.
#[derive(Debug)]
pub enum LoadError {
    /// The spec names neither a kernel, a generator, nor a file.
    UnknownSpec(String),
    /// A generator spec (`stress:<seed>:<ops>`) with malformed fields.
    BadGeneratorSpec(String),
    /// The spec was a path but reading it failed.
    Io(String, std::io::Error),
    /// The file was read but is not a valid textfmt graph.
    Parse(String, textfmt::ParseDfgError),
    /// A multi-graph spec (`all`) was given where one graph is needed.
    Ambiguous(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::UnknownSpec(s) => write!(
                f,
                "unknown workload '{s}' (expected hal|ar|ewf|fir|fig1|all, \
                 stress:<seed>:<ops>, or a .dfg file path)"
            ),
            LoadError::BadGeneratorSpec(s) => {
                write!(f, "malformed generator spec '{s}' (expected stress:<seed>:<ops>)")
            }
            LoadError::Io(p, e) => write!(f, "reading '{p}': {e}"),
            LoadError::Parse(p, e) => write!(f, "parsing '{p}': {e}"),
            LoadError::Ambiguous(s) => {
                write!(f, "'{s}' names several graphs; pick one kernel or a file")
            }
        }
    }
}

impl std::error::Error for LoadError {}

fn looks_like_path(spec: &str) -> bool {
    spec.contains('/') || spec.contains('\\') || spec.to_ascii_lowercase().ends_with(".dfg")
}

fn from_file(spec: &str) -> Result<(String, PrecedenceGraph), LoadError> {
    let text = std::fs::read_to_string(spec).map_err(|e| LoadError::Io(spec.to_string(), e))?;
    let g = textfmt::from_text(&text).map_err(|e| LoadError::Parse(spec.to_string(), e))?;
    let name = Path::new(spec)
        .file_stem()
        .map_or_else(|| spec.to_string(), |s| s.to_string_lossy().into_owned());
    Ok((name, g))
}

fn from_generator(spec: &str) -> Result<(String, PrecedenceGraph), LoadError> {
    let mut it = spec.split(':');
    let _ = it.next(); // the "stress" tag, already matched
    let bad = || LoadError::BadGeneratorSpec(spec.to_string());
    let seed: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let ops: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() {
        return Err(bad());
    }
    Ok((format!("stress-{seed}-{ops}"), generate::stress_dag(seed, ops)))
}

/// Resolves a workload spec to a list of named graphs (`all` expands
/// to the four paper kernels; every other spec yields one graph).
///
/// # Errors
///
/// See [`LoadError`].
pub fn load_suite(spec: &str) -> Result<Vec<(String, PrecedenceGraph)>, LoadError> {
    if looks_like_path(spec) {
        return from_file(spec).map(|g| vec![g]);
    }
    let lower = spec.to_ascii_lowercase();
    match lower.as_str() {
        "all" => Ok(bench_graphs::all()
            .into_iter()
            .map(|(name, g)| (name.to_string(), g))
            .collect()),
        "hal" => Ok(vec![("HAL".to_string(), bench_graphs::hal())]),
        "ar" => Ok(vec![("AR".to_string(), bench_graphs::ar())]),
        "ewf" => Ok(vec![("EWF".to_string(), bench_graphs::ewf())]),
        "fir" => Ok(vec![("FIR".to_string(), bench_graphs::fir())]),
        "fig1" => Ok(vec![("FIG1".to_string(), bench_graphs::fig1().graph)]),
        _ if lower.starts_with("stress:") => from_generator(spec).map(|g| vec![g]),
        _ => Err(LoadError::UnknownSpec(spec.to_string())),
    }
}

/// Resolves a workload spec to exactly one named graph.
///
/// # Errors
///
/// [`LoadError::Ambiguous`] for multi-graph specs (`all`), otherwise
/// as [`load_suite`].
pub fn load_graph(spec: &str) -> Result<(String, PrecedenceGraph), LoadError> {
    let mut suite = load_suite(spec)?;
    if suite.len() != 1 {
        return Err(LoadError::Ambiguous(spec.to_string()));
    }
    Ok(suite.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_kernels_resolve_case_insensitively() {
        for spec in ["hal", "HAL", "ewf", "ar", "fir", "fig1"] {
            let (_, g) = load_graph(spec).unwrap();
            assert!(!g.is_empty(), "{spec}");
        }
        assert_eq!(load_suite("all").unwrap().len(), bench_graphs::all().len());
    }

    #[test]
    fn generator_specs_parse_and_reject() {
        let (name, g) = load_graph("stress:7:250").unwrap();
        assert_eq!(name, "stress-7-250");
        assert_eq!(g.len(), 250);
        assert!(matches!(load_graph("stress:7"), Err(LoadError::BadGeneratorSpec(_))));
        assert!(matches!(load_graph("stress:x:10"), Err(LoadError::BadGeneratorSpec(_))));
        assert!(matches!(load_graph("stress:1:2:3"), Err(LoadError::BadGeneratorSpec(_))));
    }

    #[test]
    fn files_round_trip_and_errors_stay_typed() {
        let g = bench_graphs::hal();
        let dir = std::env::temp_dir().join("hls-ir-load-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hal.dfg");
        std::fs::write(&path, textfmt::to_text(&g)).unwrap();
        let (name, loaded) = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(name, "hal");
        assert_eq!(loaded.len(), g.len());

        assert!(matches!(load_graph("no/such/file.dfg"), Err(LoadError::Io(_, _))));
        assert!(matches!(load_graph("not-a-kernel"), Err(LoadError::UnknownSpec(_))));
        assert!(matches!(load_graph("all"), Err(LoadError::Ambiguous(_))));
        std::fs::write(&path, "op zero bogus").unwrap();
        assert!(matches!(load_graph(path.to_str().unwrap()), Err(LoadError::Parse(_, _))));
    }
}
