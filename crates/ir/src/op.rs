//! Operation kinds, resource classes and the delay model.

use std::fmt;

/// The behavioral operation implemented by a vertex of the precedence graph.
///
/// The set covers the operations appearing in the paper's benchmarks and in
/// the refinement scenarios of its Section 1 (spill `Load`/`Store`, SSA `Phi`
/// resolved to `Move`, interconnect `WireDelay`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer/fixed-point addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Relational comparison (`<`, `<=`, ...).
    Cmp,
    /// Barrel shift.
    Shl,
    /// Bitwise logic (and/or/xor).
    Logic,
    /// Load from background memory (spill reload).
    Load,
    /// Store to background memory (spill).
    Store,
    /// Register-to-register move (resolved SSA phi).
    Move,
    /// SSA phi node, not yet resolved by register allocation.
    Phi,
    /// Pure interconnect delay inserted after physical design.
    WireDelay,
    /// No operation (structural placeholder).
    Nop,
}

impl OpKind {
    /// All kinds, for exhaustive iteration in tests and generators.
    pub const ALL: [OpKind; 13] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Cmp,
        OpKind::Shl,
        OpKind::Logic,
        OpKind::Load,
        OpKind::Store,
        OpKind::Move,
        OpKind::Phi,
        OpKind::WireDelay,
        OpKind::Nop,
    ];

    /// The class of functional unit able to execute this operation.
    pub fn resource_class(self) -> ResourceClass {
        match self {
            OpKind::Add | OpKind::Sub | OpKind::Cmp | OpKind::Logic => ResourceClass::Alu,
            OpKind::Mul => ResourceClass::Multiplier,
            OpKind::Div => ResourceClass::Divider,
            OpKind::Shl => ResourceClass::Shifter,
            OpKind::Load | OpKind::Store => ResourceClass::MemPort,
            // Register-to-register moves (resolved phis) ride the
            // interconnect, not a functional unit.
            OpKind::Move | OpKind::Phi | OpKind::WireDelay | OpKind::Nop => ResourceClass::Wire,
        }
    }

    /// Short mnemonic used by reports and DOT labels.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Div => "/",
            OpKind::Cmp => "<",
            OpKind::Shl => "<<",
            OpKind::Logic => "&",
            OpKind::Load => "ld",
            OpKind::Store => "st",
            OpKind::Move => "mv",
            OpKind::Phi => "phi",
            OpKind::WireDelay => "wd",
            OpKind::Nop => "nop",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A class of functional unit in the datapath.
///
/// Threads of the threaded scheduler correspond to functional-unit
/// *instances*; each instance belongs to one class and executes only
/// compatible [`OpKind`]s. `Wire` is the pseudo-class of zero-resource
/// vertices (wire delays, unresolved phis); they never occupy a thread.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Adder / subtracter / comparator / logic unit ("+/-" in the paper).
    Alu,
    /// Multiplier ("*" in the paper).
    Multiplier,
    /// Divider.
    Divider,
    /// Shifter.
    Shifter,
    /// Memory port used by spill `Load`/`Store` operations.
    MemPort,
    /// No resource needed (interconnect, placeholders).
    Wire,
}

impl ResourceClass {
    /// All resource-consuming classes (everything except [`ResourceClass::Wire`]).
    pub const UNITS: [ResourceClass; 5] = [
        ResourceClass::Alu,
        ResourceClass::Multiplier,
        ResourceClass::Divider,
        ResourceClass::Shifter,
        ResourceClass::MemPort,
    ];
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceClass::Alu => "ALU",
            ResourceClass::Multiplier => "MUL",
            ResourceClass::Divider => "DIV",
            ResourceClass::Shifter => "SHF",
            ResourceClass::MemPort => "MEM",
            ResourceClass::Wire => "WIRE",
        };
        f.write_str(s)
    }
}

/// Maps operation kinds to delays (in control steps).
///
/// The classical HLS assumption — used by the paper's evaluation — is a
/// two-cycle multiplier and single-cycle ALU operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DelayModel {
    add: u64,
    sub: u64,
    mul: u64,
    div: u64,
    cmp: u64,
    shl: u64,
    logic: u64,
    load: u64,
    store: u64,
    mv: u64,
    phi: u64,
    wire: u64,
    nop: u64,
}

impl DelayModel {
    /// The classical model: `mul = 2`, `div = 3`, memory = 1, rest = 1.
    pub fn classic() -> Self {
        DelayModel {
            add: 1,
            sub: 1,
            mul: 2,
            div: 3,
            cmp: 1,
            shl: 1,
            logic: 1,
            load: 1,
            store: 1,
            mv: 1,
            phi: 0,
            wire: 1,
            nop: 0,
        }
    }

    /// Every operation takes one control step (phis and nops are free).
    pub fn unit() -> Self {
        DelayModel {
            add: 1,
            sub: 1,
            mul: 1,
            div: 1,
            cmp: 1,
            shl: 1,
            logic: 1,
            load: 1,
            store: 1,
            mv: 1,
            phi: 0,
            wire: 1,
            nop: 0,
        }
    }

    /// Delay of one operation kind under this model.
    pub fn delay_of(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Add => self.add,
            OpKind::Sub => self.sub,
            OpKind::Mul => self.mul,
            OpKind::Div => self.div,
            OpKind::Cmp => self.cmp,
            OpKind::Shl => self.shl,
            OpKind::Logic => self.logic,
            OpKind::Load => self.load,
            OpKind::Store => self.store,
            OpKind::Move => self.mv,
            OpKind::Phi => self.phi,
            OpKind::WireDelay => self.wire,
            OpKind::Nop => self.nop,
        }
    }

    /// Returns a copy with the multiplier delay replaced.
    pub fn with_mul(mut self, mul: u64) -> Self {
        self.mul = mul;
        self
    }

    /// Returns a copy with the wire-delay op delay replaced (used when the
    /// physical substrate quantises long wires into multi-cycle hops).
    pub fn with_wire(mut self, wire: u64) -> Self {
        self.wire = wire;
        self
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::classic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_delays_match_the_paper_assumption() {
        let dm = DelayModel::classic();
        assert_eq!(dm.delay_of(OpKind::Mul), 2);
        assert_eq!(dm.delay_of(OpKind::Add), 1);
        assert_eq!(dm.delay_of(OpKind::Sub), 1);
        assert_eq!(dm.delay_of(OpKind::Cmp), 1);
    }

    #[test]
    fn unit_delays_are_one_for_real_ops() {
        let dm = DelayModel::unit();
        for kind in OpKind::ALL {
            match kind {
                OpKind::Phi | OpKind::Nop => assert_eq!(dm.delay_of(kind), 0),
                _ => assert_eq!(dm.delay_of(kind), 1, "{kind:?}"),
            }
        }
    }

    #[test]
    fn resource_classes_partition_kinds() {
        assert_eq!(OpKind::Add.resource_class(), ResourceClass::Alu);
        assert_eq!(OpKind::Sub.resource_class(), ResourceClass::Alu);
        assert_eq!(OpKind::Cmp.resource_class(), ResourceClass::Alu);
        assert_eq!(OpKind::Mul.resource_class(), ResourceClass::Multiplier);
        assert_eq!(OpKind::Load.resource_class(), ResourceClass::MemPort);
        assert_eq!(OpKind::Store.resource_class(), ResourceClass::MemPort);
        assert_eq!(OpKind::WireDelay.resource_class(), ResourceClass::Wire);
        assert_eq!(OpKind::Phi.resource_class(), ResourceClass::Wire);
        assert_eq!(OpKind::Move.resource_class(), ResourceClass::Wire);
    }

    #[test]
    fn with_mul_overrides_only_mul() {
        let dm = DelayModel::classic().with_mul(5);
        assert_eq!(dm.delay_of(OpKind::Mul), 5);
        assert_eq!(dm.delay_of(OpKind::Add), 1);
    }

    #[test]
    fn mnemonics_are_nonempty_and_displayed() {
        for kind in OpKind::ALL {
            assert!(!kind.mnemonic().is_empty());
            assert_eq!(format!("{kind}"), kind.mnemonic());
        }
        assert_eq!(format!("{}", ResourceClass::Alu), "ALU");
        assert_eq!(format!("{}", ResourceClass::Multiplier), "MUL");
    }
}
