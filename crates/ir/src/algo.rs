//! Graph algorithms on precedence graphs.
//!
//! The distance terminology follows Definition 1 of the paper, with the
//! *inclusive* convention spelled out in `DESIGN.md`:
//!
//! * `sdist(v)` — delay-sum of the longest path from a primary input to `v`,
//!   **including** `v`'s own delay (`‖←v‖` in the paper);
//! * `tdist(v)` — delay-sum of the longest path from `v` to a primary
//!   output, **including** `v` (`‖v→‖`);
//! * distance through `v` — `sdist(v) + tdist(v) − D(v)` (`‖←v→‖`,
//!   Lemma 5);
//! * diameter `‖G‖` — the maximum distance over all vertices, i.e. the
//!   critical-path length.

use crate::{BitMatrix, IrError, OpId, PrecedenceGraph};

/// Computes a topological order of `g` (Kahn's algorithm).
///
/// # Errors
///
/// Returns [`IrError::Cycle`] with a vertex on a cycle if `g` is cyclic.
pub fn topo_order(g: &PrecedenceGraph) -> Result<Vec<OpId>, IrError> {
    let n = g.len();
    let mut indeg: Vec<usize> = g.op_ids().map(|v| g.preds(v).len()).collect();
    let mut queue: Vec<OpId> = g.op_ids().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &s in g.succs(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let witness = g
            .op_ids()
            .find(|&v| indeg[v.index()] > 0)
            .expect("cycle implies a vertex with positive residual in-degree");
        Err(IrError::Cycle(witness))
    }
}

/// `true` if `g` contains no cycle.
pub fn is_acyclic(g: &PrecedenceGraph) -> bool {
    topo_order(g).is_ok()
}

/// Source distances `‖←v‖` (inclusive) for all vertices, indexed by op.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn source_distances(g: &PrecedenceGraph) -> Vec<u64> {
    let order = topo_order(g).expect("source_distances requires an acyclic graph");
    let mut sdist = vec![0u64; g.len()];
    for &v in &order {
        let best = g
            .preds(v)
            .iter()
            .map(|&p| sdist[p.index()])
            .max()
            .unwrap_or(0);
        sdist[v.index()] = best + g.delay(v);
    }
    sdist
}

/// Sink distances `‖v→‖` (inclusive) for all vertices, indexed by op.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn sink_distances(g: &PrecedenceGraph) -> Vec<u64> {
    let order = topo_order(g).expect("sink_distances requires an acyclic graph");
    let mut tdist = vec![0u64; g.len()];
    for &v in order.iter().rev() {
        let best = g
            .succs(v)
            .iter()
            .map(|&q| tdist[q.index()])
            .max()
            .unwrap_or(0);
        tdist[v.index()] = best + g.delay(v);
    }
    tdist
}

/// The diameter `‖G‖`: the critical-path delay-sum, 0 for an empty graph.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn diameter(g: &PrecedenceGraph) -> u64 {
    source_distances(g).into_iter().max().unwrap_or(0)
}

/// One critical path (a vertex sequence of maximum delay-sum), possibly
/// empty for an empty graph.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn critical_path(g: &PrecedenceGraph) -> Vec<OpId> {
    if g.is_empty() {
        return Vec::new();
    }
    let sdist = source_distances(g);
    let tdist = sink_distances(g);
    let target = diameter(g);
    // Start from a source on the critical path, walk greedily forward.
    let mut cur = g
        .op_ids()
        .filter(|&v| g.preds(v).is_empty())
        .find(|&v| tdist[v.index()] == target)
        .expect("some source starts a critical path");
    let mut path = vec![cur];
    loop {
        let next = g
            .succs(cur)
            .iter()
            .copied()
            .find(|&q| sdist[cur.index()] + tdist[q.index()] == target);
        match next {
            Some(q) => {
                path.push(q);
                cur = q;
            }
            None => break,
        }
    }
    path
}

/// Depth-first pre-order of `g`, starting from the sources in id order.
///
/// This is "meta schedule 1" of the paper's Section 5 (a DFS traversal of
/// the precedence graph). The traversal visits every vertex exactly once
/// even if it is not reachable from a source (defensive; cannot happen in a
/// DAG).
pub fn dfs_order(g: &PrecedenceGraph) -> Vec<OpId> {
    let mut seen = vec![false; g.len()];
    let mut order = Vec::with_capacity(g.len());
    let mut stack: Vec<OpId> = Vec::new();
    let roots: Vec<OpId> = g.sources();
    for root in roots.into_iter().chain(g.op_ids()) {
        if seen[root.index()] {
            continue;
        }
        stack.push(root);
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            order.push(v);
            // Push successors in reverse so the first successor is visited
            // first, giving the conventional DFS order.
            for &s in g.succs(v).iter().rev() {
                if !seen[s.index()] {
                    stack.push(s);
                }
            }
        }
    }
    order
}

/// Transitive closure of `g`: bit `(u, v)` is set iff `u ≺_G v` (strictly).
///
/// This realises the partial order `≺_G` of Definition 1.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn transitive_closure(g: &PrecedenceGraph) -> BitMatrix {
    let order = topo_order(g).expect("transitive_closure requires an acyclic graph");
    let mut m = BitMatrix::new(g.len());
    for &v in order.iter().rev() {
        for &q in g.succs(v) {
            m.set(v.index(), q.index());
            m.or_row_into(q.index(), v.index());
        }
    }
    m
}

/// Both strict closures of `g` — `(ancestors, descendants)`, where row
/// `v` of the ancestor matrix is `{p : p ≺_G v}` and row `v` of the
/// descendant matrix is `{d : v ≺_G d}`.
///
/// The descendant matrix is one topological sweep of word-parallel row
/// unions ([`transitive_closure`]); the ancestor matrix is its
/// word-parallel [`BitMatrix::transpose`]. This is the single dense
/// closure constructor shared by every scheduler and oracle in the
/// workspace; the schedulers' hot paths use the sub-quadratic
/// [`crate::reach::ReachIndex`] instead and keep this as the small-`V`
/// verification oracle.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn closures(g: &PrecedenceGraph) -> (BitMatrix, BitMatrix) {
    let desc = transitive_closure(g);
    let anc = desc.transpose();
    (anc, desc)
}

/// Partitions the vertices of `g` into vertex-disjoint paths, greedily
/// extracting a longest (delay-weighted) remaining path each round.
///
/// This is the decomposition behind "meta schedule 3" of the paper: the
/// online scheduler is fed path by path, longest first. Every vertex
/// appears in exactly one path; paths follow graph edges.
///
/// # Panics
///
/// Panics if `g` is cyclic.
pub fn longest_path_partition(g: &PrecedenceGraph) -> Vec<Vec<OpId>> {
    let order = topo_order(g).expect("longest_path_partition requires an acyclic graph");
    let mut assigned = vec![false; g.len()];
    let mut paths: Vec<Vec<OpId>> = Vec::new();
    let mut remaining = g.len();
    while remaining > 0 {
        // Longest path over unassigned vertices only.
        let mut best_end: Option<OpId> = None;
        let mut dist = vec![0u64; g.len()];
        let mut pred: Vec<Option<OpId>> = vec![None; g.len()];
        for &v in &order {
            if assigned[v.index()] {
                continue;
            }
            let mut d = 0;
            let mut from = None;
            for &p in g.preds(v) {
                if !assigned[p.index()] && dist[p.index()] >= d {
                    d = dist[p.index()];
                    from = Some(p);
                }
            }
            dist[v.index()] = d + g.delay(v);
            pred[v.index()] = from;
            if best_end.is_none_or(|b| dist[v.index()] > dist[b.index()]) {
                best_end = Some(v);
            }
        }
        let mut path = Vec::new();
        let mut cur = best_end.expect("remaining > 0 implies an unassigned vertex");
        loop {
            path.push(cur);
            assigned[cur.index()] = true;
            remaining -= 1;
            match pred[cur.index()] {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
        paths.push(path);
    }
    paths
}

/// Assigns each vertex its ASAP level under unit step (ignoring delays):
/// level = length (in vertices) of the longest incoming chain.
pub fn levels(g: &PrecedenceGraph) -> Vec<usize> {
    let order = topo_order(g).expect("levels requires an acyclic graph");
    let mut level = vec![0usize; g.len()];
    for &v in &order {
        let best = g
            .preds(v)
            .iter()
            .map(|&p| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
        level[v.index()] = best;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// a -> b -> d, a -> c -> d; delays a=1 b=2 c=1 d=1.
    fn diamond() -> (PrecedenceGraph, [OpId; 4]) {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let c = g.add_op(OpKind::Sub, 1, "c");
        let d = g.add_op(OpKind::Add, 1, "d");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.len()];
            for (i, v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        for (u, v) in g.edges() {
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn topo_order_detects_cycles() {
        let (mut g, [a, _, _, d]) = diamond();
        g.add_edge(d, a).unwrap();
        assert!(matches!(topo_order(&g), Err(IrError::Cycle(_))));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn distances_follow_inclusive_convention() {
        let (g, [a, b, c, d]) = diamond();
        let s = source_distances(&g);
        assert_eq!(s[a.index()], 1);
        assert_eq!(s[b.index()], 3);
        assert_eq!(s[c.index()], 2);
        assert_eq!(s[d.index()], 4);
        let t = sink_distances(&g);
        assert_eq!(t[d.index()], 1);
        assert_eq!(t[b.index()], 3);
        assert_eq!(t[c.index()], 2);
        assert_eq!(t[a.index()], 4);
    }

    #[test]
    fn lemma5_distance_identity_holds() {
        let (g, _) = diamond();
        let s = source_distances(&g);
        let t = sink_distances(&g);
        assert_eq!(t[0], 4, "tdist(a) spans the whole critical path a,b,d");
        for v in g.op_ids() {
            // ‖←v→‖ = sdist(v) + tdist(v) − D(v) (Lemma 5), bounded by ‖G‖.
            let through = s[v.index()] + t[v.index()] - g.delay(v);
            assert!(through <= diameter(&g));
        }
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        let g = PrecedenceGraph::new();
        assert_eq!(diameter(&g), 0);
        let mut g = PrecedenceGraph::new();
        g.add_op(OpKind::Mul, 2, "m");
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn critical_path_has_diameter_weight() {
        let (g, _) = diamond();
        let cp = critical_path(&g);
        let w: u64 = cp.iter().map(|&v| g.delay(v)).sum();
        assert_eq!(w, diameter(&g));
        for pair in cp.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn dfs_order_visits_all_once_and_parents_first() {
        let (g, _) = diamond();
        let order = dfs_order(&g);
        assert_eq!(order.len(), g.len());
        let mut seen = vec![false; g.len()];
        for v in &order {
            seen[v.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // In a single-source DAG, DFS sees a vertex only after some pred.
        let mut pos = vec![0; g.len()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in g.op_ids() {
            if !g.preds(v).is_empty() {
                assert!(g.preds(v).iter().any(|&p| pos[p.index()] < pos[v.index()]));
            }
        }
    }

    #[test]
    fn transitive_closure_is_strict_and_transitive() {
        let (g, [a, b, c, d]) = diamond();
        let m = transitive_closure(&g);
        assert!(m.get(a.index(), d.index()));
        assert!(m.get(a.index(), b.index()));
        assert!(m.get(b.index(), d.index()));
        assert!(!m.get(d.index(), a.index()));
        assert!(!m.get(b.index(), c.index()));
        assert!(!m.get(a.index(), a.index()), "closure is strict");
    }

    #[test]
    fn longest_path_partition_covers_all_vertices_once() {
        let (g, _) = diamond();
        let paths = longest_path_partition(&g);
        let mut seen = vec![0usize; g.len()];
        for path in &paths {
            for pair in path.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
            for v in path {
                seen[v.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // First path is the critical path of the diamond: a, b, d.
        let w: u64 = paths[0].iter().map(|&v| g.delay(v)).sum();
        assert_eq!(w, diameter(&g));
    }

    #[test]
    fn levels_count_chain_depth() {
        let (g, [a, b, c, d]) = diamond();
        let lv = levels(&g);
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[b.index()], 1);
        assert_eq!(lv[c.index()], 1);
        assert_eq!(lv[d.index()], 2);
    }

    #[test]
    fn closure_on_larger_random_shape() {
        // A chain of 130 vertices crosses multiple bitmatrix words.
        let mut g = PrecedenceGraph::new();
        let ids: Vec<OpId> = (0..130).map(|i| g.add_op(OpKind::Add, 1, format!("n{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let m = transitive_closure(&g);
        assert!(m.get(0, 129));
        assert!(!m.get(129, 0));
        assert_eq!(m.row_count(0), 129);
        assert_eq!(diameter(&g), 130);
    }
}
