//! Operand inference for graphs built without value semantics.
//!
//! Hand-built benchmark DFGs record dependence edges but not operand
//! order. [`infer`] fills in simulatable operands: dependence producers
//! in edge order, padded with synthesized named inputs up to the
//! operation's natural arity. The result is deterministic, so two
//! simulations of the same graph agree.

use crate::{OpKind, Operand, PrecedenceGraph};

/// Natural operand count of an operation kind, given `have` wired
/// producers.
fn arity(kind: OpKind, have: usize) -> usize {
    match kind {
        OpKind::Load | OpKind::Store | OpKind::Move | OpKind::WireDelay | OpKind::Nop => {
            have.max(1)
        }
        OpKind::Phi => have.max(3),
        _ => have.max(2),
    }
}

/// Fills in operands for every operation that has none recorded:
/// dependence producers first (in edge order), then synthesized inputs
/// named `<label>_in<i>`.
pub fn infer(g: &mut PrecedenceGraph) {
    for v in g.op_ids() {
        if !g.operands(v).is_empty() {
            continue;
        }
        let mut operands: Vec<Operand> =
            g.preds(v).iter().map(|&p| Operand::Op(p)).collect();
        let want = arity(g.kind(v), operands.len());
        let mut i = 0;
        while operands.len() < want {
            operands.push(Operand::Input(format!("{}_in{i}", g.label(v))));
            i += 1;
        }
        g.set_operands(v, operands);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_graphs;

    #[test]
    fn infer_covers_every_op_deterministically() {
        let mut g = bench_graphs::ewf();
        infer(&mut g);
        for v in g.op_ids() {
            assert!(!g.operands(v).is_empty(), "{v} has operands");
            assert!(g.operands(v).len() >= 2, "adds/muls are binary");
        }
        let mut g2 = bench_graphs::ewf();
        infer(&mut g2);
        for v in g.op_ids() {
            assert_eq!(g.operands(v), g2.operands(v));
        }
    }

    #[test]
    fn infer_respects_existing_operands() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        g.set_operands(a, vec![Operand::Const(1), Operand::Const(2)]);
        infer(&mut g);
        assert_eq!(
            g.operands(a),
            &[Operand::Const(1), Operand::Const(2)]
        );
    }

    #[test]
    fn unary_kinds_get_one_operand() {
        let mut g = PrecedenceGraph::new();
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        infer(&mut g);
        assert_eq!(g.operands(w).len(), 1);
    }
}
