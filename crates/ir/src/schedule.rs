//! Hard schedules: the final operation → time-step mapping.
//!
//! A *hard* schedule (the paper's traditional notion) assigns every
//! operation a start step and, for resource-consuming operations, a
//! functional unit. Both the baseline schedulers and the threaded
//! scheduler's extraction produce this type; [`validate`] checks the
//! precedence and resource-exclusion conditions that make it legal.
//!
//! For loop pipelining the module also carries [`ModuloSchedule`] — one
//! iteration's start times repeated every *initiation interval* (II)
//! steps — with its own cycle-accurate checker [`check_modulo`]
//! (wrap-around resource reservation, recurrence-aware precedence) and
//! the [`unroll`] oracle that flattens `k` iterations into an ordinary
//! acyclic schedule so [`validate`] can cross-check the modulo checker
//! (the differential harness of `crates/core/tests/modulo_differential.rs`).

use crate::{OpId, PrecedenceGraph, ResourceClass, ResourceSet};
use std::error::Error;
use std::fmt;

/// A complete operation → (start step, unit) assignment for one graph.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HardSchedule {
    start: Vec<Option<u64>>,
    unit: Vec<Option<usize>>,
}

impl HardSchedule {
    /// An empty schedule for a graph of `n` operations.
    pub fn new(n: usize) -> Self {
        HardSchedule {
            start: vec![None; n],
            unit: vec![None; n],
        }
    }

    /// Number of operation slots.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// `true` if the schedule covers zero operations.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Assigns `v` a start step and optional unit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: OpId, start: u64, unit: Option<usize>) {
        self.start[v.index()] = Some(start);
        self.unit[v.index()] = unit;
    }

    /// The start step of `v`, if assigned.
    pub fn start(&self, v: OpId) -> Option<u64> {
        self.start.get(v.index()).copied().flatten()
    }

    /// The functional unit of `v`, if any.
    pub fn unit(&self, v: OpId) -> Option<usize> {
        self.unit.get(v.index()).copied().flatten()
    }

    /// The finish step of `v` (start + delay), if assigned.
    pub fn finish(&self, g: &PrecedenceGraph, v: OpId) -> Option<u64> {
        self.start(v).map(|s| s + g.delay(v))
    }

    /// Schedule length in control steps: `max(start + delay)` over all
    /// assigned operations (0 when nothing is assigned).
    pub fn length(&self, g: &PrecedenceGraph) -> u64 {
        g.op_ids()
            .filter_map(|v| self.finish(g, v))
            .max()
            .unwrap_or(0)
    }

    /// Shifts every operation starting at or after `at` down by `by`
    /// steps. This is the "trivial fix" of the paper's Figure 1(c)/(d):
    /// new rows are opened in the middle of a fixed schedule.
    pub fn shift_from(&mut self, at: u64, by: u64) {
        for s in self.start.iter_mut().flatten() {
            if *s >= at {
                *s += by;
            }
        }
    }

    /// Grows the slot vectors to cover a graph that gained operations.
    pub fn grow(&mut self, n: usize) {
        if n > self.start.len() {
            self.start.resize(n, None);
            self.unit.resize(n, None);
        }
    }
}

/// Violations reported by [`validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// An operation has no start time.
    Unscheduled(OpId),
    /// An edge `(p, q)` where `q` starts before `p` finishes.
    PrecedenceViolation(OpId, OpId),
    /// A resource-consuming operation has no unit.
    NoUnit(OpId),
    /// An operation was bound to a unit of the wrong class.
    WrongUnitClass(OpId, usize),
    /// Two operations overlap on the same unit.
    UnitOverlap(OpId, OpId, usize),
    /// An operation references a unit index outside the resource set.
    UnknownUnit(OpId, usize),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unscheduled(v) => write!(f, "operation {v} has no start time"),
            ScheduleError::PrecedenceViolation(p, q) => {
                write!(f, "operation {q} starts before its predecessor {p} finishes")
            }
            ScheduleError::NoUnit(v) => write!(f, "operation {v} has no functional unit"),
            ScheduleError::WrongUnitClass(v, u) => {
                write!(f, "operation {v} bound to incompatible unit {u}")
            }
            ScheduleError::UnitOverlap(a, b, u) => {
                write!(f, "operations {a} and {b} overlap on unit {u}")
            }
            ScheduleError::UnknownUnit(v, u) => {
                write!(f, "operation {v} bound to unknown unit {u}")
            }
        }
    }
}

impl Error for ScheduleError {}

/// Checks that `sched` is a legal hard schedule of `g` under `resources`:
/// complete, precedence-consistent, and with exclusive, class-compatible
/// unit usage.
///
/// # Errors
///
/// Returns the first violation found (deterministic order: completeness,
/// precedence, binding, overlap).
pub fn validate(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    sched: &HardSchedule,
) -> Result<(), ScheduleError> {
    for v in g.op_ids() {
        if sched.start(v).is_none() {
            return Err(ScheduleError::Unscheduled(v));
        }
    }
    for (p, q) in g.edges() {
        let pf = sched.finish(g, p).expect("checked above");
        let qs = sched.start(q).expect("checked above");
        if qs < pf {
            return Err(ScheduleError::PrecedenceViolation(p, q));
        }
    }
    let mut by_unit: Vec<Vec<(u64, u64, OpId)>> = vec![Vec::new(); resources.k()];
    for v in g.op_ids() {
        let needs_unit = g.kind(v).resource_class() != ResourceClass::Wire;
        match sched.unit(v) {
            None if needs_unit => return Err(ScheduleError::NoUnit(v)),
            None => {}
            Some(u) => {
                if u >= resources.k() {
                    return Err(ScheduleError::UnknownUnit(v, u));
                }
                if !resources.compatible(u, g.kind(v)) {
                    return Err(ScheduleError::WrongUnitClass(v, u));
                }
                let s = sched.start(v).expect("checked above");
                // Zero-delay ops never occupy the unit.
                if g.delay(v) > 0 {
                    by_unit[u].push((s, s + g.delay(v), v));
                }
            }
        }
    }
    for (u, intervals) in by_unit.iter_mut().enumerate() {
        intervals.sort();
        for w in intervals.windows(2) {
            let (_, fin, a) = w[0];
            let (start, _, b) = w[1];
            if start < fin {
                return Err(ScheduleError::UnitOverlap(a, b, u));
            }
        }
    }
    Ok(())
}

/// Formats `sched` as a step-by-step table (one line per control step,
/// listing the operations that start there), for reports and examples.
pub fn format_steps(g: &PrecedenceGraph, sched: &HardSchedule) -> String {
    use std::fmt::Write as _;
    let mut by_step: Vec<(u64, OpId)> = g
        .op_ids()
        .filter_map(|v| sched.start(v).map(|s| (s, v)))
        .collect();
    by_step.sort();
    let mut out = String::new();
    let mut cur: Option<u64> = None;
    for (s, v) in by_step {
        if cur != Some(s) {
            if cur.is_some() {
                out.push('\n');
            }
            let _ = write!(out, "step {s:>3}:");
            cur = Some(s);
        }
        let unit = match sched.unit(v) {
            Some(u) => format!("@u{u}"),
            None => String::new(),
        };
        let _ = write!(out, " {}({}){}", g.label(v), g.kind(v), unit);
    }
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Modulo (loop-pipelined) schedules.
// ---------------------------------------------------------------------

/// A modulo schedule: one loop iteration's operation → (start, unit)
/// mapping, issued anew every `ii` (*initiation interval*) control
/// steps. Iteration `i` of operation `v` starts at `start(v) + i·ii`
/// on the same unit, so the steady-state throughput is one iteration
/// per `ii` steps regardless of the single-iteration latency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuloSchedule {
    ii: u64,
    start: Vec<Option<u64>>,
    unit: Vec<Option<usize>>,
}

impl ModuloSchedule {
    /// An empty modulo schedule for `n` operations at interval `ii`.
    pub fn new(n: usize, ii: u64) -> Self {
        ModuloSchedule {
            ii,
            start: vec![None; n],
            unit: vec![None; n],
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u64 {
        self.ii
    }

    /// Number of operation slots.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// `true` if the schedule covers zero operations.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Assigns `v` a start step (iteration-0 time) and optional unit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: OpId, start: u64, unit: Option<usize>) {
        self.start[v.index()] = Some(start);
        self.unit[v.index()] = unit;
    }

    /// Clears the assignment of `v` (used by schedulers that evict and
    /// re-place operations).
    pub fn unassign(&mut self, v: OpId) {
        self.start[v.index()] = None;
        self.unit[v.index()] = None;
    }

    /// The iteration-0 start step of `v`, if assigned.
    pub fn start(&self, v: OpId) -> Option<u64> {
        self.start.get(v.index()).copied().flatten()
    }

    /// The functional unit of `v`, if any.
    pub fn unit(&self, v: OpId) -> Option<usize> {
        self.unit.get(v.index()).copied().flatten()
    }

    /// Single-iteration latency: `max(start + delay)` over assigned
    /// operations (the pipeline's fill depth; 0 when nothing is
    /// assigned). Throughput is governed by [`ModuloSchedule::ii`], not
    /// by this.
    pub fn latency(&self, g: &PrecedenceGraph) -> u64 {
        g.op_ids()
            .filter_map(|v| self.start(v).map(|s| s + g.delay(v)))
            .max()
            .unwrap_or(0)
    }

    /// The iteration-0 slice as an ordinary [`HardSchedule`] over the
    /// kernel DAG. Sound because modulo exclusivity implies flat
    /// exclusivity (two operations whose slot sets are disjoint mod
    /// `ii` never overlap in absolute time either) and every
    /// distance-0 edge is honoured verbatim — so a schedule accepted
    /// by [`check_modulo`] yields a slice [`validate`] accepts against
    /// [`PrecedenceGraph::kernel_dag`].
    pub fn iteration_slice(&self) -> HardSchedule {
        let mut hard = HardSchedule::new(self.len());
        for i in 0..self.len() {
            if let Some(s) = self.start[i] {
                hard.assign(OpId::from_index(i), s, self.unit[i]);
            }
        }
        hard
    }
}

/// Violations reported by [`check_modulo`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModuloError {
    /// The initiation interval is zero.
    ZeroII,
    /// An operation has no start time.
    Unscheduled(OpId),
    /// An edge `(p, q, dist)` with `start(q) + II·dist < start(p) +
    /// delay(p)`: the consumer fires before the producer's value (from
    /// `dist` iterations earlier) exists.
    RecurrenceViolation(OpId, OpId),
    /// A resource-consuming operation has no unit.
    NoUnit(OpId),
    /// An operation was bound to a unit of the wrong class.
    WrongUnitClass(OpId, usize),
    /// An operation references a unit index outside the resource set.
    UnknownUnit(OpId, usize),
    /// An operation's delay exceeds the II: on a non-pipelined unit it
    /// would collide with its own next iteration.
    SelfOverlap(OpId),
    /// Two operations claim the same unit slot modulo the II.
    UnitOverlap(OpId, OpId, usize),
}

impl fmt::Display for ModuloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuloError::ZeroII => write!(f, "initiation interval is zero"),
            ModuloError::Unscheduled(v) => write!(f, "operation {v} has no start time"),
            ModuloError::RecurrenceViolation(p, q) => {
                write!(f, "operation {q} starts before its recurrence source {p} finishes")
            }
            ModuloError::NoUnit(v) => write!(f, "operation {v} has no functional unit"),
            ModuloError::WrongUnitClass(v, u) => {
                write!(f, "operation {v} bound to incompatible unit {u}")
            }
            ModuloError::UnknownUnit(v, u) => {
                write!(f, "operation {v} bound to unknown unit {u}")
            }
            ModuloError::SelfOverlap(v) => {
                write!(f, "operation {v} outlasts the initiation interval on its unit")
            }
            ModuloError::UnitOverlap(a, b, u) => {
                write!(f, "operations {a} and {b} collide modulo the II on unit {u}")
            }
        }
    }
}

impl Error for ModuloError {}

/// Checks that `ms` is a legal modulo schedule of the loop kernel `g`
/// under `resources`, cycle-accurately:
///
/// * **complete** — every operation has a start time;
/// * **recurrence-aware precedence** — for every edge `(p, q)` with
///   inter-iteration distance `d`: `start(q) + II·d ≥ start(p) +
///   delay(p)` (distance 0 degenerates to the ordinary acyclic rule);
/// * **wrap-around resource exclusion** — each positive-delay
///   operation occupies its unit at slots `(start + 0..delay) mod II`,
///   and no two operations (nor an operation and its own next
///   iteration, i.e. `delay ≤ II`) may claim the same slot.
///
/// Agreement with flat simulation: [`unroll`] the kernel for
/// [`unroll_iterations`] iterations and [`validate`] the flat schedule
/// — `check_modulo` accepts iff the oracle does (the property pinned
/// by the fuzzed differential harness).
///
/// # Errors
///
/// Returns the first violation found (deterministic order:
/// completeness, precedence, binding, overlap — each in operation /
/// edge-iteration order).
pub fn check_modulo(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    ms: &ModuloSchedule,
) -> Result<(), ModuloError> {
    if ms.ii() == 0 {
        return Err(ModuloError::ZeroII);
    }
    let ii = ms.ii();
    for v in g.op_ids() {
        if ms.start(v).is_none() {
            return Err(ModuloError::Unscheduled(v));
        }
    }
    for (p, q, d) in g.edges_dist() {
        let pf = ms.start(p).expect("checked above") + g.delay(p);
        let qs = ms.start(q).expect("checked above");
        if qs.saturating_add(ii.saturating_mul(u64::from(d))) < pf {
            return Err(ModuloError::RecurrenceViolation(p, q));
        }
    }
    // Wrap-around reservation: one slot table of `ii` entries per unit.
    let mut table: Vec<Vec<Option<OpId>>> = vec![Vec::new(); resources.k()];
    for v in g.op_ids() {
        let needs_unit = g.kind(v).resource_class() != ResourceClass::Wire;
        match ms.unit(v) {
            None if needs_unit => return Err(ModuloError::NoUnit(v)),
            None => {}
            Some(u) => {
                if u >= resources.k() {
                    return Err(ModuloError::UnknownUnit(v, u));
                }
                if !resources.compatible(u, g.kind(v)) {
                    return Err(ModuloError::WrongUnitClass(v, u));
                }
                let delay = g.delay(v);
                // Zero-delay ops never occupy the unit (same convention
                // as the acyclic `validate`).
                if delay == 0 {
                    continue;
                }
                if delay > ii {
                    return Err(ModuloError::SelfOverlap(v));
                }
                let slots = &mut table[u];
                if slots.is_empty() {
                    slots.resize(ii as usize, None);
                }
                let s = ms.start(v).expect("checked above");
                for off in 0..delay {
                    let slot = ((s + off) % ii) as usize;
                    match slots[slot] {
                        Some(w) => return Err(ModuloError::UnitOverlap(w, v, u)),
                        None => slots[slot] = Some(v),
                    }
                }
            }
        }
    }
    Ok(())
}

/// A sufficient unroll depth for [`unroll`] to be an exact oracle for
/// [`check_modulo`]: deep enough that (1) every loop-carried edge is
/// instantiated at least once and (2) any two operations whose slots
/// collide modulo the II meet in absolute time within the window — the
/// start-time spread divided by the II bounds how many iterations the
/// colliding pair can be offset by.
pub fn unroll_iterations(g: &PrecedenceGraph, ms: &ModuloSchedule) -> usize {
    let ii = ms.ii().max(1);
    let starts: Vec<u64> = g.op_ids().filter_map(|v| ms.start(v)).collect();
    let spread = match (starts.iter().min(), starts.iter().max()) {
        (Some(&lo), Some(&hi)) => hi - lo,
        _ => 0,
    };
    (spread / ii) as usize + g.max_distance() as usize + 2
}

/// Flattens `iters` loop iterations of `g` under `ms` into an ordinary
/// acyclic graph and [`HardSchedule`]: operation `v` of iteration `i`
/// becomes a fresh vertex starting at `start(v) + i·II` on `v`'s unit,
/// and every edge `(p, q, d)` becomes the flat edges `p_i → q_{i+d}`.
/// Feeding the result to [`validate`] is the unrolled-simulation oracle
/// that cross-checks [`check_modulo`]; use
/// [`unroll_iterations`] for a depth at which the two provably agree.
///
/// Operations the schedule leaves unassigned stay unassigned in the
/// flat schedule (so [`validate`] rejects incompleteness the same way
/// [`check_modulo`] does).
pub fn unroll(
    g: &PrecedenceGraph,
    ms: &ModuloSchedule,
    iters: usize,
) -> (PrecedenceGraph, HardSchedule) {
    let n = g.len();
    let mut flat = PrecedenceGraph::with_capacity(n * iters);
    let mut sched = HardSchedule::new(n * iters);
    for i in 0..iters {
        for v in g.op_ids() {
            let id = flat.add_op(g.kind(v), g.delay(v), format!("{}#{i}", g.label(v)));
            debug_assert_eq!(id.index(), i * n + v.index());
            if let Some(s) = ms.start(v) {
                sched.assign(id, s + (i as u64) * ms.ii(), ms.unit(v));
            }
        }
    }
    for (p, q, d) in g.edges_dist() {
        for i in 0..iters {
            let j = i + d as usize;
            if j >= iters {
                break;
            }
            flat.add_edge(
                OpId::from_index(i * n + p.index()),
                OpId::from_index(j * n + q.index()),
            )
            .expect("unrolled edges connect existing iterations");
        }
    }
    (flat, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn two_op_graph() -> (PrecedenceGraph, OpId, OpId) {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        (g, a, b)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Ok(()));
        assert_eq!(s.length(&g), 3);
        assert_eq!(s.finish(&g, a), Some(2));
    }

    #[test]
    fn missing_op_is_reported() {
        let (g, a, _) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        assert!(matches!(
            validate(&g, &r, &s),
            Err(ScheduleError::Unscheduled(_))
        ));
    }

    #[test]
    fn precedence_violation_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 1, Some(0)); // a finishes at 2
        assert_eq!(
            validate(&g, &r, &s),
            Err(ScheduleError::PrecedenceViolation(a, b))
        );
    }

    #[test]
    fn wrong_unit_class_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0)); // mul on the ALU
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::WrongUnitClass(a, 0)));
    }

    #[test]
    fn overlap_on_unit_is_reported() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let r = ResourceSet::classic(0, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0));
        s.assign(b, 1, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::UnitOverlap(a, b, 0)));
        // Back-to-back is fine.
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Ok(()));
    }

    #[test]
    fn wire_ops_need_no_unit() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        g.add_edge(a, w).unwrap();
        let r = ResourceSet::classic(1, 0);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0));
        s.assign(w, 1, None);
        assert_eq!(validate(&g, &r, &s), Ok(()));
    }

    #[test]
    fn unknown_unit_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(7));
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::UnknownUnit(a, 7)));
    }

    #[test]
    fn shift_from_opens_a_gap() {
        let (g, a, b) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        s.shift_from(2, 3);
        assert_eq!(s.start(a), Some(0));
        assert_eq!(s.start(b), Some(5));
        assert_eq!(s.length(&g), 6);
    }

    #[test]
    fn grow_preserves_existing_assignments() {
        let (g, a, _) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 4, None);
        s.grow(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.start(a), Some(4));
        s.grow(3);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn format_steps_lists_ops_by_step() {
        let (g, a, b) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        let text = format_steps(&g, &s);
        assert!(text.contains("step   0: a(*)@u1"));
        assert!(text.contains("step   2: b(+)@u0"));
    }

    /// An IIR-style two-op recurrence: `acc = acc + in` with the add
    /// feeding itself at distance 1.
    fn accum_kernel() -> (PrecedenceGraph, OpId, OpId) {
        let mut g = PrecedenceGraph::new();
        let m = g.add_op(OpKind::Mul, 2, "m");
        let a = g.add_op(OpKind::Add, 1, "a");
        g.add_edge(m, a).unwrap();
        g.add_dep_edge(a, a, 1).unwrap();
        (g, m, a)
    }

    #[test]
    fn valid_modulo_schedule_passes_and_unrolls() {
        let (g, m, a) = accum_kernel();
        let r = ResourceSet::classic(1, 1);
        let mut ms = ModuloSchedule::new(g.len(), 2);
        ms.assign(m, 0, Some(1));
        ms.assign(a, 2, Some(0));
        assert_eq!(check_modulo(&g, &r, &ms), Ok(()));
        assert_eq!(ms.latency(&g), 3);
        let iters = unroll_iterations(&g, &ms);
        let (flat, fs) = unroll(&g, &ms, iters);
        assert_eq!(validate(&flat, &r, &fs), Ok(()));
        // The iteration-0 slice is a legal acyclic schedule of the
        // kernel DAG.
        assert_eq!(
            validate(&g.kernel_dag(), &r, &ms.iteration_slice()),
            Ok(())
        );
    }

    #[test]
    fn recurrence_violation_is_reported() {
        let (g, m, a) = accum_kernel();
        let r = ResourceSet::classic(1, 1);
        // II=2: the add finishes at start+1, its next iteration starts
        // at start+2 >= start+1 — fine. But placing the add before the
        // mul's result violates the distance-0 edge.
        let mut ms = ModuloSchedule::new(g.len(), 2);
        ms.assign(m, 0, Some(1));
        ms.assign(a, 1, Some(0));
        assert_eq!(
            check_modulo(&g, &r, &ms),
            Err(ModuloError::RecurrenceViolation(m, a))
        );
    }

    #[test]
    fn self_recurrence_bounds_the_ii() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        // Distance 2 keeps the recurrence lax (t(a) + II·2 ≥ t(a) + 2
        // already at II=1) so the *resource* self-conflict is what II=1
        // trips over: a 2-cycle op on a non-pipelined unit collides
        // with its own next issue.
        g.add_dep_edge(a, a, 2).unwrap();
        let r = ResourceSet::classic(0, 1);
        let mut ms = ModuloSchedule::new(g.len(), 1);
        ms.assign(a, 0, Some(0));
        assert_eq!(check_modulo(&g, &r, &ms), Err(ModuloError::SelfOverlap(a)));
        // II=2 fits the delay.
        let mut ms2 = ModuloSchedule::new(g.len(), 2);
        ms2.assign(a, 0, Some(0));
        assert_eq!(check_modulo(&g, &r, &ms2), Ok(()));
        // And a distance-1 self recurrence at II=1 fails on the
        // recurrence itself (checked before binding).
        let mut h = PrecedenceGraph::new();
        let b = h.add_op(OpKind::Mul, 2, "b");
        h.add_dep_edge(b, b, 1).unwrap();
        let mut ms3 = ModuloSchedule::new(h.len(), 1);
        ms3.assign(b, 0, Some(0));
        assert_eq!(
            check_modulo(&h, &r, &ms3),
            Err(ModuloError::RecurrenceViolation(b, b))
        );
    }

    #[test]
    fn wraparound_overlap_is_reported() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let r = ResourceSet::classic(0, 1);
        let mut ms = ModuloSchedule::new(g.len(), 3);
        ms.assign(a, 0, Some(0)); // slots {0, 1}
        ms.assign(b, 2, Some(0)); // slots {2, 0} — wraps onto a
        assert_eq!(
            check_modulo(&g, &r, &ms),
            Err(ModuloError::UnitOverlap(a, b, 0))
        );
        // II=4 separates them: {0,1} vs {2,3}.
        let mut ms2 = ModuloSchedule::new(g.len(), 4);
        ms2.assign(a, 0, Some(0));
        ms2.assign(b, 2, Some(0));
        assert_eq!(check_modulo(&g, &r, &ms2), Ok(()));
    }

    #[test]
    fn zero_ii_and_incompleteness_are_reported() {
        let (g, m, _) = accum_kernel();
        let r = ResourceSet::classic(1, 1);
        let ms = ModuloSchedule::new(g.len(), 0);
        assert_eq!(check_modulo(&g, &r, &ms), Err(ModuloError::ZeroII));
        let mut ms = ModuloSchedule::new(g.len(), 2);
        ms.assign(m, 0, Some(1));
        assert!(matches!(
            check_modulo(&g, &r, &ms),
            Err(ModuloError::Unscheduled(_))
        ));
    }

    #[test]
    fn unassign_reopens_the_slot() {
        let (g, m, a) = accum_kernel();
        let mut ms = ModuloSchedule::new(g.len(), 2);
        ms.assign(m, 0, Some(1));
        ms.assign(a, 2, Some(0));
        ms.unassign(a);
        assert_eq!(ms.start(a), None);
        assert_eq!(ms.unit(a), None);
        assert_eq!(ms.start(m), Some(0));
    }

    #[test]
    fn unroll_instantiates_loop_edges_across_iterations() {
        let (g, m, a) = accum_kernel();
        let mut ms = ModuloSchedule::new(g.len(), 2);
        ms.assign(m, 0, Some(1));
        ms.assign(a, 2, Some(0));
        let (flat, _) = unroll(&g, &ms, 3);
        assert_eq!(flat.len(), 6);
        // Each iteration keeps its intra-iteration edge...
        for i in 0..3usize {
            assert!(flat.has_edge(
                OpId::from_index(i * 2 + m.index()),
                OpId::from_index(i * 2 + a.index())
            ));
        }
        // ...and the accumulator chains across consecutive iterations.
        assert!(flat.has_edge(OpId::from_index(a.index()), OpId::from_index(2 + a.index())));
        assert!(flat.has_edge(OpId::from_index(2 + a.index()), OpId::from_index(4 + a.index())));
        assert!(flat.validate().is_ok());
    }

    #[test]
    fn length_of_empty_schedule_is_zero() {
        let g = PrecedenceGraph::new();
        let s = HardSchedule::new(0);
        assert!(s.is_empty());
        assert_eq!(s.length(&g), 0);
    }
}
