//! Hard schedules: the final operation → time-step mapping.
//!
//! A *hard* schedule (the paper's traditional notion) assigns every
//! operation a start step and, for resource-consuming operations, a
//! functional unit. Both the baseline schedulers and the threaded
//! scheduler's extraction produce this type; [`validate`] checks the
//! precedence and resource-exclusion conditions that make it legal.

use crate::{OpId, PrecedenceGraph, ResourceClass, ResourceSet};
use std::error::Error;
use std::fmt;

/// A complete operation → (start step, unit) assignment for one graph.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HardSchedule {
    start: Vec<Option<u64>>,
    unit: Vec<Option<usize>>,
}

impl HardSchedule {
    /// An empty schedule for a graph of `n` operations.
    pub fn new(n: usize) -> Self {
        HardSchedule {
            start: vec![None; n],
            unit: vec![None; n],
        }
    }

    /// Number of operation slots.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// `true` if the schedule covers zero operations.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Assigns `v` a start step and optional unit.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn assign(&mut self, v: OpId, start: u64, unit: Option<usize>) {
        self.start[v.index()] = Some(start);
        self.unit[v.index()] = unit;
    }

    /// The start step of `v`, if assigned.
    pub fn start(&self, v: OpId) -> Option<u64> {
        self.start.get(v.index()).copied().flatten()
    }

    /// The functional unit of `v`, if any.
    pub fn unit(&self, v: OpId) -> Option<usize> {
        self.unit.get(v.index()).copied().flatten()
    }

    /// The finish step of `v` (start + delay), if assigned.
    pub fn finish(&self, g: &PrecedenceGraph, v: OpId) -> Option<u64> {
        self.start(v).map(|s| s + g.delay(v))
    }

    /// Schedule length in control steps: `max(start + delay)` over all
    /// assigned operations (0 when nothing is assigned).
    pub fn length(&self, g: &PrecedenceGraph) -> u64 {
        g.op_ids()
            .filter_map(|v| self.finish(g, v))
            .max()
            .unwrap_or(0)
    }

    /// Shifts every operation starting at or after `at` down by `by`
    /// steps. This is the "trivial fix" of the paper's Figure 1(c)/(d):
    /// new rows are opened in the middle of a fixed schedule.
    pub fn shift_from(&mut self, at: u64, by: u64) {
        for s in self.start.iter_mut().flatten() {
            if *s >= at {
                *s += by;
            }
        }
    }

    /// Grows the slot vectors to cover a graph that gained operations.
    pub fn grow(&mut self, n: usize) {
        if n > self.start.len() {
            self.start.resize(n, None);
            self.unit.resize(n, None);
        }
    }
}

/// Violations reported by [`validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// An operation has no start time.
    Unscheduled(OpId),
    /// An edge `(p, q)` where `q` starts before `p` finishes.
    PrecedenceViolation(OpId, OpId),
    /// A resource-consuming operation has no unit.
    NoUnit(OpId),
    /// An operation was bound to a unit of the wrong class.
    WrongUnitClass(OpId, usize),
    /// Two operations overlap on the same unit.
    UnitOverlap(OpId, OpId, usize),
    /// An operation references a unit index outside the resource set.
    UnknownUnit(OpId, usize),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unscheduled(v) => write!(f, "operation {v} has no start time"),
            ScheduleError::PrecedenceViolation(p, q) => {
                write!(f, "operation {q} starts before its predecessor {p} finishes")
            }
            ScheduleError::NoUnit(v) => write!(f, "operation {v} has no functional unit"),
            ScheduleError::WrongUnitClass(v, u) => {
                write!(f, "operation {v} bound to incompatible unit {u}")
            }
            ScheduleError::UnitOverlap(a, b, u) => {
                write!(f, "operations {a} and {b} overlap on unit {u}")
            }
            ScheduleError::UnknownUnit(v, u) => {
                write!(f, "operation {v} bound to unknown unit {u}")
            }
        }
    }
}

impl Error for ScheduleError {}

/// Checks that `sched` is a legal hard schedule of `g` under `resources`:
/// complete, precedence-consistent, and with exclusive, class-compatible
/// unit usage.
///
/// # Errors
///
/// Returns the first violation found (deterministic order: completeness,
/// precedence, binding, overlap).
pub fn validate(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    sched: &HardSchedule,
) -> Result<(), ScheduleError> {
    for v in g.op_ids() {
        if sched.start(v).is_none() {
            return Err(ScheduleError::Unscheduled(v));
        }
    }
    for (p, q) in g.edges() {
        let pf = sched.finish(g, p).expect("checked above");
        let qs = sched.start(q).expect("checked above");
        if qs < pf {
            return Err(ScheduleError::PrecedenceViolation(p, q));
        }
    }
    let mut by_unit: Vec<Vec<(u64, u64, OpId)>> = vec![Vec::new(); resources.k()];
    for v in g.op_ids() {
        let needs_unit = g.kind(v).resource_class() != ResourceClass::Wire;
        match sched.unit(v) {
            None if needs_unit => return Err(ScheduleError::NoUnit(v)),
            None => {}
            Some(u) => {
                if u >= resources.k() {
                    return Err(ScheduleError::UnknownUnit(v, u));
                }
                if !resources.compatible(u, g.kind(v)) {
                    return Err(ScheduleError::WrongUnitClass(v, u));
                }
                let s = sched.start(v).expect("checked above");
                // Zero-delay ops never occupy the unit.
                if g.delay(v) > 0 {
                    by_unit[u].push((s, s + g.delay(v), v));
                }
            }
        }
    }
    for (u, intervals) in by_unit.iter_mut().enumerate() {
        intervals.sort();
        for w in intervals.windows(2) {
            let (_, fin, a) = w[0];
            let (start, _, b) = w[1];
            if start < fin {
                return Err(ScheduleError::UnitOverlap(a, b, u));
            }
        }
    }
    Ok(())
}

/// Formats `sched` as a step-by-step table (one line per control step,
/// listing the operations that start there), for reports and examples.
pub fn format_steps(g: &PrecedenceGraph, sched: &HardSchedule) -> String {
    use std::fmt::Write as _;
    let mut by_step: Vec<(u64, OpId)> = g
        .op_ids()
        .filter_map(|v| sched.start(v).map(|s| (s, v)))
        .collect();
    by_step.sort();
    let mut out = String::new();
    let mut cur: Option<u64> = None;
    for (s, v) in by_step {
        if cur != Some(s) {
            if cur.is_some() {
                out.push('\n');
            }
            let _ = write!(out, "step {s:>3}:");
            cur = Some(s);
        }
        let unit = match sched.unit(v) {
            Some(u) => format!("@u{u}"),
            None => String::new(),
        };
        let _ = write!(out, " {}({}){}", g.label(v), g.kind(v), unit);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn two_op_graph() -> (PrecedenceGraph, OpId, OpId) {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, b).unwrap();
        (g, a, b)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Ok(()));
        assert_eq!(s.length(&g), 3);
        assert_eq!(s.finish(&g, a), Some(2));
    }

    #[test]
    fn missing_op_is_reported() {
        let (g, a, _) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        assert!(matches!(
            validate(&g, &r, &s),
            Err(ScheduleError::Unscheduled(_))
        ));
    }

    #[test]
    fn precedence_violation_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 1, Some(0)); // a finishes at 2
        assert_eq!(
            validate(&g, &r, &s),
            Err(ScheduleError::PrecedenceViolation(a, b))
        );
    }

    #[test]
    fn wrong_unit_class_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0)); // mul on the ALU
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::WrongUnitClass(a, 0)));
    }

    #[test]
    fn overlap_on_unit_is_reported() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Mul, 2, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let r = ResourceSet::classic(0, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0));
        s.assign(b, 1, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::UnitOverlap(a, b, 0)));
        // Back-to-back is fine.
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Ok(()));
    }

    #[test]
    fn wire_ops_need_no_unit() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        g.add_edge(a, w).unwrap();
        let r = ResourceSet::classic(1, 0);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(0));
        s.assign(w, 1, None);
        assert_eq!(validate(&g, &r, &s), Ok(()));
    }

    #[test]
    fn unknown_unit_is_reported() {
        let (g, a, b) = two_op_graph();
        let r = ResourceSet::classic(1, 1);
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(7));
        s.assign(b, 2, Some(0));
        assert_eq!(validate(&g, &r, &s), Err(ScheduleError::UnknownUnit(a, 7)));
    }

    #[test]
    fn shift_from_opens_a_gap() {
        let (g, a, b) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        s.shift_from(2, 3);
        assert_eq!(s.start(a), Some(0));
        assert_eq!(s.start(b), Some(5));
        assert_eq!(s.length(&g), 6);
    }

    #[test]
    fn grow_preserves_existing_assignments() {
        let (g, a, _) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 4, None);
        s.grow(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.start(a), Some(4));
        s.grow(3);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn format_steps_lists_ops_by_step() {
        let (g, a, b) = two_op_graph();
        let mut s = HardSchedule::new(g.len());
        s.assign(a, 0, Some(1));
        s.assign(b, 2, Some(0));
        let text = format_steps(&g, &s);
        assert!(text.contains("step   0: a(*)@u1"));
        assert!(text.contains("step   2: b(+)@u0"));
    }

    #[test]
    fn length_of_empty_schedule_is_zero() {
        let g = PrecedenceGraph::new();
        let s = HardSchedule::new(0);
        assert!(s.is_empty());
        assert_eq!(s.length(&g), 0);
    }
}
