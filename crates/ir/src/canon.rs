//! Canonical content hashing of precedence graphs.
//!
//! The scheduler-as-a-service layer (`crates/serve`) keys its schedule
//! cache on *what a graph means to the schedulers*, not on the bytes it
//! arrived in. Two graphs are **canonically equal** when they agree on
//! everything the scheduling engines read — operation count, kinds,
//! delays, and the edge set with carried distances — while labels,
//! operand expressions and the textual formatting (comments, blank
//! lines, label spelling) are free to differ. A resubmitted graph whose
//! labels were renamed hashes identically and hits the cache.
//!
//! [`graph_hash`] folds that canonical form into a 128-bit digest
//! (two independently-seeded 64-bit FNV-1a streams). The hash is fast
//! and deterministic but **not** cryptographic: an adversary who wants
//! a collision can construct one. Consumers must therefore treat the
//! digest as an *index*, never as proof of identity — the serve cache
//! stores the canonical graph alongside each entry and confirms a hit
//! with [`canon_eq`] before answering from it, so a collision costs one
//! wasted probe, not a wrong schedule.

use crate::PrecedenceGraph;

/// A 128-bit streaming hasher: two 64-bit FNV-1a streams with distinct
/// offset bases, fed the same bytes. Used for the canonical graph
/// digest and, by the serve layer, to fold the server's resource
/// configuration into its cache key.
#[derive(Clone, Debug)]
pub struct CanonHasher {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
// A second, independent offset basis (the golden-ratio constant) so the
// two streams decorrelate.
const OFFSET_B: u64 = 0x9E37_79B9_7F4A_7C15;

impl CanonHasher {
    /// A fresh hasher.
    pub fn new() -> CanonHasher {
        CanonHasher {
            a: OFFSET_A,
            b: OFFSET_B,
        }
    }

    /// Folds raw bytes into both streams.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into both streams.
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Folds a `usize` into both streams.
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

impl Default for CanonHasher {
    fn default() -> Self {
        CanonHasher::new()
    }
}

/// Folds the canonical form of `g` into `h` (see the [module
/// docs](self) for what "canonical" covers).
pub fn write_graph(h: &mut CanonHasher, g: &PrecedenceGraph) {
    h.write_usize(g.len());
    for v in g.op_ids() {
        h.write_u64(g.kind(v) as u64);
        h.write_u64(g.delay(v));
    }
    h.write_usize(g.edge_count());
    for (a, b, d) in g.edges_dist() {
        h.write_usize(a.index());
        h.write_usize(b.index());
        h.write_u64(u64::from(d));
    }
}

/// The 128-bit canonical digest of `g` alone.
pub fn graph_hash(g: &PrecedenceGraph) -> u128 {
    let mut h = CanonHasher::new();
    write_graph(&mut h, g);
    h.finish()
}

/// Canonical equality: same operation count, kinds, delays and edge
/// set (with carried distances). Labels and operands are ignored —
/// they do not affect scheduling. This is the collision-proof check
/// behind every cache hit keyed by [`graph_hash`].
pub fn canon_eq(x: &PrecedenceGraph, y: &PrecedenceGraph) -> bool {
    if x.len() != y.len() || x.edge_count() != y.edge_count() {
        return false;
    }
    for v in x.op_ids() {
        if x.kind(v) != y.kind(v) || x.delay(v) != y.delay(v) {
            return false;
        }
    }
    // Edge iteration order is per-op adjacency order, which can differ
    // between two graphs built by different routes; compare sorted.
    let mut ex: Vec<(usize, usize, u32)> =
        x.edges_dist().map(|(a, b, d)| (a.index(), b.index(), d)).collect();
    let mut ey: Vec<(usize, usize, u32)> =
        y.edges_dist().map(|(a, b, d)| (a.index(), b.index(), d)).collect();
    ex.sort_unstable();
    ey.sort_unstable();
    ex == ey
}

/// Renders a digest as 32 lowercase hex digits (the wire spelling the
/// serve protocol's `base=` field uses).
pub fn hash_to_hex(h: u128) -> String {
    format!("{h:032x}")
}

/// Parses the 32-hex-digit spelling back into a digest.
pub fn hash_from_hex(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_graphs, generate, OpKind};

    #[test]
    fn hash_ignores_labels_and_operands() {
        let g = bench_graphs::ewf();
        // Rebuild with different labels.
        let mut renamed = PrecedenceGraph::new();
        for v in g.op_ids() {
            renamed.add_op(g.kind(v), g.delay(v), format!("renamed_{}", v.index()));
        }
        for (a, b, d) in g.edges_dist() {
            renamed.add_dep_edge(a, b, d).unwrap();
        }
        assert_eq!(graph_hash(&g), graph_hash(&renamed));
        assert!(canon_eq(&g, &renamed));
    }

    #[test]
    fn hash_sees_kinds_delays_and_edges() {
        let g = bench_graphs::hal();
        let base = graph_hash(&g);

        let mut kinded = g.clone();
        let v = kinded.op_ids().next().unwrap();
        kinded.set_kind(v, OpKind::Logic);
        assert_ne!(graph_hash(&kinded), base);

        let mut delayed = g.clone();
        let v = delayed.op_ids().next().unwrap();
        delayed.set_delay(v, 17);
        assert_ne!(graph_hash(&delayed), base);
        assert!(!canon_eq(&delayed, &g));
    }

    #[test]
    fn hash_sees_carried_distance() {
        let mk = |d: u32| {
            let mut g = PrecedenceGraph::new();
            let a = g.add_op(OpKind::Mul, 2, "a");
            let b = g.add_op(OpKind::Add, 1, "b");
            g.add_edge(a, b).unwrap();
            g.add_dep_edge(b, a, d).unwrap();
            g
        };
        assert_ne!(graph_hash(&mk(1)), graph_hash(&mk(2)));
        assert!(!canon_eq(&mk(1), &mk(2)));
    }

    #[test]
    fn distinct_random_graphs_do_not_collide_in_practice() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for seed in 0..64u64 {
            let g = generate::stress_dag(seed, 40);
            assert!(seen.insert(graph_hash(&g)), "collision at seed {seed}");
        }
    }

    #[test]
    fn hex_spelling_roundtrips() {
        let h = graph_hash(&bench_graphs::fir());
        let hex = hash_to_hex(h);
        assert_eq!(hex.len(), 32);
        assert_eq!(hash_from_hex(&hex), Some(h));
        assert_eq!(hash_from_hex("xyz"), None);
        assert_eq!(hash_from_hex(""), None);
    }
}
