//! The precedence graph (Definition 1 of the paper).

use crate::{IrError, OpKind};
use std::fmt;

/// Identifier of an operation (vertex) inside a [`PrecedenceGraph`].
///
/// Ids are dense indices; they stay valid for the lifetime of the graph
/// (operations are never removed, matching the paper's model where
/// refinement only *adds* vertices).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u32);

impl OpId {
    /// Builds an id from a raw index. Intended for tables indexed by op.
    pub fn from_index(index: usize) -> Self {
        OpId(u32::try_from(index).expect("op index exceeds u32"))
    }

    /// The dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One ordered operand of an operation.
///
/// Dependence edges are unordered; operands carry the value semantics
/// (`a - b` vs `b - a`) needed by the simulator. Operations without
/// recorded operands are still schedulable — only simulation requires
/// them (see [`crate::sim_operands`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// The value produced by another operation.
    Op(OpId),
    /// A compile-time constant.
    Const(i64),
    /// A named primary input.
    Input(String),
}

#[derive(Clone, Debug)]
struct OpData {
    kind: OpKind,
    delay: u64,
    label: String,
    operands: Vec<Operand>,
}

/// A directed acyclic graph of operations with a delay function
/// (`G = <V_G, E_G, D_G>`, Definition 1).
///
/// Vertices are operations; edges are data/control dependencies. The partial
/// order `≺_G` induced by the graph is the transitive closure of its edges
/// (query it via [`crate::algo::transitive_closure`]).
///
/// The graph deliberately supports the *mutations that the paper's
/// refinement scenarios need*: adding operations, adding edges, and
/// splicing an operation chain onto an existing edge (spill code, wire
/// delays). Removal is not supported.
#[derive(Clone, Debug, Default)]
pub struct PrecedenceGraph {
    ops: Vec<OpData>,
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
    /// Inter-iteration distance of each outgoing edge, parallel to
    /// `succs`. Distance 0 is an ordinary intra-iteration dependency;
    /// a positive distance `d` means the consumer reads the value the
    /// producer computed `d` loop iterations earlier (a loop-carried
    /// dependency). Graphs whose every edge has distance 0 behave
    /// exactly as before this field existed.
    succ_dist: Vec<Vec<u32>>,
    edge_count: usize,
    /// Number of edges with positive distance.
    loop_edge_count: usize,
}

impl PrecedenceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        PrecedenceGraph {
            ops: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            succ_dist: Vec::with_capacity(n),
            edge_count: 0,
            loop_edge_count: 0,
        }
    }

    /// Number of operations `|V_G|`.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of edges `|E_G|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds an operation with an explicit delay and returns its id.
    pub fn add_op(&mut self, kind: OpKind, delay: u64, label: impl Into<String>) -> OpId {
        let id = OpId::from_index(self.ops.len());
        self.ops.push(OpData {
            kind,
            delay,
            label: label.into(),
            operands: Vec::new(),
        });
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.succ_dist.push(Vec::new());
        id
    }

    /// Records the ordered operands of `v` (value semantics for the
    /// simulator). Any [`Operand::Op`] operands must already be wired as
    /// edges by the caller.
    pub fn set_operands(&mut self, v: OpId, operands: Vec<Operand>) {
        self.ops[v.index()].operands = operands;
    }

    /// The ordered operands of `v`; empty if never recorded.
    pub fn operands(&self, v: OpId) -> &[Operand] {
        &self.ops[v.index()].operands
    }

    /// Adds an intra-iteration dependency edge `from -> to`
    /// (distance 0).
    ///
    /// Duplicate edges are ignored (the graph stays simple).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::SelfEdge`] for `from == to` and
    /// [`IrError::UnknownOp`] for out-of-range endpoints. Cycle creation is
    /// *not* checked here (it would be quadratic over a build); call
    /// [`PrecedenceGraph::validate`] once after construction.
    pub fn add_edge(&mut self, from: OpId, to: OpId) -> Result<(), IrError> {
        self.add_dep_edge(from, to, 0)
    }

    /// Adds a dependency edge `from -> to` with an inter-iteration
    /// `distance`: the value `to` consumes is the one `from` produced
    /// `distance` loop iterations earlier. Distance 0 is the ordinary
    /// same-iteration edge of [`PrecedenceGraph::add_edge`]; a positive
    /// distance makes the edge *loop-carried* and legal to close a
    /// recurrence cycle (the cycle's distance sum bounds the initiation
    /// interval from below — see `hls_ir::schedule::check_modulo`).
    ///
    /// If the edge already exists the *smaller* distance wins: it is
    /// the tighter precedence constraint (`t(to) ≥ t(from) + delay −
    /// II·distance`), so keeping it preserves every schedule the pair
    /// of edges would have admitted.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::SelfEdge`] for a *distance-0* self edge
    /// (`x[i] = f(x[i])` is not computable; `from == to` is legal for
    /// `distance ≥ 1`, the accumulator recurrence) and
    /// [`IrError::UnknownOp`] for out-of-range endpoints. Whether the
    /// distance-0 subgraph stays acyclic is *not* checked here; call
    /// [`PrecedenceGraph::validate_kernel`] once after construction.
    pub fn add_dep_edge(&mut self, from: OpId, to: OpId, distance: u32) -> Result<(), IrError> {
        if from == to && distance == 0 {
            return Err(IrError::SelfEdge(from));
        }
        self.check(from)?;
        self.check(to)?;
        if let Some(i) = self.succs[from.index()].iter().position(|&s| s == to) {
            let old = self.succ_dist[from.index()][i];
            if distance < old {
                self.succ_dist[from.index()][i] = distance;
                if old > 0 && distance == 0 {
                    self.loop_edge_count -= 1;
                }
            }
            return Ok(());
        }
        self.succs[from.index()].push(to);
        self.succ_dist[from.index()].push(distance);
        self.preds[to.index()].push(from);
        self.edge_count += 1;
        if distance > 0 {
            self.loop_edge_count += 1;
        }
        Ok(())
    }

    /// Removes the edge `from -> to` if present.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingEdge`] if the edge does not exist.
    pub fn remove_edge(&mut self, from: OpId, to: OpId) -> Result<(), IrError> {
        self.check(from)?;
        self.check(to)?;
        let spos = self.succs[from.index()].iter().position(|&s| s == to);
        match spos {
            None => Err(IrError::MissingEdge(from, to)),
            Some(i) => {
                self.succs[from.index()].swap_remove(i);
                let d = self.succ_dist[from.index()].swap_remove(i);
                if d > 0 {
                    self.loop_edge_count -= 1;
                }
                let j = self.preds[to.index()]
                    .iter()
                    .position(|&p| p == from)
                    .expect("pred/succ lists out of sync");
                self.preds[to.index()].swap_remove(j);
                self.edge_count -= 1;
                Ok(())
            }
        }
    }

    /// `true` if the edge `from -> to` exists.
    pub fn has_edge(&self, from: OpId, to: OpId) -> bool {
        from.index() < self.len() && self.succs[from.index()].contains(&to)
    }

    /// The inter-iteration distance of the edge `from -> to`, or `None`
    /// if the edge does not exist.
    pub fn dist(&self, from: OpId, to: OpId) -> Option<u32> {
        if from.index() >= self.len() {
            return None;
        }
        self.succs[from.index()]
            .iter()
            .position(|&s| s == to)
            .map(|i| self.succ_dist[from.index()][i])
    }

    /// Iterator over all edges as `(from, to, distance)` triples.
    pub fn edges_dist(&self) -> DistEdgeIter<'_> {
        DistEdgeIter {
            graph: self,
            from: 0,
            offset: 0,
        }
    }

    /// `true` if any edge carries a positive inter-iteration distance —
    /// the graph describes a loop body rather than a straight-line
    /// block, and only the modulo scheduler can honour it.
    pub fn has_loop_edges(&self) -> bool {
        self.loop_edge_count > 0
    }

    /// The largest inter-iteration distance of any edge (0 for a plain
    /// DAG). Bounds the unroll depth a flat simulation of the loop
    /// needs before reaching steady state.
    pub fn max_distance(&self) -> u32 {
        self.succ_dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// The *kernel DAG*: the same operations with only the distance-0
    /// (intra-iteration) edges. This is the acyclic one-iteration view
    /// that meta schedules, the threaded scheduler and the downstream
    /// flow operate on; the loop-carried edges it drops are exactly the
    /// ones only `t mod II` scheduling can honour. For a graph without
    /// loop edges this is a plain copy.
    pub fn kernel_dag(&self) -> PrecedenceGraph {
        let mut g = PrecedenceGraph::with_capacity(self.len());
        for v in self.op_ids() {
            let id = g.add_op(self.kind(v), self.delay(v), self.label(v));
            debug_assert_eq!(id, v);
            g.set_operands(id, self.operands(v).to_vec());
        }
        for (from, to, d) in self.edges_dist() {
            if d == 0 {
                g.add_edge(from, to).expect("ids copied verbatim");
            }
        }
        g
    }

    /// `true` if this graph *extends* `base`: the first `base.len()`
    /// operations agree on kind and delay (labels are free to differ),
    /// and the edge set restricted to those operations is identical
    /// (including carried distances). Extra operations and any edges
    /// touching them are the extension — exactly the shape of an
    /// engineering-change resubmission, which the serve layer's
    /// schedule cache replays incrementally instead of rescheduling
    /// from scratch.
    pub fn extends(&self, base: &PrecedenceGraph) -> bool {
        let n = base.len();
        if self.len() < n {
            return false;
        }
        for i in 0..n {
            let v = OpId::from_index(i);
            if self.kind(v) != base.kind(v) || self.delay(v) != base.delay(v) {
                return false;
            }
        }
        // Compare the induced edge sets on the first n ops as sorted
        // (from, to, dist) triples; adjacency order may differ.
        let induced = |g: &PrecedenceGraph| {
            let mut e: Vec<(usize, usize, u32)> = g
                .edges_dist()
                .filter(|&(a, b, _)| a.index() < n && b.index() < n)
                .map(|(a, b, d)| (a.index(), b.index(), d))
                .collect();
            e.sort_unstable();
            e
        };
        induced(self) == induced(base)
    }

    /// Checks that the graph is a well-formed *loop kernel*: every
    /// cycle must pass through at least one positive-distance edge —
    /// equivalently, the distance-0 subgraph (the
    /// [`kernel DAG`](PrecedenceGraph::kernel_dag)) is acyclic. Plain
    /// DAGs trivially pass.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Cycle`] carrying one vertex on a distance-0
    /// cycle.
    pub fn validate_kernel(&self) -> Result<(), IrError> {
        // Kahn's algorithm over the distance-0 subgraph.
        let mut indeg = vec![0usize; self.len()];
        for (_, to, d) in self.edges_dist() {
            if d == 0 {
                indeg[to.index()] += 1;
            }
        }
        let mut ready: Vec<OpId> = self
            .op_ids()
            .filter(|&v| indeg[v.index()] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(v) = ready.pop() {
            seen += 1;
            for (i, &q) in self.succs[v.index()].iter().enumerate() {
                if self.succ_dist[v.index()][i] == 0 {
                    indeg[q.index()] -= 1;
                    if indeg[q.index()] == 0 {
                        ready.push(q);
                    }
                }
            }
        }
        if seen == self.len() {
            Ok(())
        } else {
            let v = self
                .op_ids()
                .find(|&v| indeg[v.index()] > 0)
                .expect("some vertex is on the cycle");
            Err(IrError::Cycle(v))
        }
    }

    /// Splices a chain of new operations onto the edge `from -> to`,
    /// replacing it by `from -> chain[0] -> ... -> chain[n-1] -> to`.
    ///
    /// This is the mutation behind the paper's Figure 1(c) (spill `st`/`ld`
    /// pair) and Figure 1(d) (wire-delay vertex). Returns the ids of the
    /// inserted operations.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingEdge`] if `from -> to` is not an edge.
    pub fn splice_on_edge(
        &mut self,
        from: OpId,
        to: OpId,
        chain: impl IntoIterator<Item = (OpKind, u64, String)>,
    ) -> Result<Vec<OpId>, IrError> {
        if !self.has_edge(from, to) {
            return Err(IrError::MissingEdge(from, to));
        }
        let ids: Vec<OpId> = chain
            .into_iter()
            .map(|(kind, delay, label)| self.add_op(kind, delay, label))
            .collect();
        if ids.is_empty() {
            return Ok(ids);
        }
        // A loop-carried edge keeps its distance on the first hop: the
        // producer's value of iteration `i` enters the spliced chain,
        // and the chain itself is same-iteration from there on.
        let carried = self.dist(from, to).expect("edge checked above");
        self.remove_edge(from, to)?;
        let mut prev = from;
        let mut first = true;
        for &v in &ids {
            self.add_dep_edge(prev, v, if first { carried } else { 0 })?;
            first = false;
            // Pass-through value semantics for the inserted chain.
            self.ops[v.index()].operands = vec![Operand::Op(prev)];
            prev = v;
        }
        self.add_edge(prev, to)?;
        // The consumer now reads the chain's tail instead of `from`.
        for operand in &mut self.ops[to.index()].operands {
            if *operand == Operand::Op(from) {
                *operand = Operand::Op(prev);
            }
        }
        Ok(ids)
    }

    /// The operation kind of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn kind(&self, v: OpId) -> OpKind {
        self.ops[v.index()].kind
    }

    /// The delay `D_G(v)`.
    pub fn delay(&self, v: OpId) -> u64 {
        self.ops[v.index()].delay
    }

    /// Replaces the delay of `v` (used when physical design refines
    /// estimates).
    pub fn set_delay(&mut self, v: OpId, delay: u64) {
        self.ops[v.index()].delay = delay;
    }

    /// Replaces the kind of `v` (used when register allocation resolves a
    /// `Phi` into a `Move` or a `Nop`).
    pub fn set_kind(&mut self, v: OpId, kind: OpKind) {
        self.ops[v.index()].kind = kind;
    }

    /// The human-readable label of `v`.
    pub fn label(&self, v: OpId) -> &str {
        &self.ops[v.index()].label
    }

    /// Immediate predecessors of `v`.
    pub fn preds(&self, v: OpId) -> &[OpId] {
        &self.preds[v.index()]
    }

    /// Immediate successors of `v`.
    pub fn succs(&self, v: OpId) -> &[OpId] {
        &self.succs[v.index()]
    }

    /// Iterator over all operation ids in index order.
    pub fn op_ids(&self) -> OpIdIter {
        OpIdIter {
            next: 0,
            len: self.len(),
        }
    }

    /// Iterator over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            from: 0,
            offset: 0,
        }
    }

    /// Operations without predecessors (the paper's "primary inputs").
    pub fn sources(&self) -> Vec<OpId> {
        self.op_ids().filter(|&v| self.preds(v).is_empty()).collect()
    }

    /// Operations without successors (the paper's "primary outputs").
    pub fn sinks(&self) -> Vec<OpId> {
        self.op_ids().filter(|&v| self.succs(v).is_empty()).collect()
    }

    /// Counts the operations of each kind; pairs are sorted by kind.
    pub fn kind_histogram(&self) -> Vec<(OpKind, usize)> {
        let mut hist: Vec<(OpKind, usize)> = Vec::new();
        for v in self.op_ids() {
            let k = self.kind(v);
            match hist.iter_mut().find(|(kk, _)| *kk == k) {
                Some((_, n)) => *n += 1,
                None => hist.push((k, 1)),
            }
        }
        hist.sort_by_key(|&(k, _)| k);
        hist
    }

    /// Total delay of all operations (an upper bound on the diameter).
    pub fn total_delay(&self) -> u64 {
        self.ops.iter().map(|o| o.delay).sum()
    }

    /// Checks that the graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Cycle`] carrying one vertex on a cycle.
    pub fn validate(&self) -> Result<(), IrError> {
        crate::algo::topo_order(self).map(|_| ())
    }

    fn check(&self, v: OpId) -> Result<(), IrError> {
        if v.index() < self.len() {
            Ok(())
        } else {
            Err(IrError::UnknownOp(v))
        }
    }
}

/// Iterator over operation ids, returned by [`PrecedenceGraph::op_ids`].
#[derive(Clone, Debug)]
pub struct OpIdIter {
    next: usize,
    len: usize,
}

impl Iterator for OpIdIter {
    type Item = OpId;

    fn next(&mut self) -> Option<OpId> {
        if self.next < self.len {
            let id = OpId::from_index(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for OpIdIter {}

/// Iterator over edges, returned by [`PrecedenceGraph::edges`].
#[derive(Clone, Debug)]
pub struct EdgeIter<'a> {
    graph: &'a PrecedenceGraph,
    from: usize,
    offset: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (OpId, OpId);

    fn next(&mut self) -> Option<(OpId, OpId)> {
        while self.from < self.graph.len() {
            let succs = &self.graph.succs[self.from];
            if self.offset < succs.len() {
                let e = (OpId::from_index(self.from), succs[self.offset]);
                self.offset += 1;
                return Some(e);
            }
            self.from += 1;
            self.offset = 0;
        }
        None
    }
}

/// Iterator over `(from, to, distance)` triples, returned by
/// [`PrecedenceGraph::edges_dist`].
#[derive(Clone, Debug)]
pub struct DistEdgeIter<'a> {
    graph: &'a PrecedenceGraph,
    from: usize,
    offset: usize,
}

impl Iterator for DistEdgeIter<'_> {
    type Item = (OpId, OpId, u32);

    fn next(&mut self) -> Option<(OpId, OpId, u32)> {
        while self.from < self.graph.len() {
            let succs = &self.graph.succs[self.from];
            if self.offset < succs.len() {
                let e = (
                    OpId::from_index(self.from),
                    succs[self.offset],
                    self.graph.succ_dist[self.from][self.offset],
                );
                self.offset += 1;
                return Some(e);
            }
            self.from += 1;
            self.offset = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn diamond() -> (PrecedenceGraph, [OpId; 4]) {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Mul, 2, "b");
        let c = g.add_op(OpKind::Sub, 1, "c");
        let d = g.add_op(OpKind::Add, 1, "d");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn empty_graph_has_no_ops_or_edges() {
        let g = PrecedenceGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_op_assigns_dense_ids() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(a.index(), 0);
        assert_eq!(d.index(), 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g.kind(b), OpKind::Mul);
        assert_eq!(g.delay(b), 2);
        assert_eq!(g.label(c), "c");
    }

    #[test]
    fn edges_are_recorded_both_ways() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.preds(d).len(), 2);
        assert_eq!(g.succs(a).len(), 2);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let (mut g, [a, b, _, _]) = diamond();
        g.add_edge(a, b).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.succs(a).iter().filter(|&&s| s == b).count(), 1);
    }

    #[test]
    fn self_edge_is_rejected() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(g.add_edge(a, a), Err(IrError::SelfEdge(a)));
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let (mut g, [a, ..]) = diamond();
        let bogus = OpId::from_index(99);
        assert_eq!(g.add_edge(a, bogus), Err(IrError::UnknownOp(bogus)));
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let (mut g, [a, b, _, d]) = diamond();
        g.remove_edge(b, d).unwrap();
        assert!(!g.has_edge(b, d));
        assert_eq!(g.preds(d).len(), 1);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.remove_edge(a, d), Err(IrError::MissingEdge(a, d)));
        // `a -> b` untouched.
        assert!(g.has_edge(a, b));
    }

    #[test]
    fn splice_replaces_edge_with_chain() {
        let (mut g, [_, b, _, d]) = diamond();
        let inserted = g
            .splice_on_edge(
                b,
                d,
                [
                    (OpKind::Store, 1, "st".to_string()),
                    (OpKind::Load, 1, "ld".to_string()),
                ],
            )
            .unwrap();
        assert_eq!(inserted.len(), 2);
        assert!(!g.has_edge(b, d));
        assert!(g.has_edge(b, inserted[0]));
        assert!(g.has_edge(inserted[0], inserted[1]));
        assert!(g.has_edge(inserted[1], d));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn splice_on_missing_edge_fails() {
        let (mut g, [a, _, _, d]) = diamond();
        let err = g.splice_on_edge(a, d, [(OpKind::Nop, 0, String::new())]);
        assert_eq!(err, Err(IrError::MissingEdge(a, d)));
    }

    #[test]
    fn splice_with_empty_chain_keeps_edge() {
        let (mut g, [a, b, _, _]) = diamond();
        let inserted = g.splice_on_edge(a, b, std::iter::empty()).unwrap();
        assert!(inserted.is_empty());
        assert!(g.has_edge(a, b));
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn kind_histogram_counts() {
        let (g, _) = diamond();
        let hist = g.kind_histogram();
        assert_eq!(
            hist,
            vec![(OpKind::Add, 2), (OpKind::Sub, 1), (OpKind::Mul, 1)]
        );
    }

    #[test]
    fn cycle_detected_by_validate() {
        let (mut g, [a, b, _, d]) = diamond();
        g.add_edge(d, a).unwrap();
        assert!(matches!(g.validate(), Err(IrError::Cycle(_))));
        let _ = b;
    }

    #[test]
    fn edge_iter_sees_every_edge_once() {
        let (g, _) = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn total_delay_sums_delays() {
        let (g, _) = diamond();
        assert_eq!(g.total_delay(), 5);
    }

    #[test]
    fn op_id_iter_is_exact_size() {
        let (g, _) = diamond();
        let it = g.op_ids();
        assert_eq!(it.len(), 4);
        assert_eq!(it.collect::<Vec<_>>().len(), 4);
    }

    #[test]
    fn distance_edges_default_to_zero() {
        let (g, [a, b, ..]) = diamond();
        assert_eq!(g.dist(a, b), Some(0));
        assert_eq!(g.dist(b, a), None);
        assert!(!g.has_loop_edges());
        assert_eq!(g.max_distance(), 0);
        assert!(g.edges_dist().all(|(_, _, d)| d == 0));
    }

    #[test]
    fn loop_carried_edge_closes_a_legal_cycle() {
        let (mut g, [a, _, _, d]) = diamond();
        g.add_dep_edge(d, a, 1).unwrap();
        assert!(g.has_loop_edges());
        assert_eq!(g.dist(d, a), Some(1));
        assert_eq!(g.max_distance(), 1);
        // The full graph is cyclic, the kernel is not.
        assert!(matches!(g.validate(), Err(IrError::Cycle(_))));
        assert!(g.validate_kernel().is_ok());
        let kernel = g.kernel_dag();
        assert_eq!(kernel.len(), g.len());
        assert_eq!(kernel.edge_count(), 4, "loop edge dropped");
        assert!(kernel.validate().is_ok());
    }

    #[test]
    fn self_recurrence_needs_positive_distance() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(g.add_dep_edge(a, a, 0), Err(IrError::SelfEdge(a)));
        g.add_dep_edge(a, a, 1).unwrap();
        assert_eq!(g.dist(a, a), Some(1));
        assert!(g.validate_kernel().is_ok());
    }

    #[test]
    fn duplicate_dep_edge_keeps_the_smaller_distance() {
        let (mut g, [a, b, _, _]) = diamond();
        g.add_dep_edge(a, b, 3).unwrap();
        assert_eq!(g.dist(a, b), Some(0), "existing edge is tighter");
        let mut h = PrecedenceGraph::new();
        let x = h.add_op(OpKind::Add, 1, "x");
        let y = h.add_op(OpKind::Add, 1, "y");
        h.add_dep_edge(x, y, 4).unwrap();
        h.add_dep_edge(x, y, 2).unwrap();
        assert_eq!(h.dist(x, y), Some(2));
        assert_eq!(h.edge_count(), 1);
        assert!(h.has_loop_edges());
        h.add_dep_edge(x, y, 0).unwrap();
        assert!(!h.has_loop_edges());
    }

    #[test]
    fn distance_zero_cycle_fails_kernel_validation() {
        let (mut g, [a, _, _, d]) = diamond();
        g.add_dep_edge(d, a, 0).unwrap();
        assert!(matches!(g.validate_kernel(), Err(IrError::Cycle(_))));
    }

    #[test]
    fn splice_preserves_the_carried_distance() {
        let (mut g, [a, b, _, d]) = diamond();
        g.add_dep_edge(d, a, 2).unwrap();
        let ins = g
            .splice_on_edge(d, a, [(OpKind::WireDelay, 1, "w".to_string())])
            .unwrap();
        assert_eq!(g.dist(d, ins[0]), Some(2), "distance rides the first hop");
        assert_eq!(g.dist(ins[0], a), Some(0));
        assert!(g.validate_kernel().is_ok());
        let _ = b;
    }

    #[test]
    fn remove_edge_forgets_the_distance() {
        let (mut g, [a, _, _, d]) = diamond();
        g.add_dep_edge(d, a, 1).unwrap();
        g.remove_edge(d, a).unwrap();
        assert!(!g.has_loop_edges());
        assert_eq!(g.dist(d, a), None);
    }

    #[test]
    fn display_and_debug_for_op_id() {
        let v = OpId::from_index(7);
        assert_eq!(format!("{v:?}"), "op7");
        assert_eq!(format!("{v}"), "op7");
    }
}
