//! Precedence-graph intermediate representation for high level synthesis.
//!
//! This crate implements Definition 1 of Zhu & Gajski, *Soft Scheduling in
//! High Level Synthesis* (DAC 1999): a precedence graph is a directed acyclic
//! graph `G = <V, E, D>` with a delay function `D : V -> N`. On top of the
//! graph type it provides:
//!
//! * typed operations ([`OpKind`]) and resource classes ([`ResourceClass`]),
//! * the classical HLS delay model ([`DelayModel`]),
//! * graph algorithms used throughout the scheduler stack — topological
//!   orders, source/sink distances, diameter, critical paths, longest-path
//!   partitions, transitive closure ([`algo`], [`BitMatrix`]) and the
//!   sub-quadratic chain-cover reachability index ([`reach`]),
//! * the four benchmark data-flow graphs evaluated in the paper
//!   ([`bench_graphs`]: HAL, AR, EF/elliptic, FIR) plus the Figure 1
//!   motivating example,
//! * deterministic random DFG generators for property tests and benchmarks
//!   ([`generate`]),
//! * DOT export for debugging ([`dot`]).
//!
//! # Example
//!
//! ```
//! use hls_ir::{PrecedenceGraph, OpKind, DelayModel, algo};
//!
//! let dm = DelayModel::classic();
//! let mut g = PrecedenceGraph::new();
//! let a = g.add_op(OpKind::Mul, dm.delay_of(OpKind::Mul), "a");
//! let b = g.add_op(OpKind::Add, dm.delay_of(OpKind::Add), "b");
//! g.add_edge(a, b)?;
//! assert_eq!(algo::diameter(&g), 3); // mul(2) + add(1)
//! # Ok::<(), hls_ir::IrError>(())
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod bench_graphs;
mod bitmatrix;
pub mod budget;
pub mod canon;
pub mod dot;
pub mod faultinject;
pub mod generate;
pub mod load;
mod graph;
mod op;
pub mod partition;
pub mod reach;
mod resources;
pub mod schedule;
pub mod sim_operands;
pub mod textfmt;

pub use bitmatrix::BitMatrix;
pub use budget::Budget;
pub use graph::{DistEdgeIter, EdgeIter, OpId, OpIdIter, Operand, PrecedenceGraph};
pub use partition::{Partition, PartitionConfig};
pub use reach::{CapacityError, ChainExtrema, ReachIndex};
pub use op::{DelayModel, OpKind, ResourceClass};
pub use resources::ResourceSet;
pub use schedule::{HardSchedule, ModuloError, ModuloSchedule, ScheduleError};

use std::error::Error;
use std::fmt;

/// Errors produced by IR construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An edge endpoint refers to an operation that does not exist.
    UnknownOp(OpId),
    /// A self edge `(v, v)` was rejected.
    SelfEdge(OpId),
    /// The graph contains a dependency cycle; the payload is one vertex on it.
    Cycle(OpId),
    /// An edge that was expected to exist is missing.
    MissingEdge(OpId, OpId),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownOp(v) => write!(f, "unknown operation {v:?}"),
            IrError::SelfEdge(v) => write!(f, "self edge on operation {v:?}"),
            IrError::Cycle(v) => write!(f, "dependency cycle through operation {v:?}"),
            IrError::MissingEdge(u, v) => write!(f, "missing edge {u:?} -> {v:?}"),
        }
    }
}

impl Error for IrError {}
