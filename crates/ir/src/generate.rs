//! Deterministic random precedence-graph generators.
//!
//! Used by property tests (small adversarial shapes) and by the complexity
//! benchmarks (large layered DFGs). All generators are seeded, so every
//! test and bench run is reproducible.

use crate::{DelayModel, OpId, OpKind, PrecedenceGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`layered_dag`].
#[derive(Clone, Debug)]
pub struct LayeredConfig {
    /// Total number of operations.
    pub ops: usize,
    /// Mean layer width (vertices per rank).
    pub width: usize,
    /// Probability of an edge between vertices in adjacent layers.
    pub edge_prob: f64,
    /// Probability that an op is a multiply (the rest are ALU ops).
    pub mul_ratio: f64,
    /// Delay model applied to generated kinds.
    pub delays: DelayModel,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            ops: 64,
            width: 8,
            edge_prob: 0.35,
            mul_ratio: 0.4,
            delays: DelayModel::classic(),
        }
    }
}

fn random_kind(rng: &mut StdRng, mul_ratio: f64) -> OpKind {
    if rng.random_bool(mul_ratio.clamp(0.0, 1.0)) {
        OpKind::Mul
    } else {
        match rng.random_range(0..4u8) {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Cmp,
            _ => OpKind::Logic,
        }
    }
}

/// Generates a layered (ranked) DAG: vertices are arranged in layers and
/// edges only go from one layer to the next, guaranteeing acyclicity and a
/// controllable depth/width profile — the shape of real basic-block DFGs.
///
/// Every non-first-layer vertex gets at least one predecessor, so the graph
/// has no accidental islands.
pub fn layered_dag(seed: u64, cfg: &LayeredConfig) -> PrecedenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PrecedenceGraph::with_capacity(cfg.ops);
    let width = cfg.width.max(1);
    let mut layers: Vec<Vec<OpId>> = Vec::new();
    let mut made = 0;
    while made < cfg.ops {
        let take = width.min(cfg.ops - made);
        let layer: Vec<OpId> = (0..take)
            .map(|_| {
                let kind = random_kind(&mut rng, cfg.mul_ratio);
                let id = g.add_op(kind, cfg.delays.delay_of(kind), format!("v{made}"));
                made += 1;
                id
            })
            .collect();
        layers.push(layer);
        // `made` advanced inside the closure chain above.
    }
    for li in 1..layers.len() {
        let (prev, cur) = (&layers[li - 1], &layers[li]);
        for &v in cur {
            let mut has_pred = false;
            for &p in prev {
                if rng.random_bool(cfg.edge_prob.clamp(0.0, 1.0)) {
                    g.add_edge(p, v).expect("layered edges are acyclic");
                    has_pred = true;
                }
            }
            if !has_pred {
                let p = prev[rng.random_range(0..prev.len())];
                g.add_edge(p, v).expect("layered edges are acyclic");
            }
        }
    }
    g
}

/// Generates a general random DAG over `n` vertices: every candidate edge
/// `(i, j)` with `i < j` (in a random relabelling) is kept with probability
/// `density`. Denser and less structured than [`layered_dag`].
pub fn random_dag(seed: u64, n: usize, density: f64, delays: &DelayModel) -> PrecedenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PrecedenceGraph::with_capacity(n);
    let ids: Vec<OpId> = (0..n)
        .map(|i| {
            let kind = random_kind(&mut rng, 0.3);
            g.add_op(kind, delays.delay_of(kind), format!("r{i}"))
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(density.clamp(0.0, 1.0)) {
                g.add_edge(ids[i], ids[j]).expect("i<j edges are acyclic");
            }
        }
    }
    g
}

/// Generates a balanced binary expression tree of the given depth
/// (leaves are multiplies, inner nodes alternate add/sub), rooted at the
/// last op. A common accelerator-kernel shape.
pub fn expression_tree(depth: u32, delays: &DelayModel) -> PrecedenceGraph {
    let mut g = PrecedenceGraph::new();
    fn build(
        g: &mut PrecedenceGraph,
        depth: u32,
        delays: &DelayModel,
        counter: &mut usize,
    ) -> OpId {
        *counter += 1;
        let label = format!("t{counter}");
        if depth == 0 {
            g.add_op(OpKind::Mul, delays.delay_of(OpKind::Mul), label)
        } else {
            let l = build(g, depth - 1, delays, counter);
            let r = build(g, depth - 1, delays, counter);
            let kind = if depth.is_multiple_of(2) { OpKind::Add } else { OpKind::Sub };
            let v = g.add_op(kind, delays.delay_of(kind), label);
            g.add_edge(l, v).expect("tree edges are acyclic");
            g.add_edge(r, v).expect("tree edges are acyclic");
            v
        }
    }
    let mut counter = 0;
    build(&mut g, depth, delays, &mut counter);
    g
}

/// Configuration for [`cyclic_kernel`].
#[derive(Clone, Debug)]
pub struct CyclicConfig {
    /// Number of operations in the loop body.
    pub ops: usize,
    /// Mean layer width of the body DAG.
    pub width: usize,
    /// Probability of an intra-iteration edge between adjacent layers.
    pub edge_prob: f64,
    /// Probability that an op is a multiply.
    pub mul_ratio: f64,
    /// Loop-carried (positive-distance) edges to add on top of the
    /// body. Each goes from a random op to a random op at the same or
    /// an earlier layer, so many of them close genuine recurrence
    /// cycles through the body.
    pub back_edges: usize,
    /// Distances are drawn uniformly from `1..=max_distance`.
    pub max_distance: u32,
    /// Delay model applied to generated kinds.
    pub delays: DelayModel,
}

impl Default for CyclicConfig {
    fn default() -> Self {
        CyclicConfig {
            ops: 12,
            width: 3,
            edge_prob: 0.4,
            mul_ratio: 0.3,
            back_edges: 3,
            max_distance: 2,
            delays: DelayModel::classic(),
        }
    }
}

/// Generates a seeded random *loop kernel*: a layered body DAG (as
/// [`layered_dag`]) plus `back_edges` loop-carried edges with random
/// positive distances, aimed backwards (or self-loops) so they close
/// recurrence cycles through the body. The distance-0 subgraph is the
/// body DAG, so [`PrecedenceGraph::validate_kernel`] always holds.
pub fn cyclic_kernel(seed: u64, cfg: &CyclicConfig) -> PrecedenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PrecedenceGraph::with_capacity(cfg.ops);
    let width = cfg.width.max(1);
    let mut layer_of = Vec::with_capacity(cfg.ops);
    let mut layers: Vec<Vec<OpId>> = Vec::new();
    let mut made = 0;
    while made < cfg.ops {
        let take = width.min(cfg.ops - made);
        let li = layers.len();
        let layer: Vec<OpId> = (0..take)
            .map(|_| {
                let kind = random_kind(&mut rng, cfg.mul_ratio);
                let id = g.add_op(kind, cfg.delays.delay_of(kind), format!("k{made}"));
                layer_of.push(li);
                made += 1;
                id
            })
            .collect();
        layers.push(layer);
    }
    for li in 1..layers.len() {
        let (prev, cur) = (&layers[li - 1], &layers[li]);
        for &v in cur {
            let mut has_pred = false;
            for &p in prev {
                if rng.random_bool(cfg.edge_prob.clamp(0.0, 1.0)) {
                    g.add_edge(p, v).expect("layered edges are acyclic");
                    has_pred = true;
                }
            }
            if !has_pred {
                let p = prev[rng.random_range(0..prev.len())];
                g.add_edge(p, v).expect("layered edges are acyclic");
            }
        }
    }
    // Loop-carried edges: from any op back to an op at the same or an
    // earlier layer (self-loops included), with positive distance.
    let n = g.len();
    for _ in 0..cfg.back_edges {
        if n == 0 {
            break;
        }
        let from = rng.random_range(0..n);
        let to = rng.random_range(0..n);
        let (from, to) = if layer_of[to] <= layer_of[from] {
            (from, to)
        } else {
            (to, from)
        };
        let d = rng.random_range(1..cfg.max_distance.max(1) + 1);
        g.add_dep_edge(OpId::from_index(from), OpId::from_index(to), d)
            .expect("positive-distance edges are always addable");
    }
    g
}

/// The standard mid-size layered stress DAG shared by the cross-crate
/// test suites (portfolio determinism, end-to-end flow, reachability
/// fuzzing pick their sizes through `ops`): one seeded shape instead
/// of per-test ad-hoc generator configs.
pub fn stress_dag(seed: u64, ops: usize) -> PrecedenceGraph {
    layered_dag(
        seed,
        &LayeredConfig {
            ops,
            width: (ops / 25).clamp(4, 32),
            edge_prob: 0.25,
            ..LayeredConfig::default()
        },
    )
}

/// Splices a 1–3 op wire-delay chain onto a random existing edge — the
/// spill / wire-delay refinement shape the schedulers produce. No-op
/// on edgeless graphs. Shared by the reachability and invariant fuzz
/// suites.
pub fn random_splice(g: &mut PrecedenceGraph, rng: &mut StdRng, tag: usize) {
    let edges: Vec<(OpId, OpId)> = g.edges().collect();
    if edges.is_empty() {
        return;
    }
    let (from, to) = edges[rng.random_range(0..edges.len())];
    let len = rng.random_range(1usize..4);
    let chain: Vec<(OpKind, u64, String)> = (0..len)
        .map(|i| (OpKind::WireDelay, 1 + (i as u64 % 2), format!("w{tag}_{i}")))
        .collect();
    g.splice_on_edge(from, to, chain)
        .expect("edge was sampled from g.edges()");
}

/// Adds one new op with random already-existing predecessors and
/// successors, chosen from disjoint topological prefix/suffix so the
/// graph stays acyclic — the ECO refinement shape. Shared by the
/// reachability and invariant fuzz suites.
pub fn random_eco_op(g: &mut PrecedenceGraph, rng: &mut StdRng, tag: usize) {
    let order = crate::algo::topo_order(g).expect("mutated graph stays a DAG");
    let v = g.add_op(OpKind::Add, 1, format!("eco{tag}"));
    if order.is_empty() {
        return;
    }
    let cut = rng.random_range(0..order.len());
    for _ in 0..rng.random_range(0usize..3) {
        if cut > 0 {
            let p = order[rng.random_range(0..cut)];
            let _ = g.add_edge(p, v);
        }
    }
    for _ in 0..rng.random_range(0usize..3) {
        if cut < order.len() {
            let q = order[rng.random_range(cut..order.len())];
            let _ = g.add_edge(v, q);
        }
    }
}

/// Generates `chains` independent multiply/accumulate chains of `len`
/// operations each — the maximally parallel workload (no cross edges).
pub fn independent_chains(chains: usize, len: usize, delays: &DelayModel) -> PrecedenceGraph {
    let mut g = PrecedenceGraph::with_capacity(chains * len);
    for c in 0..chains {
        let mut prev: Option<OpId> = None;
        for i in 0..len {
            let kind = if i % 2 == 0 { OpKind::Mul } else { OpKind::Add };
            let v = g.add_op(kind, delays.delay_of(kind), format!("c{c}_{i}"));
            if let Some(p) = prev {
                g.add_edge(p, v).expect("chain edges are acyclic");
            }
            prev = Some(v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn layered_dag_is_acyclic_and_sized() {
        let g = layered_dag(1, &LayeredConfig::default());
        assert_eq!(g.len(), 64);
        assert!(g.validate().is_ok());
        // Every non-source vertex has a predecessor by construction.
        let sources = g.sources();
        assert!(sources.len() <= 8, "only the first layer can be sources");
    }

    #[test]
    fn layered_dag_is_deterministic_per_seed() {
        let cfg = LayeredConfig::default();
        let g1 = layered_dag(42, &cfg);
        let g2 = layered_dag(42, &cfg);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        let g3 = layered_dag(43, &cfg);
        assert!(
            g1.edges().collect::<Vec<_>>() != g3.edges().collect::<Vec<_>>()
                || g1.kind_histogram() != g3.kind_histogram(),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn random_dag_respects_density_extremes() {
        let dm = DelayModel::classic();
        let empty = random_dag(7, 20, 0.0, &dm);
        assert_eq!(empty.edge_count(), 0);
        let full = random_dag(7, 20, 1.0, &dm);
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        assert!(full.validate().is_ok());
    }

    #[test]
    fn expression_tree_shape() {
        let dm = DelayModel::unit();
        let g = expression_tree(3, &dm);
        assert_eq!(g.len(), 15);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(algo::diameter(&g), 4);
    }

    #[test]
    fn cyclic_kernel_is_a_valid_kernel_and_deterministic() {
        let cfg = CyclicConfig::default();
        let g1 = cyclic_kernel(5, &cfg);
        let g2 = cyclic_kernel(5, &cfg);
        assert_eq!(g1.len(), cfg.ops);
        assert!(g1.validate_kernel().is_ok());
        assert!(g1.has_loop_edges() || cfg.back_edges == 0);
        assert_eq!(
            g1.edges_dist().collect::<Vec<_>>(),
            g2.edges_dist().collect::<Vec<_>>()
        );
    }

    #[test]
    fn stress_dag_is_seeded_and_acyclic() {
        let g = stress_dag(7, 200);
        assert_eq!(g.len(), 200);
        assert!(g.validate().is_ok());
        let h = stress_dag(7, 200);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            h.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_mutators_keep_the_graph_a_dag() {
        use rand::SeedableRng;
        let mut g = stress_dag(3, 40);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for m in 0..6 {
            random_splice(&mut g, &mut rng, m);
            random_eco_op(&mut g, &mut rng, m);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn independent_chains_have_no_cross_edges() {
        let dm = DelayModel::unit();
        let g = independent_chains(3, 5, &dm);
        assert_eq!(g.len(), 15);
        assert_eq!(g.edge_count(), 3 * 4);
        assert_eq!(g.sources().len(), 3);
        assert_eq!(g.sinks().len(), 3);
        assert_eq!(algo::diameter(&g), 5);
    }
}
