//! Deterministic random precedence-graph generators.
//!
//! Used by property tests (small adversarial shapes) and by the complexity
//! benchmarks (large layered DFGs). All generators are seeded, so every
//! test and bench run is reproducible.

use crate::{DelayModel, OpId, OpKind, PrecedenceGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`layered_dag`].
#[derive(Clone, Debug)]
pub struct LayeredConfig {
    /// Total number of operations.
    pub ops: usize,
    /// Mean layer width (vertices per rank).
    pub width: usize,
    /// Probability of an edge between vertices in adjacent layers.
    pub edge_prob: f64,
    /// Probability that an op is a multiply (the rest are ALU ops).
    pub mul_ratio: f64,
    /// Delay model applied to generated kinds.
    pub delays: DelayModel,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            ops: 64,
            width: 8,
            edge_prob: 0.35,
            mul_ratio: 0.4,
            delays: DelayModel::classic(),
        }
    }
}

fn random_kind(rng: &mut StdRng, mul_ratio: f64) -> OpKind {
    if rng.random_bool(mul_ratio.clamp(0.0, 1.0)) {
        OpKind::Mul
    } else {
        match rng.random_range(0..4u8) {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::Cmp,
            _ => OpKind::Logic,
        }
    }
}

/// Generates a layered (ranked) DAG: vertices are arranged in layers and
/// edges only go from one layer to the next, guaranteeing acyclicity and a
/// controllable depth/width profile — the shape of real basic-block DFGs.
///
/// Every non-first-layer vertex gets at least one predecessor, so the graph
/// has no accidental islands.
pub fn layered_dag(seed: u64, cfg: &LayeredConfig) -> PrecedenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PrecedenceGraph::with_capacity(cfg.ops);
    let width = cfg.width.max(1);
    let mut layers: Vec<Vec<OpId>> = Vec::new();
    let mut made = 0;
    while made < cfg.ops {
        let take = width.min(cfg.ops - made);
        let layer: Vec<OpId> = (0..take)
            .map(|_| {
                let kind = random_kind(&mut rng, cfg.mul_ratio);
                let id = g.add_op(kind, cfg.delays.delay_of(kind), format!("v{made}"));
                made += 1;
                id
            })
            .collect();
        layers.push(layer);
        // `made` advanced inside the closure chain above.
    }
    for li in 1..layers.len() {
        let (prev, cur) = (&layers[li - 1], &layers[li]);
        for &v in cur {
            let mut has_pred = false;
            for &p in prev {
                if rng.random_bool(cfg.edge_prob.clamp(0.0, 1.0)) {
                    g.add_edge(p, v).expect("layered edges are acyclic");
                    has_pred = true;
                }
            }
            if !has_pred {
                let p = prev[rng.random_range(0..prev.len())];
                g.add_edge(p, v).expect("layered edges are acyclic");
            }
        }
    }
    g
}

/// Generates a general random DAG over `n` vertices: every candidate edge
/// `(i, j)` with `i < j` (in a random relabelling) is kept with probability
/// `density`. Denser and less structured than [`layered_dag`].
pub fn random_dag(seed: u64, n: usize, density: f64, delays: &DelayModel) -> PrecedenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PrecedenceGraph::with_capacity(n);
    let ids: Vec<OpId> = (0..n)
        .map(|i| {
            let kind = random_kind(&mut rng, 0.3);
            g.add_op(kind, delays.delay_of(kind), format!("r{i}"))
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(density.clamp(0.0, 1.0)) {
                g.add_edge(ids[i], ids[j]).expect("i<j edges are acyclic");
            }
        }
    }
    g
}

/// Generates a balanced binary expression tree of the given depth
/// (leaves are multiplies, inner nodes alternate add/sub), rooted at the
/// last op. A common accelerator-kernel shape.
pub fn expression_tree(depth: u32, delays: &DelayModel) -> PrecedenceGraph {
    let mut g = PrecedenceGraph::new();
    fn build(
        g: &mut PrecedenceGraph,
        depth: u32,
        delays: &DelayModel,
        counter: &mut usize,
    ) -> OpId {
        *counter += 1;
        let label = format!("t{counter}");
        if depth == 0 {
            g.add_op(OpKind::Mul, delays.delay_of(OpKind::Mul), label)
        } else {
            let l = build(g, depth - 1, delays, counter);
            let r = build(g, depth - 1, delays, counter);
            let kind = if depth.is_multiple_of(2) { OpKind::Add } else { OpKind::Sub };
            let v = g.add_op(kind, delays.delay_of(kind), label);
            g.add_edge(l, v).expect("tree edges are acyclic");
            g.add_edge(r, v).expect("tree edges are acyclic");
            v
        }
    }
    let mut counter = 0;
    build(&mut g, depth, delays, &mut counter);
    g
}

/// Generates `chains` independent multiply/accumulate chains of `len`
/// operations each — the maximally parallel workload (no cross edges).
pub fn independent_chains(chains: usize, len: usize, delays: &DelayModel) -> PrecedenceGraph {
    let mut g = PrecedenceGraph::with_capacity(chains * len);
    for c in 0..chains {
        let mut prev: Option<OpId> = None;
        for i in 0..len {
            let kind = if i % 2 == 0 { OpKind::Mul } else { OpKind::Add };
            let v = g.add_op(kind, delays.delay_of(kind), format!("c{c}_{i}"));
            if let Some(p) = prev {
                g.add_edge(p, v).expect("chain edges are acyclic");
            }
            prev = Some(v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn layered_dag_is_acyclic_and_sized() {
        let g = layered_dag(1, &LayeredConfig::default());
        assert_eq!(g.len(), 64);
        assert!(g.validate().is_ok());
        // Every non-source vertex has a predecessor by construction.
        let sources = g.sources();
        assert!(sources.len() <= 8, "only the first layer can be sources");
    }

    #[test]
    fn layered_dag_is_deterministic_per_seed() {
        let cfg = LayeredConfig::default();
        let g1 = layered_dag(42, &cfg);
        let g2 = layered_dag(42, &cfg);
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        let g3 = layered_dag(43, &cfg);
        assert!(
            g1.edges().collect::<Vec<_>>() != g3.edges().collect::<Vec<_>>()
                || g1.kind_histogram() != g3.kind_histogram(),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn random_dag_respects_density_extremes() {
        let dm = DelayModel::classic();
        let empty = random_dag(7, 20, 0.0, &dm);
        assert_eq!(empty.edge_count(), 0);
        let full = random_dag(7, 20, 1.0, &dm);
        assert_eq!(full.edge_count(), 20 * 19 / 2);
        assert!(full.validate().is_ok());
    }

    #[test]
    fn expression_tree_shape() {
        let dm = DelayModel::unit();
        let g = expression_tree(3, &dm);
        assert_eq!(g.len(), 15);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(algo::diameter(&g), 4);
    }

    #[test]
    fn independent_chains_have_no_cross_edges() {
        let dm = DelayModel::unit();
        let g = independent_chains(3, 5, &dm);
        assert_eq!(g.len(), 15);
        assert_eq!(g.edge_count(), 3 * 4);
        assert_eq!(g.sources().len(), 3);
        assert_eq!(g.sinks().len(), 3);
        assert_eq!(algo::diameter(&g), 5);
    }
}
