//! Balanced acyclic min-cut partitioning of precedence graphs.
//!
//! The partition-parallel scheduler (`threaded_sched::ParallelScheduler`)
//! needs the behavior split into `P` blocks such that
//!
//! 1. the blocks are **balanced** by delay weight (workers finish
//!    together),
//! 2. the **quotient is acyclic** — in fact every edge goes from a
//!    block to an equal-or-higher-numbered block, so the blocks are
//!    already in quotient topological order and the stitch pass can
//!    concatenate per-block state chains without cycle checks,
//! 3. the **cut** (edges between different blocks) is small — cut
//!    edges are exactly the dependencies the stitch pass must splice
//!    back sequentially, so the cut bounds the non-parallel work.
//!
//! The partitioner is the classic multilevel scheme specialised to
//! DAGs: *coarsen* by contracting edge-connected intervals of a
//! topological order (intervals keep the coarse sequence a topological
//! order, so no cycle can appear at any level), *bisect* the coarsest
//! sequence at the cut-minimising balanced split point, then *uncoarsen*
//! and refine each level with Fiedler–Mattheyses-style boundary moves
//! restricted to moves that preserve the prefix/suffix invariant
//! (a vertex may cross the cut only when none of its neighbours would
//! end up on the wrong side of it). `k`-way partitions come from
//! recursive bisection with proportional balance targets.
//!
//! Everything is deterministic: no randomness, ties broken by vertex
//! id, so a partition depends only on (graph, config) — the anchor of
//! the parallel scheduler's determinism guarantee.

use crate::{algo, IrError, OpId, PrecedenceGraph};

/// Configuration for [`partition`].
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// Number of blocks. Clamped to `1..=|V|`.
    pub parts: usize,
    /// Balance slack: every block's weight must stay within
    /// `(1 + tolerance) * ideal + max_op_weight`, where `ideal` is the
    /// block's proportional share of the total delay weight. The
    /// additive term keeps lumpy weights feasible.
    pub tolerance: f64,
    /// Boundary-refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Coarsening stops once a level has at most this many clusters.
    pub coarsen_target: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            parts: 2,
            tolerance: 0.10,
            refine_passes: 4,
            coarsen_target: 512,
        }
    }
}

/// A block assignment over the operations of one precedence graph.
///
/// Invariant (checked by [`Partition::validate`]): every edge `u -> v`
/// of the partitioned graph satisfies `part_of(u) <= part_of(v)` — the
/// blocks are numbered in a topological order of the quotient graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    part_of: Vec<u32>,
    parts: usize,
}

impl Partition {
    /// The block of operation `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the partitioned graph.
    pub fn part_of(&self, v: OpId) -> usize {
        self.part_of[v.index()] as usize
    }

    /// Number of blocks (some may be empty on degenerate inputs).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of operations assigned (the size of the partitioned
    /// graph).
    pub fn len(&self) -> usize {
        self.part_of.len()
    }

    /// `true` if the partition covers no operations.
    pub fn is_empty(&self) -> bool {
        self.part_of.is_empty()
    }

    /// The operations of every block, in ascending id order within a
    /// block and ascending block order across blocks.
    pub fn blocks(&self) -> Vec<Vec<OpId>> {
        let mut out = vec![Vec::new(); self.parts];
        for (i, &p) in self.part_of.iter().enumerate() {
            out[p as usize].push(OpId::from_index(i));
        }
        out
    }

    /// The cut edges — edges whose endpoints live in different blocks —
    /// in deterministic (source id, target id) order.
    pub fn cut_edges(&self, g: &PrecedenceGraph) -> Vec<(OpId, OpId)> {
        g.edges()
            .filter(|&(u, v)| self.part_of[u.index()] != self.part_of[v.index()])
            .collect()
    }

    /// Number of cut edges.
    pub fn cut_size(&self, g: &PrecedenceGraph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.part_of[u.index()] != self.part_of[v.index()])
            .count()
    }

    /// Per-block delay weight (each op weighs `delay.max(1)`, so
    /// zero-delay ops still count toward balance).
    pub fn block_weights(&self, g: &PrecedenceGraph) -> Vec<u64> {
        let mut w = vec![0u64; self.parts];
        for v in g.op_ids() {
            w[self.part_of[v.index()] as usize] += op_weight(g, v);
        }
        w
    }

    /// Verifies the partition invariants against `g`:
    ///
    /// * every op is assigned a block below [`Partition::parts`];
    /// * every edge goes to an equal-or-higher block (quotient
    ///   acyclicity in topological numbering);
    /// * every block's weight is within the balance bound implied by
    ///   `tolerance`: the proportional share times `1 + tolerance`,
    ///   plus one maximal op of slack per bisection level (weights are
    ///   integral and lumpy, so each of the `ceil(log2 parts)` splits
    ///   can miss its target by up to one op).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, g: &PrecedenceGraph, tolerance: f64) -> Result<(), String> {
        if self.part_of.len() != g.len() {
            return Err(format!(
                "partition covers {} ops but the graph has {}",
                self.part_of.len(),
                g.len()
            ));
        }
        for v in g.op_ids() {
            if self.part_of[v.index()] as usize >= self.parts {
                return Err(format!("{v} assigned to out-of-range block"));
            }
        }
        for (u, v) in g.edges() {
            if self.part_of[u.index()] > self.part_of[v.index()] {
                return Err(format!(
                    "edge {u} -> {v} goes backwards across blocks {} -> {}",
                    self.part_of[u.index()],
                    self.part_of[v.index()]
                ));
            }
        }
        let weights = self.block_weights(g);
        let total: u64 = weights.iter().sum();
        let max_op = g.op_ids().map(|v| op_weight(g, v)).max().unwrap_or(0);
        let ideal = (total as f64) / (self.parts as f64);
        let levels = usize::BITS - self.parts.next_power_of_two().leading_zeros() - 1;
        let bound = ideal * (1.0 + tolerance.max(0.0)) + (max_op * u64::from(levels.max(1))) as f64;
        for (b, &w) in weights.iter().enumerate() {
            if w as f64 > bound {
                return Err(format!(
                    "block {b} weighs {w}, above the balance bound {bound:.1} \
                     (ideal {ideal:.1}, tolerance {tolerance})"
                ));
            }
        }
        Ok(())
    }
}

/// The balance weight of one op: its delay, floored at 1 so zero-delay
/// operations still occupy a share of a block.
fn op_weight(g: &PrecedenceGraph, v: OpId) -> u64 {
    g.delay(v).max(1)
}

/// Picks a block count for a graph of `ops` operations scheduled by
/// `workers` worker threads: enough blocks to keep every worker busy
/// and each block small enough to stay cache-resident, but never more
/// blocks than ops.
pub fn auto_parts(ops: usize, workers: usize) -> usize {
    let by_worker = workers.max(1) * 4;
    let by_size = ops.div_ceil(16_384);
    by_worker.max(by_size).min(ops.max(1))
}

/// Partitions `g` into `cfg.parts` balanced blocks with an acyclic,
/// topologically numbered quotient (see the module docs for the
/// multilevel scheme). Deterministic in (graph, config).
///
/// # Errors
///
/// Returns [`IrError::Cycle`] if `g` is cyclic (partitioning is
/// defined on DAGs; loop kernels partition their
/// [`kernel_dag`](PrecedenceGraph::kernel_dag)).
pub fn partition(g: &PrecedenceGraph, cfg: &PartitionConfig) -> Result<Partition, IrError> {
    let topo = algo::topo_order(g)?;
    let n = g.len();
    let parts = cfg.parts.clamp(1, n.max(1));
    let mut part_of = vec![0u32; n];
    if parts > 1 && n > 0 {
        // The work sequence: ops in topological order; recursive
        // bisection assigns block ids so that earlier sequence
        // intervals get lower ids.
        let seq: Vec<u32> = topo.iter().map(|v| v.index() as u32).collect();
        let mut next_block = 0u32;
        // Per-level tolerance: `ceil(log2 parts)` nested bisections
        // compound multiplicatively, so split each level at
        // `tolerance / levels` to keep the final drift within
        // `(1 + tolerance)` overall.
        let levels = (usize::BITS - parts.next_power_of_two().leading_zeros() - 1).max(1);
        let eff_tol = cfg.tolerance.max(0.0) / f64::from(levels);
        split_recursive(g, cfg, eff_tol, &seq, parts, &mut next_block, &mut part_of);
        debug_assert_eq!(next_block as usize, parts);
    }
    Ok(Partition { part_of, parts })
}

/// A seeded random balanced bisection — the cut-size sanity baseline
/// for the partitioner's property suite. Makes no acyclicity promise
/// about its quotient.
pub fn random_bisection(g: &PrecedenceGraph, seed: u64) -> Partition {
    // A tiny splitmix64 keeps this free of the rand shim.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = g.len();
    let mut ids: Vec<usize> = (0..n).collect();
    // Fisher–Yates with the local generator.
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    // Greedily fill the lighter half, keeping delay weights balanced.
    let mut part_of = vec![0u32; n];
    let mut w = [0u64; 2];
    for &i in &ids {
        let side = usize::from(w[1] < w[0]);
        part_of[i] = side as u32;
        w[side] += op_weight(g, OpId::from_index(i));
    }
    Partition { part_of, parts: 2 }
}

// ---------------------------------------------------------------------
// Multilevel bisection over a topological sequence.
// ---------------------------------------------------------------------

/// Recursively splits the topological sequence `seq` into `parts`
/// blocks, assigning ids from `*next_block` upward in sequence order.
fn split_recursive(
    g: &PrecedenceGraph,
    cfg: &PartitionConfig,
    eff_tol: f64,
    seq: &[u32],
    parts: usize,
    next_block: &mut u32,
    part_of: &mut [u32],
) {
    if parts <= 1 || seq.len() <= 1 {
        // Too few ops for the requested blocks: everything lands in the
        // first block, the rest stay empty — but their ids are still
        // consumed so block numbering stays topological across the
        // whole recursion.
        let b = *next_block;
        *next_block += parts as u32;
        for &v in seq {
            part_of[v as usize] = b;
        }
        return;
    }
    let left_parts = parts.div_ceil(2);
    let ratio = left_parts as f64 / parts as f64;
    let (prefix, suffix) = bisect(g, cfg, eff_tol, seq, ratio);
    split_recursive(g, cfg, eff_tol, &prefix, left_parts, next_block, part_of);
    split_recursive(g, cfg, eff_tol, &suffix, parts - left_parts, next_block, part_of);
}

/// One multilevel bisection of the vertex sequence `seq` (a
/// topological order of the induced subgraph): coarsen to intervals,
/// split at the cut-minimising balanced point, uncoarsen with boundary
/// refinement. Returns the two sides, each in topological sequence
/// order.
fn bisect(
    g: &PrecedenceGraph,
    cfg: &PartitionConfig,
    eff_tol: f64,
    seq: &[u32],
    ratio: f64,
) -> (Vec<u32>, Vec<u32>) {
    let n = seq.len();
    // Sequence position of every member, NONE for outsiders — edges to
    // outsiders are invisible to this subproblem.
    let mut pos_of = vec![u32::MAX; g.len()];
    for (i, &v) in seq.iter().enumerate() {
        pos_of[v as usize] = i as u32;
    }

    // --- Coarsen: clusters are intervals [start, end) of `seq`. ---
    // A cluster sequence is itself topologically ordered, so every
    // level inherits the prefix/suffix acyclicity for free. Merge
    // adjacent clusters that share at least one edge until the level
    // is small enough or no merge applies.
    let mut bounds: Vec<u32> = (0..=n as u32).collect(); // cluster i = seq[bounds[i]..bounds[i+1]]
    let mut levels: Vec<Vec<u32>> = Vec::new();
    while bounds.len() - 1 > cfg.coarsen_target.max(2) {
        let mut merged = Vec::with_capacity(bounds.len() / 2 + 1);
        merged.push(0u32);
        let mut i = 0;
        let mut did_merge = false;
        while i + 1 < bounds.len() {
            let (s0, e0) = (bounds[i], bounds[i + 1]);
            if i + 2 < bounds.len() {
                let e1 = bounds[i + 2];
                if clusters_connected(g, seq, &pos_of, s0, e0, e1) {
                    merged.push(e1);
                    i += 2;
                    did_merge = true;
                    continue;
                }
            }
            merged.push(e0);
            i += 1;
        }
        if !did_merge {
            break;
        }
        levels.push(std::mem::replace(&mut bounds, merged));
    }

    // --- Initial split of the coarsest level + refinement per level. ---
    let weights: Vec<u64> = seq
        .iter()
        .map(|&v| op_weight(g, OpId::from_index(v as usize)))
        .collect();
    let total: u64 = weights.iter().sum();
    let target = (total as f64 * ratio).round() as u64;
    let slack =
        (total as f64 * eff_tol * ratio) as u64 + weights.iter().copied().max().unwrap_or(0);
    let mut cut_pos = best_split(g, seq, &pos_of, &bounds, &weights, target, slack);
    // `cut_pos` is a sequence index: side 0 = seq[..cut_pos].
    loop {
        cut_pos = refine_split(g, seq, &pos_of, &weights, cut_pos, target, slack, cfg);
        match levels.pop() {
            // Finer levels reuse the refined sequence split as-is (the
            // split is a position, valid at every granularity).
            Some(_) => continue,
            None => break,
        }
    }
    // Refinement may move vertices out of sequence order; rebuild the
    // two sides from the final side assignment.
    let side = side_assignment(g, seq, &pos_of, cut_pos, &weights, target, slack, cfg);
    let mut prefix = Vec::with_capacity(cut_pos);
    let mut suffix = Vec::with_capacity(n - cut_pos);
    for (i, &v) in seq.iter().enumerate() {
        if side[i] == 0 {
            prefix.push(v);
        } else {
            suffix.push(v);
        }
    }
    (prefix, suffix)
}

/// `true` if any edge joins cluster `[s0, e0)` with cluster `[e0, e1)`
/// of the sequence.
fn clusters_connected(
    g: &PrecedenceGraph,
    seq: &[u32],
    pos_of: &[u32],
    s0: u32,
    e0: u32,
    e1: u32,
) -> bool {
    for &v in &seq[s0 as usize..e0 as usize] {
        for &s in g.succs(OpId::from_index(v as usize)) {
            let p = pos_of[s.index()];
            if p != u32::MAX && p >= e0 && p < e1 {
                return true;
            }
        }
    }
    false
}

/// Scans the cluster boundaries of the coarsest level and returns the
/// sequence position of the balanced split with the smallest cut.
fn best_split(
    g: &PrecedenceGraph,
    seq: &[u32],
    pos_of: &[u32],
    bounds: &[u32],
    weights: &[u64],
    target: u64,
    slack: u64,
) -> usize {
    // cut(k) for a prefix split at sequence position k changes
    // incrementally: absorbing vertex i into the prefix adds its
    // out-degree (edges now leaving the prefix) and removes its
    // in-degree (edges that used to cross).
    let n = seq.len();
    let mut cut_at = vec![0i64; n + 1];
    let mut cur = 0i64;
    for (i, &v) in seq.iter().enumerate() {
        let v = OpId::from_index(v as usize);
        let outs = g
            .succs(v)
            .iter()
            .filter(|s| pos_of[s.index()] != u32::MAX)
            .count() as i64;
        let ins = g
            .preds(v)
            .iter()
            .filter(|p| pos_of[p.index()] != u32::MAX)
            .count() as i64;
        cur += outs - ins;
        cut_at[i + 1] = cur;
    }
    let mut prefix_w = 0u64;
    let mut best: Option<(i64, usize)> = None;
    let mut closest: (u64, usize) = (u64::MAX, n / 2);
    let mut wi = 0usize;
    for &b in &bounds[1..bounds.len() - 1] {
        let k = b as usize;
        while wi < k {
            prefix_w += weights[wi];
            wi += 1;
        }
        let dist = prefix_w.abs_diff(target);
        if dist < closest.0 {
            closest = (dist, k);
        }
        if dist <= slack && best.is_none_or(|(c, _)| cut_at[k] < c) {
            best = Some((cut_at[k], k));
        }
    }
    best.map(|(_, k)| k).unwrap_or(closest.1)
}

/// One-level boundary refinement: returns the (possibly unchanged)
/// split position after greedy legal moves. The heavy lifting is in
/// [`side_assignment`]; this wrapper only keeps the split position in
/// range for the next level.
#[allow(clippy::too_many_arguments)]
fn refine_split(
    _g: &PrecedenceGraph,
    seq: &[u32],
    _pos_of: &[u32],
    _weights: &[u64],
    cut_pos: usize,
    _target: u64,
    _slack: u64,
    _cfg: &PartitionConfig,
) -> usize {
    cut_pos.min(seq.len())
}

/// Computes the final side of every sequence member: start from the
/// prefix/suffix split at `cut_pos`, then run
/// `cfg.refine_passes` passes of greedy boundary moves. A move across
/// the cut is *legal* only when it preserves the invariant that every
/// edge goes prefix → suffix: a prefix vertex may leave only if none
/// of its (in-subproblem) successors stays in the prefix; a suffix
/// vertex may enter only if all its predecessors are already there.
/// Moves are applied when they shrink the cut, or keep it equal while
/// improving balance. Deterministic: vertices are visited in sequence
/// order.
#[allow(clippy::too_many_arguments)]
fn side_assignment(
    g: &PrecedenceGraph,
    seq: &[u32],
    pos_of: &[u32],
    cut_pos: usize,
    weights: &[u64],
    target: u64,
    slack: u64,
    cfg: &PartitionConfig,
) -> Vec<u8> {
    let n = seq.len();
    let mut side: Vec<u8> = (0..n).map(|i| u8::from(i >= cut_pos)).collect();
    let mut prefix_w: u64 = weights[..cut_pos].iter().sum();
    let total: u64 = prefix_w + weights[cut_pos..].iter().sum::<u64>();
    for _ in 0..cfg.refine_passes {
        let mut moved = false;
        for i in 0..n {
            let v = OpId::from_index(seq[i] as usize);
            // Gain = (cut edges removed) − (internal edges cut).
            let mut to_other = 0i64;
            let mut to_own = 0i64;
            let mut legal = true;
            let my = side[i];
            for &s in g.succs(v) {
                let p = pos_of[s.index()];
                if p == u32::MAX {
                    continue;
                }
                if side[p as usize] == my {
                    to_own += 1;
                    if my == 0 {
                        legal = false; // successor would end up behind us
                    }
                } else {
                    to_other += 1;
                }
            }
            for &q in g.preds(v) {
                let p = pos_of[q.index()];
                if p == u32::MAX {
                    continue;
                }
                if side[p as usize] == my {
                    to_own += 1;
                    if my == 1 {
                        legal = false; // predecessor would end up ahead
                    }
                } else {
                    to_other += 1;
                }
            }
            if !legal {
                continue;
            }
            let gain = to_other - to_own;
            let w = weights[i];
            let new_prefix = if my == 0 { prefix_w - w } else { prefix_w + w };
            let balanced = new_prefix.abs_diff(target) <= slack && new_prefix <= total;
            let improves_balance = new_prefix.abs_diff(target) < prefix_w.abs_diff(target);
            if balanced && (gain > 0 || (gain == 0 && improves_balance)) {
                side[i] = 1 - my;
                prefix_w = new_prefix;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_graphs, generate};

    #[test]
    fn single_part_is_trivial() {
        let g = bench_graphs::hal();
        let p = partition(&g, &PartitionConfig { parts: 1, ..Default::default() }).unwrap();
        assert_eq!(p.parts(), 1);
        assert_eq!(p.cut_size(&g), 0);
        p.validate(&g, 0.10).unwrap();
    }

    #[test]
    fn parts_clamp_to_graph_size() {
        let g = bench_graphs::fig1().graph; // 7 ops
        let p = partition(&g, &PartitionConfig { parts: 99, ..Default::default() }).unwrap();
        assert_eq!(p.parts(), 7);
        p.validate(&g, 1.0).unwrap();
    }

    #[test]
    fn bisection_is_balanced_acyclic_and_beats_random() {
        let g = generate::stress_dag(11, 400);
        let cfg = PartitionConfig { parts: 2, ..Default::default() };
        let p = partition(&g, &cfg).unwrap();
        p.validate(&g, cfg.tolerance).unwrap();
        let rand_cut = random_bisection(&g, 0xC0FFEE).cut_size(&g);
        assert!(
            p.cut_size(&g) <= rand_cut,
            "min-cut split {} must not lose to random {rand_cut}",
            p.cut_size(&g)
        );
    }

    #[test]
    fn kway_blocks_are_topologically_numbered() {
        let g = generate::stress_dag(5, 500);
        for parts in [2usize, 3, 4, 8] {
            let cfg = PartitionConfig { parts, ..Default::default() };
            let p = partition(&g, &cfg).unwrap();
            assert_eq!(p.parts(), parts);
            p.validate(&g, cfg.tolerance).unwrap();
            // Blocks cover every op exactly once.
            let covered: usize = p.blocks().iter().map(Vec::len).sum();
            assert_eq!(covered, g.len());
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let g = generate::stress_dag(9, 300);
        let cfg = PartitionConfig { parts: 4, ..Default::default() };
        assert_eq!(partition(&g, &cfg).unwrap(), partition(&g, &cfg).unwrap());
    }

    #[test]
    fn cyclic_graphs_are_rejected() {
        let g = bench_graphs::mac_loop();
        assert!(g.has_loop_edges());
        // Loop kernels must partition their kernel DAG instead.
        assert!(partition(&g.kernel_dag(), &PartitionConfig::default()).is_ok());
    }

    #[test]
    fn auto_parts_scales_with_workers_and_size() {
        assert_eq!(auto_parts(100, 1), 4);
        assert_eq!(auto_parts(100, 8), 32);
        assert!(auto_parts(1_000_000, 8) >= 32);
        assert!(auto_parts(3, 8) <= 3);
    }
}
