//! A dense square bit matrix used for reachability / transitive closure.

/// A dense `n × n` bit matrix.
///
/// Row `i` is a bitset over columns; [`crate::algo::transitive_closure`]
/// stores "vertex `j` is reachable from vertex `i`" at `(i, j)`. Rows are
/// word-aligned so whole-row unions vectorise well — this is what keeps
/// closure maintenance cheap enough for the scheduler's inner loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The dimension `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the `0 × 0` matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n, "bit ({row},{col}) out of range");
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`; out-of-range queries return `false`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        if row >= self.n || col >= self.n {
            return false;
        }
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n);
        if src == dst {
            return;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        // Split borrow: rows never overlap because src != dst.
        if s < d {
            let (left, right) = self.bits.split_at_mut(d);
            for i in 0..w {
                right[i] |= left[s + i];
            }
        } else {
            let (left, right) = self.bits.split_at_mut(s);
            for i in 0..w {
                left[d + i] |= right[i];
            }
        }
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Iterates the set columns of `row` in increasing order.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// The raw 64-bit words of `row` — the fast path for word-parallel
    /// consumers (closure maintenance, masked intersections).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.n, "row {row} out of range");
        let w = self.words_per_row;
        &self.bits[row * w..(row + 1) * w]
    }

    /// `true` if `row` intersects the bitset `mask` (same column layout:
    /// bit `c` of `mask[c / 64]`). Extra words on either side are
    /// ignored. Word-parallel with early exit.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_intersects(&self, row: usize, mask: &[u64]) -> bool {
        self.row_words(row)
            .iter()
            .zip(mask.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// The word-parallel transpose: returns the matrix with bit
    /// `(i, j)` set iff `(j, i)` is set in `self`.
    ///
    /// Works on 64×64 tiles with the recursive mask-swap kernel, so a
    /// full transpose costs `O((n/64)² · 64·log 64)` word operations —
    /// ~64× less work than bit-by-bit copying. This is what turns a
    /// descendant closure into an ancestor closure in
    /// `threaded-sched`'s `closures()`.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::new(self.n);
        let w = self.words_per_row;
        let mut tile = [0u64; 64];
        for bi in 0..w {
            let row_base = bi * 64;
            for bj in 0..w {
                // Gather tile: rows row_base.., word bj.
                for (t, slot) in tile.iter_mut().enumerate() {
                    let r = row_base + t;
                    *slot = if r < self.n { self.bits[r * w + bj] } else { 0 };
                }
                transpose64(&mut tile);
                // Scatter: rows bj*64.., word bi.
                let out_base = bj * 64;
                for (t, &word) in tile.iter().enumerate() {
                    let r = out_base + t;
                    if r < self.n && word != 0 {
                        out.bits[r * w + bi] = word;
                    }
                }
            }
        }
        out
    }

    /// Grows the matrix to `new_n × new_n`, preserving existing bits.
    pub fn grow(&mut self, new_n: usize) {
        if new_n <= self.n {
            return;
        }
        let new_words = new_n.div_ceil(64);
        let mut next = BitMatrix {
            n: new_n,
            words_per_row: new_words,
            bits: vec![0; new_words * new_n],
        };
        for row in 0..self.n {
            let src = &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row];
            next.bits[row * new_words..row * new_words + self.words_per_row]
                .copy_from_slice(src);
        }
        *self = next;
    }
}

/// In-place transpose of a 64×64 bit tile stored as 64 row words —
/// the classic recursive block-swap (Hacker's Delight §7-3).
fn transpose64(a: &mut [u64; 64]) {
    // Columns are LSB-first in `BitMatrix`, so the swap pairs element
    // (k, c + j) with (k + j, c) — the mirror of the MSB-first variant.
    let mut j = 32;
    let mut mask = 0x0000_0000_ffff_ffffu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & mask;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_all_zero() {
        let m = BitMatrix::new(130);
        assert_eq!(m.len(), 130);
        for i in 0..130 {
            assert_eq!(m.row_count(i), 0);
        }
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::new(200);
        for &(r, c) in &[(0, 0), (0, 63), (0, 64), (3, 127), (199, 199), (5, 128)] {
            m.set(r, c);
            assert!(m.get(r, c), "({r},{c})");
        }
        assert!(!m.get(0, 1));
        assert!(!m.get(1, 0));
    }

    #[test]
    fn out_of_range_get_is_false() {
        let m = BitMatrix::new(4);
        assert!(!m.get(4, 0));
        assert!(!m.get(0, 4));
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut m = BitMatrix::new(4);
        m.set(0, 4);
    }

    #[test]
    fn or_row_into_merges_forward_and_backward() {
        let mut m = BitMatrix::new(100);
        m.set(0, 7);
        m.set(0, 70);
        m.or_row_into(0, 2);
        assert!(m.get(2, 7) && m.get(2, 70));
        m.set(5, 99);
        m.or_row_into(5, 1);
        assert!(m.get(1, 99));
        // Backward direction (src > dst already tested); same row is a no-op.
        m.or_row_into(1, 1);
        assert!(m.get(1, 99));
    }

    #[test]
    fn iter_row_yields_sorted_columns() {
        let mut m = BitMatrix::new(150);
        for c in [3usize, 64, 65, 149, 0] {
            m.set(9, c);
        }
        let cols: Vec<usize> = m.iter_row(9).collect();
        assert_eq!(cols, vec![0, 3, 64, 65, 149]);
        assert_eq!(m.row_count(9), 5);
    }

    #[test]
    fn transpose_mirrors_every_bit() {
        // Cross word boundaries and the ragged final block.
        let mut m = BitMatrix::new(150);
        let coords = [(0, 0), (0, 149), (149, 0), (63, 64), (64, 63), (7, 130), (100, 100)];
        for &(r, c) in &coords {
            m.set(r, c);
        }
        let t = m.transpose();
        assert_eq!(t.len(), m.len());
        for r in 0..150 {
            for c in 0..150 {
                assert_eq!(t.get(c, r), m.get(r, c), "({r},{c})");
            }
        }
        // Involution.
        assert!(t.transpose() == m);
    }

    #[test]
    fn transpose_matches_naive_on_dense_pattern() {
        let n = 130;
        let mut m = BitMatrix::new(n);
        for r in 0..n {
            for c in 0..n {
                if (r * 31 + c * 17) % 5 == 0 {
                    m.set(r, c);
                }
            }
        }
        let fast = m.transpose();
        let mut naive = BitMatrix::new(n);
        for r in 0..n {
            for c in m.iter_row(r) {
                naive.set(c, r);
            }
        }
        assert!(fast == naive);
    }

    #[test]
    fn row_words_expose_raw_layout() {
        let mut m = BitMatrix::new(100);
        m.set(3, 0);
        m.set(3, 64);
        let words = m.row_words(3);
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], 1);
        assert_eq!(words[1], 1);
    }

    #[test]
    fn row_intersects_is_word_parallel_and_tolerant_of_short_masks() {
        let mut m = BitMatrix::new(200);
        m.set(5, 190);
        m.set(5, 2);
        let mut mask = vec![0u64; 4];
        assert!(!m.row_intersects(5, &mask));
        mask[2] = 1u64 << (190 - 128);
        assert!(m.row_intersects(5, &mask));
        // A mask shorter than the row only covers its own words.
        assert!(!m.row_intersects(5, &[0u64]));
        assert!(m.row_intersects(5, &[1u64 << 2]));
    }

    #[test]
    fn grow_preserves_bits() {
        let mut m = BitMatrix::new(10);
        m.set(1, 9);
        m.set(9, 1);
        m.grow(300);
        assert_eq!(m.len(), 300);
        assert!(m.get(1, 9));
        assert!(m.get(9, 1));
        assert!(!m.get(1, 10));
        m.set(299, 299);
        assert!(m.get(299, 299));
        // Shrinking is a no-op.
        m.grow(5);
        assert_eq!(m.len(), 300);
    }
}
