//! A dense square bit matrix used for reachability / transitive closure.

/// A dense `n × n` bit matrix.
///
/// Row `i` is a bitset over columns; [`crate::algo::transitive_closure`]
/// stores "vertex `j` is reachable from vertex `i`" at `(i, j)`. Rows are
/// word-aligned so whole-row unions vectorise well — this is what keeps
/// closure maintenance cheap enough for the scheduler's inner loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; words_per_row * n],
        }
    }

    /// The dimension `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the `0 × 0` matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets bit `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn set(&mut self, row: usize, col: usize) {
        assert!(row < self.n && col < self.n, "bit ({row},{col}) out of range");
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads bit `(row, col)`; out-of-range queries return `false`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        if row >= self.n || col >= self.n {
            return false;
        }
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n);
        if src == dst {
            return;
        }
        let w = self.words_per_row;
        let (s, d) = (src * w, dst * w);
        // Split borrow: rows never overlap because src != dst.
        if s < d {
            let (left, right) = self.bits.split_at_mut(d);
            for i in 0..w {
                right[i] |= left[s + i];
            }
        } else {
            let (left, right) = self.bits.split_at_mut(s);
            for i in 0..w {
                left[d + i] |= right[i];
            }
        }
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Iterates the set columns of `row` in increasing order.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Grows the matrix to `new_n × new_n`, preserving existing bits.
    pub fn grow(&mut self, new_n: usize) {
        if new_n <= self.n {
            return;
        }
        let new_words = new_n.div_ceil(64);
        let mut next = BitMatrix {
            n: new_n,
            words_per_row: new_words,
            bits: vec![0; new_words * new_n],
        };
        for row in 0..self.n {
            let src = &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row];
            next.bits[row * new_words..row * new_words + self.words_per_row]
                .copy_from_slice(src);
        }
        *self = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_all_zero() {
        let m = BitMatrix::new(130);
        assert_eq!(m.len(), 130);
        for i in 0..130 {
            assert_eq!(m.row_count(i), 0);
        }
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::new(200);
        for &(r, c) in &[(0, 0), (0, 63), (0, 64), (3, 127), (199, 199), (5, 128)] {
            m.set(r, c);
            assert!(m.get(r, c), "({r},{c})");
        }
        assert!(!m.get(0, 1));
        assert!(!m.get(1, 0));
    }

    #[test]
    fn out_of_range_get_is_false() {
        let m = BitMatrix::new(4);
        assert!(!m.get(4, 0));
        assert!(!m.get(0, 4));
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut m = BitMatrix::new(4);
        m.set(0, 4);
    }

    #[test]
    fn or_row_into_merges_forward_and_backward() {
        let mut m = BitMatrix::new(100);
        m.set(0, 7);
        m.set(0, 70);
        m.or_row_into(0, 2);
        assert!(m.get(2, 7) && m.get(2, 70));
        m.set(5, 99);
        m.or_row_into(5, 1);
        assert!(m.get(1, 99));
        // Backward direction (src > dst already tested); same row is a no-op.
        m.or_row_into(1, 1);
        assert!(m.get(1, 99));
    }

    #[test]
    fn iter_row_yields_sorted_columns() {
        let mut m = BitMatrix::new(150);
        for c in [3usize, 64, 65, 149, 0] {
            m.set(9, c);
        }
        let cols: Vec<usize> = m.iter_row(9).collect();
        assert_eq!(cols, vec![0, 3, 64, 65, 149]);
        assert_eq!(m.row_count(9), 5);
    }

    #[test]
    fn grow_preserves_bits() {
        let mut m = BitMatrix::new(10);
        m.set(1, 9);
        m.set(9, 1);
        m.grow(300);
        assert_eq!(m.len(), 300);
        assert!(m.get(1, 9));
        assert!(m.get(9, 1));
        assert!(!m.get(1, 10));
        m.set(299, 299);
        assert!(m.get(299, 299));
        // Shrinking is a no-op.
        m.grow(5);
        assert_eq!(m.len(), 300);
    }
}
