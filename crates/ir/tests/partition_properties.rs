//! Property suite for the balanced acyclic min-cut partitioner
//! (ISSUE 8, satellite 1).
//!
//! 500 fuzzed stress DAGs, each partitioned at several block counts:
//!
//! * every block stays within the documented balance bound,
//! * the quotient is acyclic — in topological numbering, so every
//!   edge goes to an equal-or-higher block,
//! * the bisection cut never loses to a seeded random balanced
//!   bisection of the same graph (cut-size sanity), and in aggregate
//!   beats it by a wide margin,
//! * partitions are a pure function of (graph, config).

use hls_ir::partition::{self, PartitionConfig};
use hls_ir::{generate, OpId};

#[test]
fn fuzzed_partitions_are_balanced_acyclic_and_low_cut() {
    let mut total_cut = 0usize;
    let mut total_rand = 0usize;
    let mut graphs = 0usize;
    for case in 0..500u64 {
        let ops = 24 + (case as usize * 7) % 360;
        let g = generate::stress_dag(0xA11 + case, ops);
        let parts = [2, 3, 8][case as usize % 3];
        let cfg = PartitionConfig { parts, ..PartitionConfig::default() };
        let p = partition::partition(&g, &cfg).expect("stress DAGs are acyclic");
        p.validate(&g, cfg.tolerance)
            .unwrap_or_else(|e| panic!("case {case} ({ops} ops, {parts} parts): {e}"));

        // Quotient acyclicity, asserted directly on the edges as well
        // (validate checks it too; keep the property explicit here).
        for (u, v) in g.edges() {
            assert!(
                p.part_of(u) <= p.part_of(v),
                "case {case}: edge {u} -> {v} crosses blocks backwards"
            );
        }

        // Cut sanity vs a random balanced bisection.
        if parts == 2 {
            let cut = p.cut_size(&g);
            let rand_cut = partition::random_bisection(&g, 0xBEEF ^ case).cut_size(&g);
            assert!(
                cut <= rand_cut,
                "case {case}: min-cut bisection {cut} lost to random {rand_cut}"
            );
            total_cut += cut;
            total_rand += rand_cut;
            graphs += 1;
        }
    }
    assert!(graphs >= 150, "the suite must exercise plenty of bisections");
    assert!(
        total_cut * 2 <= total_rand,
        "aggregate min-cut {total_cut} should beat random {total_rand} by at least 2x"
    );
}

#[test]
fn partitions_are_deterministic_across_runs() {
    for seed in 0..20u64 {
        let g = generate::stress_dag(0xDE7 + seed, 200 + seed as usize * 13);
        for parts in [2usize, 4, 8] {
            let cfg = PartitionConfig { parts, ..PartitionConfig::default() };
            let a = partition::partition(&g, &cfg).unwrap();
            let b = partition::partition(&g, &cfg).unwrap();
            assert_eq!(a, b, "seed {seed} parts {parts}: partition not deterministic");
        }
    }
}

#[test]
fn blocks_cover_every_op_exactly_once() {
    for seed in 0..20u64 {
        let g = generate::stress_dag(0xC0DE + seed, 150);
        let cfg = PartitionConfig { parts: 5, ..PartitionConfig::default() };
        let p = partition::partition(&g, &cfg).unwrap();
        let mut seen = vec![false; g.len()];
        for (b, block) in p.blocks().iter().enumerate() {
            for &v in block {
                assert_eq!(p.part_of(v), b);
                assert!(!seen[v.index()], "op {v} appears in two blocks");
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every op must land in a block");
    }
}

#[test]
fn cut_edges_match_cut_size() {
    let g = generate::stress_dag(0xFACE, 300);
    let cfg = PartitionConfig { parts: 4, ..PartitionConfig::default() };
    let p = partition::partition(&g, &cfg).unwrap();
    let edges = p.cut_edges(&g);
    assert_eq!(edges.len(), p.cut_size(&g));
    for (u, v) in edges {
        assert_ne!(p.part_of(u), p.part_of(v));
        assert!(g.has_edge(u, v));
    }
}

#[test]
fn degenerate_graphs_partition_cleanly() {
    // Empty graph.
    let g = hls_ir::PrecedenceGraph::new();
    let p = partition::partition(&g, &PartitionConfig::default()).unwrap();
    assert_eq!(p.len(), 0);

    // Single op, many requested parts.
    let mut g = hls_ir::PrecedenceGraph::new();
    g.add_op(hls_ir::OpKind::Add, 1, "only");
    let p = partition::partition(&g, &PartitionConfig { parts: 8, ..PartitionConfig::default() })
        .unwrap();
    assert_eq!(p.parts(), 1);
    assert_eq!(p.part_of(OpId::from_index(0)), 0);

    // A pure chain: blocks must be contiguous chain segments.
    let g = generate::independent_chains(1, 64, &hls_ir::DelayModel::classic());
    let cfg = PartitionConfig { parts: 4, ..PartitionConfig::default() };
    let p = partition::partition(&g, &cfg).unwrap();
    p.validate(&g, cfg.tolerance).unwrap();
    assert_eq!(p.cut_size(&g), 3, "a 4-way chain split cuts exactly 3 edges");
}
