//! Property tests for the chain-cover reachability index: on random
//! DAGs mutated by random refinement sequences (`splice_on_edge` chains
//! and ECO-style added ops — the exact growth patterns the schedulers
//! produce), the incrementally grown [`ReachIndex`] must answer every
//! query exactly like the dense [`BitMatrix`] closure oracle.

use hls_ir::{algo, generate, reach::ReachIndex, DelayModel, PrecedenceGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts that `idx` agrees with the dense closures of `g` — both the
/// structural `check()` (chains, down/up rows) and an explicit
/// all-pairs `reaches` sweep against [`algo::closures`].
fn assert_matches_dense(
    idx: &ReachIndex,
    g: &PrecedenceGraph,
    tag: &str,
) -> Result<(), TestCaseError> {
    if let Err(e) = idx.check(g) {
        return Err(TestCaseError::fail(format!("[{tag}] index check: {e}")));
    }
    let (anc, desc) = algo::closures(g);
    for u in 0..g.len() {
        for v in 0..g.len() {
            prop_assert_eq!(
                idx.reaches(u, v),
                desc.get(u, v),
                "[{}] reaches({}, {})",
                tag,
                u,
                v
            );
        }
    }
    // Set-level probes (ChainExtrema) against the same oracle, over a
    // few deterministic stride-subsets of the vertices.
    for stride in [2usize, 3, 7] {
        let set: Vec<usize> = (0..g.len()).step_by(stride).collect();
        let ex = idx.extrema(set.iter().copied());
        for v in 0..g.len() {
            let want_reach = set.iter().any(|&u| desc.get(u, v));
            let want_by = set.iter().any(|&u| anc.get(u, v));
            prop_assert_eq!(
                idx.set_reaches(&ex, v),
                want_reach,
                "[{}] set_reaches stride {} at {}",
                tag,
                stride,
                v
            );
            prop_assert_eq!(
                idx.set_reached_by(&ex, v),
                want_by,
                "[{}] set_reached_by stride {} at {}",
                tag,
                stride,
                v
            );
        }
        // Convex closure: exactly the seeds plus the strictly-between
        // vertices.
        let cone = idx.convex_closure(&set);
        for v in 0..g.len() {
            let between = set.iter().any(|&u| desc.get(u, v))
                && set.iter().any(|&u| anc.get(u, v));
            let want = set.contains(&v) || between;
            prop_assert_eq!(
                cone.binary_search(&v).is_ok(),
                want,
                "[{}] convex_closure stride {} at {}",
                tag,
                stride,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random layered DAG, then a random sequence of refinement
    /// mutations; the grown index must stay exactly equivalent to a
    /// dense closure recomputed from scratch after every step.
    #[test]
    fn grown_index_matches_dense_closure(
        seed in 0u64..100_000,
        ops in 2usize..48,
        width in 2usize..10,
        mutations in 1usize..7,
    ) {
        let cfg = generate::LayeredConfig {
            ops,
            width,
            edge_prob: 0.3,
            ..generate::LayeredConfig::default()
        };
        let mut g = generate::layered_dag(seed, &cfg);
        let mut idx = ReachIndex::build(&g);
        assert_matches_dense(&idx, &g, "initial")?;
        // The refinement mutation shapes live in `hls_ir::generate`,
        // shared with the scheduler invariant fuzz suites.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        for m in 0..mutations {
            if rng.random_range(0..2u32) == 0 {
                generate::random_splice(&mut g, &mut rng, m);
            } else {
                generate::random_eco_op(&mut g, &mut rng, m);
            }
            idx.grow(&g);
            assert_matches_dense(&idx, &g, &format!("after mutation {m}"))?;
        }
        // A fresh build over the final graph picks a different chain
        // cover but must give identical answers.
        let fresh = ReachIndex::build(&g);
        for u in 0..g.len() {
            for v in 0..g.len() {
                prop_assert_eq!(idx.reaches(u, v), fresh.reaches(u, v), "grown vs fresh at ({}, {})", u, v);
            }
        }
    }

    /// Unstructured (non-layered) random DAGs exercise covers far from
    /// the generator's layer structure.
    #[test]
    fn index_matches_dense_closure_on_unstructured_dags(
        seed in 0u64..100_000,
        n in 1usize..40,
    ) {
        let g = generate::random_dag(seed, n, 0.2, &DelayModel::classic());
        let idx = ReachIndex::build(&g);
        assert_matches_dense(&idx, &g, "unstructured")?;
    }
}
