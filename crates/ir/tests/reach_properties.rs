//! Property tests for the chain-cover reachability index: on random
//! DAGs mutated by random refinement sequences (`splice_on_edge` chains
//! and ECO-style added ops — the exact growth patterns the schedulers
//! produce), the incrementally grown [`ReachIndex`] must answer every
//! query exactly like the dense [`BitMatrix`] closure oracle.

use hls_ir::{algo, generate, reach::ReachIndex, DelayModel, PrecedenceGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts that `idx` agrees with the dense closures of `g` — both the
/// structural `check()` (chains, down/up rows) and an explicit
/// all-pairs `reaches` sweep against [`algo::closures`].
fn assert_matches_dense(
    idx: &ReachIndex,
    g: &PrecedenceGraph,
    tag: &str,
) -> Result<(), TestCaseError> {
    if let Err(e) = idx.check(g) {
        return Err(TestCaseError::fail(format!("[{tag}] index check: {e}")));
    }
    let (anc, desc) = algo::closures(g);
    for u in 0..g.len() {
        for v in 0..g.len() {
            prop_assert_eq!(
                idx.reaches(u, v),
                desc.get(u, v),
                "[{}] reaches({}, {})",
                tag,
                u,
                v
            );
        }
    }
    // Set-level probes (ChainExtrema) against the same oracle, over a
    // few deterministic stride-subsets of the vertices.
    for stride in [2usize, 3, 7] {
        let set: Vec<usize> = (0..g.len()).step_by(stride).collect();
        let ex = idx.extrema(set.iter().copied());
        for v in 0..g.len() {
            let want_reach = set.iter().any(|&u| desc.get(u, v));
            let want_by = set.iter().any(|&u| anc.get(u, v));
            prop_assert_eq!(
                idx.set_reaches(&ex, v),
                want_reach,
                "[{}] set_reaches stride {} at {}",
                tag,
                stride,
                v
            );
            prop_assert_eq!(
                idx.set_reached_by(&ex, v),
                want_by,
                "[{}] set_reached_by stride {} at {}",
                tag,
                stride,
                v
            );
        }
        // Convex closure: exactly the seeds plus the strictly-between
        // vertices.
        let cone = idx.convex_closure(&set);
        for v in 0..g.len() {
            let between = set.iter().any(|&u| desc.get(u, v))
                && set.iter().any(|&u| anc.get(u, v));
            let want = set.contains(&v) || between;
            prop_assert_eq!(
                cone.binary_search(&v).is_ok(),
                want,
                "[{}] convex_closure stride {} at {}",
                tag,
                stride,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random layered DAG, then a random sequence of refinement
    /// mutations; the grown index must stay exactly equivalent to a
    /// dense closure recomputed from scratch after every step.
    #[test]
    fn grown_index_matches_dense_closure(
        seed in 0u64..100_000,
        ops in 2usize..48,
        width in 2usize..10,
        mutations in 1usize..7,
    ) {
        let cfg = generate::LayeredConfig {
            ops,
            width,
            edge_prob: 0.3,
            ..generate::LayeredConfig::default()
        };
        let mut g = generate::layered_dag(seed, &cfg);
        let mut idx = ReachIndex::build(&g);
        assert_matches_dense(&idx, &g, "initial")?;
        // The refinement mutation shapes live in `hls_ir::generate`,
        // shared with the scheduler invariant fuzz suites.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        for m in 0..mutations {
            if rng.random_range(0..2u32) == 0 {
                generate::random_splice(&mut g, &mut rng, m);
            } else {
                generate::random_eco_op(&mut g, &mut rng, m);
            }
            idx.grow(&g);
            assert_matches_dense(&idx, &g, &format!("after mutation {m}"))?;
        }
        // A fresh build over the final graph picks a different chain
        // cover but must give identical answers.
        let fresh = ReachIndex::build(&g);
        for u in 0..g.len() {
            for v in 0..g.len() {
                prop_assert_eq!(idx.reaches(u, v), fresh.reaches(u, v), "grown vs fresh at ({}, {})", u, v);
            }
        }
    }

    /// Unstructured (non-layered) random DAGs exercise covers far from
    /// the generator's layer structure.
    #[test]
    fn index_matches_dense_closure_on_unstructured_dags(
        seed in 0u64..100_000,
        n in 1usize..40,
    ) {
        let g = generate::random_dag(seed, n, 0.2, &DelayModel::classic());
        let idx = ReachIndex::build(&g);
        assert_matches_dense(&idx, &g, "unstructured")?;
    }
}

/// One lane value, biased toward the extremum-row edge cases: the
/// sentinels 0 and `u16::MAX` (`NO_UP`-style saturation), the
/// off-by-one neighbours, and uniform noise.
fn lane(rng: &mut StdRng) -> u16 {
    match rng.random_range(0..16u32) {
        0..=2 => 0,
        3..=4 => 1,
        5..=6 => u16::MAX - 1,
        7..=9 => u16::MAX,
        _ => rng.random_range(0..65536u32) as u16,
    }
}

/// A row sized `4·blocks + tail` so every ragged-tail length 0–9
/// beyond the packed 4-lane words is drawn, including the all-tail
/// (< 4 lanes) and empty rows.
fn row(rng: &mut StdRng, blocks: usize, tail: usize) -> Vec<u16> {
    (0..4 * blocks + tail).map(|_| lane(rng)).collect()
}

/// Runs one differential round: the word-parallel kernels against
/// their scalar oracles on the same inputs — identical `changed`
/// verdicts and identical resulting rows.
fn assert_kernels_match(dst: &[u16], src: &[u16], tag: &str) -> Result<(), TestCaseError> {
    use hls_ir::reach::kernels;
    let (mut w, mut s) = (dst.to_vec(), dst.to_vec());
    prop_assert_eq!(
        kernels::min_into(&mut w, src),
        kernels::min_into_scalar(&mut s, src),
        "[{}] min_into changed-flag",
        tag
    );
    prop_assert_eq!(&w, &s, "[{}] min_into rows", tag);

    let (mut w, mut s) = (dst.to_vec(), dst.to_vec());
    prop_assert_eq!(
        kernels::max_into(&mut w, src),
        kernels::max_into_scalar(&mut s, src),
        "[{}] max_into changed-flag",
        tag
    );
    prop_assert_eq!(&w, &s, "[{}] max_into rows", tag);

    prop_assert_eq!(
        kernels::any_le(dst, src),
        kernels::any_le_scalar(dst, src),
        "[{}] any_le",
        tag
    );
    // The probe relation is asymmetric — cover both argument orders.
    prop_assert_eq!(
        kernels::any_le(src, dst),
        kernels::any_le_scalar(src, dst),
        "[{}] any_le swapped",
        tag
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Differential fuzz of the word-parallel extremum kernels against
    /// their scalar oracles: random rows across every ragged-tail
    /// length 0–9, lane values biased toward 0 / saturation, and
    /// mismatched row lengths (the kernels clamp to the shorter row).
    #[test]
    fn word_kernels_match_scalar_oracles(
        seed in 0u64..1_000_000,
        dst_blocks in 0usize..6,
        dst_tail in 0usize..10,
        src_blocks in 0usize..6,
        src_tail in 0usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
        let dst = row(&mut rng, dst_blocks, dst_tail);
        let src = row(&mut rng, src_blocks, src_tail);
        assert_kernels_match(&dst, &src, "fuzzed")?;
    }
}

/// The deterministic edge rows the fuzz bias can only make likely:
/// all-equal and all-saturated rows at every ragged-tail length 0–9 —
/// the carry/borrow extremes of the packed-guard-bit comparison, where
/// a SWAR off-by-one would hide.
#[test]
fn word_kernels_match_scalar_oracles_on_edge_rows() {
    for tail in 0usize..10 {
        for blocks in [0usize, 1, 3] {
            let n = 4 * blocks + tail;
            for v in [0u16, 1, u16::MAX - 1, u16::MAX] {
                let equal = vec![v; n];
                assert_kernels_match(&equal, &equal, &format!("all-{v} len {n}"))
                    .unwrap_or_else(|e| panic!("{e:?}"));
                // Saturated against its off-by-one neighbour: the
                // lane-subtract borrow straddles the guard bit.
                let below = vec![v.saturating_sub(1); n];
                assert_kernels_match(&equal, &below, &format!("{v} vs -1 len {n}"))
                    .unwrap_or_else(|e| panic!("{e:?}"));
                assert_kernels_match(&below, &equal, &format!("-1 vs {v} len {n}"))
                    .unwrap_or_else(|e| panic!("{e:?}"));
            }
            // Alternating saturated / zero lanes: adjacent-lane
            // isolation (a borrow must never cross a lane boundary).
            let alt: Vec<u16> = (0..n).map(|i| if i % 2 == 0 { u16::MAX } else { 0 }).collect();
            let rev: Vec<u16> = (0..n).map(|i| if i % 2 == 0 { 0 } else { u16::MAX }).collect();
            assert_kernels_match(&alt, &rev, &format!("alternating len {n}"))
                .unwrap_or_else(|e| panic!("{e:?}"));
        }
    }
}
