//! Property tests for the textfmt wire format: parse∘print identity
//! on generated graphs (acyclic and loop kernels, with operands), and
//! panic-free, *positioned* rejection of truncated or oversized
//! input. The serve daemon feeds network bytes straight into this
//! parser, so "never panics, always blames a position" is a load-
//! bearing property, not a nicety.

use hls_ir::textfmt::{self, Limits};
use hls_ir::{bench_graphs, generate, sim_operands, OpId, PrecedenceGraph};

/// Structural equality over everything the wire format carries.
fn assert_same(a: &PrecedenceGraph, b: &PrecedenceGraph) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let v = OpId::from_index(i);
        assert_eq!(a.kind(v), b.kind(v), "kind of op {i}");
        assert_eq!(a.delay(v), b.delay(v), "delay of op {i}");
        assert_eq!(a.label(v), b.label(v), "label of op {i}");
        assert_eq!(a.operands(v), b.operands(v), "operands of op {i}");
    }
    let edges = |g: &PrecedenceGraph| {
        let mut e: Vec<(usize, usize, u32)> = g
            .edges_dist()
            .map(|(x, y, d)| (x.index(), y.index(), d))
            .collect();
        e.sort_unstable();
        e
    };
    assert_eq!(edges(a), edges(b));
}

fn corpus() -> Vec<PrecedenceGraph> {
    let mut graphs: Vec<PrecedenceGraph> = bench_graphs::all()
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    // Loop kernels: carried-distance edges must survive the wire.
    graphs.extend(bench_graphs::loops().into_iter().map(|(_, g)| g));
    // Seeded random DAGs, a few with inferred operand annotations.
    for seed in 0..24u64 {
        let mut g = generate::stress_dag(0xD0C_0000 + seed, 60 + (seed as usize % 5) * 37);
        if seed % 3 == 0 {
            sim_operands::infer(&mut g);
        }
        graphs.push(g);
    }
    graphs
}

#[test]
fn print_parse_is_the_identity_on_generated_graphs() {
    for (i, g) in corpus().into_iter().enumerate() {
        let text = textfmt::to_text(&g);
        let back = textfmt::from_text(&text)
            .unwrap_or_else(|e| panic!("graph #{i} failed to re-parse: {e}"));
        assert_same(&g, &back);
        // And the printed form is a fixed point.
        assert_eq!(text, textfmt::to_text(&back), "graph #{i} print not stable");
    }
}

#[test]
fn truncated_input_never_panics_and_errors_carry_positions() {
    // Truncating a valid document at an arbitrary byte must yield
    // either a (smaller) valid graph or a typed error with an
    // in-bounds position — never a panic, never a nonsense position.
    let mut g = generate::stress_dag(0xBAD_C0DE, 120);
    sim_operands::infer(&mut g);
    let mut docs = vec![textfmt::to_text(&g)];
    for (_, k) in bench_graphs::loops() {
        docs.push(textfmt::to_text(&k));
    }
    for doc in docs {
        for cut in 0..doc.len() {
            let prefix = &doc[..cut];
            if !prefix.is_char_boundary(prefix.len()) {
                continue;
            }
            match textfmt::from_text(prefix) {
                Ok(sub) => assert!(sub.len() <= g.len().max(64)),
                Err(e) => {
                    let lines = prefix.lines().count().max(1);
                    assert!(
                        e.line <= lines,
                        "error line {} beyond {} lines of input",
                        e.line,
                        lines
                    );
                    // Rendering must embed the position.
                    let shown = e.to_string();
                    assert!(
                        shown.contains(&format!("line {}", e.line)) || e.line == 0,
                        "unpositioned error `{shown}`"
                    );
                }
            }
        }
    }
}

#[test]
fn oversized_input_is_rejected_at_the_crossing_byte_not_after_allocation() {
    let g = generate::stress_dag(0xFEED, 200);
    let text = textfmt::to_text(&g);
    let limits = Limits {
        max_bytes: text.len() / 2,
        ..Limits::serving()
    };
    let e = textfmt::from_text_limited(&text, &limits).unwrap_err();
    assert!(e.msg.contains("exceeds"), "unexpected message `{}`", e.msg);
    // The blamed position is where the limit was crossed — inside the
    // document, not line 0 / end-of-input.
    assert!(e.line >= 1 && e.line < text.lines().count());
}

#[test]
fn op_and_edge_bombs_are_rejected_by_count_limits() {
    let g = generate::stress_dag(0x0B0E, 150);
    let text = textfmt::to_text(&g);
    let tight_ops = Limits {
        max_ops: 10,
        ..Limits::serving()
    };
    let e = textfmt::from_text_limited(&text, &tight_ops).unwrap_err();
    assert!(e.msg.contains("op limit"), "got `{}`", e.msg);
    assert_eq!(e.line, 12, "blamed at the first op past the limit");

    let tight_edges = Limits {
        max_edges: 5,
        ..Limits::serving()
    };
    let e = textfmt::from_text_limited(&text, &tight_edges).unwrap_err();
    assert!(e.msg.contains("edge limit"), "got `{}`", e.msg);
    assert!(e.line > 0);
}
