//! Grid floorplan and simulated-annealing placement.

use hls_ir::{HardSchedule, PrecedenceGraph, ResourceSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A placement of functional units on an integer grid.
///
/// Unit `u` sits at `position(u)`; data travelling between two units
/// covers their Manhattan distance. Registers are assumed adjacent to
/// the producing unit (the classical datapath-slice layout), so
/// unit-to-unit distance models the whole transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Floorplan {
    width: usize,
    height: usize,
    /// Per unit: linear site index.
    site_of: Vec<usize>,
}

impl Floorplan {
    /// Places `units` functional units row-major on a `width × height`
    /// grid (the deterministic initial placement).
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer sites than units.
    pub fn row_major(units: usize, width: usize, height: usize) -> Self {
        assert!(width * height >= units, "grid too small for {units} units");
        Floorplan {
            width,
            height,
            site_of: (0..units).collect(),
        }
    }

    /// Number of placed units.
    pub fn units(&self) -> usize {
        self.site_of.len()
    }

    /// Grid dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The `(x, y)` cell of unit `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn position(&self, u: usize) -> (usize, usize) {
        let s = self.site_of[u];
        (s % self.width, s / self.width)
    }

    /// Manhattan distance between two units' cells.
    pub fn distance(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// Total traffic-weighted wirelength for a transfer matrix
    /// (`traffic[a][b]` = words moved from unit `a` to unit `b`).
    pub fn wirelength(&self, traffic: &[Vec<u64>]) -> u64 {
        let mut total = 0;
        for (a, row) in traffic.iter().enumerate() {
            for (b, &w) in row.iter().enumerate() {
                if w > 0 {
                    total += w * self.distance(a, b);
                }
            }
        }
        total
    }

    fn swap_sites(&mut self, a: usize, b: usize) {
        self.site_of.swap(a, b);
    }
}

/// Builds the unit-to-unit traffic matrix of a bound schedule: one word
/// per dataflow edge between two bound operations.
pub fn traffic_matrix(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    resources: &ResourceSet,
) -> Vec<Vec<u64>> {
    let k = resources.k();
    let mut m = vec![vec![0u64; k]; k];
    for (p, q) in g.edges() {
        if let (Some(a), Some(b)) = (sched.unit(p), sched.unit(q)) {
            if a != b {
                m[a][b] += 1;
            }
        }
    }
    m
}

/// Simulated-annealing parameters.
#[derive(Clone, Debug)]
pub struct PlaceConfig {
    /// RNG seed (placement is deterministic per seed).
    pub seed: u64,
    /// Moves per temperature step.
    pub moves_per_temp: usize,
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// Temperature at which annealing stops.
    pub t_min: f64,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            seed: 1,
            moves_per_temp: 64,
            t0: 8.0,
            cooling: 0.9,
            t_min: 0.05,
        }
    }
}

/// Anneals unit positions to minimise traffic-weighted wirelength,
/// starting from `start`. Deterministic per configuration seed; never
/// returns a placement worse than the best seen.
pub fn place(start: &Floorplan, traffic: &[Vec<u64>], cfg: &PlaceConfig) -> Floorplan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cur = start.clone();
    let mut cur_cost = cur.wirelength(traffic) as f64;
    let mut best = cur.clone();
    let mut best_cost = cur_cost;
    let units = cur.units();
    if units < 2 {
        return best;
    }
    let mut t = cfg.t0;
    while t > cfg.t_min {
        for _ in 0..cfg.moves_per_temp {
            let a = rng.random_range(0..units);
            let mut b = rng.random_range(0..units);
            while b == a {
                b = rng.random_range(0..units);
            }
            cur.swap_sites(a, b);
            let cost = cur.wirelength(traffic) as f64;
            let accept = cost <= cur_cost || {
                let p = ((cur_cost - cost) / t).exp();
                rng.random_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                cur_cost = cost;
                if cost < best_cost {
                    best_cost = cost;
                    best = cur.clone();
                }
            } else {
                cur.swap_sites(a, b); // undo
            }
        }
        t *= cfg.cooling;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, ResourceSet};

    #[test]
    fn row_major_positions_are_dense() {
        let fp = Floorplan::row_major(5, 3, 2);
        assert_eq!(fp.units(), 5);
        assert_eq!(fp.position(0), (0, 0));
        assert_eq!(fp.position(2), (2, 0));
        assert_eq!(fp.position(3), (0, 1));
        assert_eq!(fp.distance(0, 3), 1);
        assert_eq!(fp.distance(0, 4), 2);
        assert_eq!(fp.dims(), (3, 2));
    }

    #[test]
    #[should_panic]
    fn too_small_grid_panics() {
        let _ = Floorplan::row_major(7, 2, 3);
    }

    #[test]
    fn traffic_matrix_counts_cross_unit_edges() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let out =
            hls_baselines::list_schedule(&g, &r, hls_baselines::Priority::CriticalPath).unwrap();
        let m = traffic_matrix(&g, &out.schedule, &r);
        let total: u64 = m.iter().flatten().sum();
        assert!(total > 0, "HAL has cross-unit transfers");
        assert!(total as usize <= g.edge_count());
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0, "self traffic is excluded");
        }
    }

    #[test]
    fn annealing_never_worsens_the_start() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 1);
        let out =
            hls_baselines::list_schedule(&g, &r, hls_baselines::Priority::CriticalPath).unwrap();
        let traffic = traffic_matrix(&g, &out.schedule, &r);
        let start = Floorplan::row_major(r.k(), 2, 2);
        let placed = place(&start, &traffic, &PlaceConfig::default());
        assert!(placed.wirelength(&traffic) <= start.wirelength(&traffic));
    }

    #[test]
    fn annealing_finds_the_obvious_optimum() {
        // Two hot units and two idle ones on a 1x4 strip: the hot pair
        // must end up adjacent.
        let traffic = vec![
            vec![0, 100, 0, 0],
            vec![100, 0, 0, 0],
            vec![0, 0, 0, 1],
            vec![0, 0, 1, 0],
        ];
        // Start with the hot pair maximally separated.
        let mut start = Floorplan::row_major(4, 4, 1);
        start.swap_sites(1, 3);
        assert_eq!(start.distance(0, 1), 3);
        let placed = place(&start, &traffic, &PlaceConfig::default());
        assert_eq!(placed.distance(0, 1), 1, "hot pair must be adjacent");
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let traffic = vec![vec![0, 3, 1], vec![3, 0, 2], vec![1, 2, 0]];
        let start = Floorplan::row_major(3, 3, 1);
        let a = place(&start, &traffic, &PlaceConfig::default());
        let b = place(&start, &traffic, &PlaceConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn single_unit_placement_is_a_noop() {
        let start = Floorplan::row_major(1, 1, 1);
        let placed = place(&start, &[vec![0]], &PlaceConfig::default());
        assert_eq!(placed, start);
    }
}
