//! Simulated physical-design substrate.
//!
//! The paper's second phase-coupling scenario (Section 1) is physical
//! design: "the interconnect delay can be determined only after place
//! and route". The authors used a real layout flow; this crate
//! substitutes a deterministic, laptop-scale model that exercises the
//! identical refinement code path (see `DESIGN.md` §5):
//!
//! * [`Floorplan`] — functional units as cells on an integer grid;
//! * [`place`] — seeded simulated-annealing placement minimising
//!   traffic-weighted Manhattan wirelength;
//! * [`WireModel`] — distance → extra interconnect cycles;
//! * [`annotate`] — derives, for a bound schedule, which data transfers
//!   need wire-delay vertices (consumed by
//!   `threaded_sched::refine::insert_wire_delay`).

mod floorplan;
mod model;

pub use floorplan::{place, traffic_matrix, Floorplan, PlaceConfig};
pub use model::{annotate, Transfer, WireModel};
