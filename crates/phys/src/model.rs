//! Wire-delay model and schedule annotation.

use crate::Floorplan;
use hls_ir::{HardSchedule, OpId, PrecedenceGraph};

/// Maps Manhattan distance to extra interconnect cycles.
///
/// A transfer within `reach` grid cells completes inside the consumer's
/// start step (no penalty); beyond that, every additional `reach` cells
/// cost one cycle. This is the standard linear-delay abstraction of deep
/// submicron interconnect at the architectural level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WireModel {
    /// Grid cells coverable within one clock cycle.
    pub reach: u64,
}

impl WireModel {
    /// A model where `reach` cells are free and each further `reach`
    /// cells cost one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `reach` is zero.
    pub fn new(reach: u64) -> Self {
        assert!(reach > 0, "reach must be positive");
        WireModel { reach }
    }

    /// Extra cycles for a transfer over `distance` cells.
    pub fn cycles(self, distance: u64) -> u64 {
        distance / self.reach
    }
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel::new(2)
    }
}

/// A data transfer that needs one or more wire-delay cycles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Producing operation.
    pub from: OpId,
    /// Consuming operation.
    pub to: OpId,
    /// Extra interconnect cycles required.
    pub cycles: u64,
}

/// Computes the wire-delay vertices a bound schedule needs under a
/// placement: one [`Transfer`] per dataflow edge whose units are further
/// apart than the model's single-cycle reach.
///
/// The result feeds `threaded_sched::refine::insert_wire_delay` — the
/// paper's Figure 1(d) refinement.
pub fn annotate(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    fp: &Floorplan,
    model: WireModel,
) -> Vec<Transfer> {
    let mut out = Vec::new();
    for (p, q) in g.edges() {
        if let (Some(a), Some(b)) = (sched.unit(p), sched.unit(q)) {
            if a == b {
                continue;
            }
            let cycles = model.cycles(fp.distance(a, b));
            if cycles > 0 {
                out.push(Transfer {
                    from: p,
                    to: q,
                    cycles,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, ResourceSet};

    #[test]
    fn wire_model_quantises_distance() {
        let m = WireModel::new(2);
        assert_eq!(m.cycles(0), 0);
        assert_eq!(m.cycles(1), 0);
        assert_eq!(m.cycles(2), 1);
        assert_eq!(m.cycles(5), 2);
    }

    #[test]
    #[should_panic]
    fn zero_reach_is_rejected() {
        let _ = WireModel::new(0);
    }

    #[test]
    fn annotate_flags_only_far_transfers() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let out =
            hls_baselines::list_schedule(&g, &r, hls_baselines::Priority::CriticalPath).unwrap();
        // A 1x4 strip stretches some unit pairs beyond reach 1.
        let fp = Floorplan::row_major(r.k(), 4, 1);
        let transfers = annotate(&g, &out.schedule, &fp, WireModel::new(1));
        assert!(!transfers.is_empty(), "HAL has cross-unit transfers over 1 cell");
        for t in &transfers {
            let a = out.schedule.unit(t.from).unwrap();
            let b = out.schedule.unit(t.to).unwrap();
            assert!(fp.distance(a, b) >= 1);
            assert!(t.cycles >= 1);
            assert!(g.has_edge(t.from, t.to));
        }
        // With a generous reach nothing is flagged.
        let none = annotate(&g, &out.schedule, &fp, WireModel::new(10));
        assert!(none.is_empty());
    }

    #[test]
    fn same_unit_transfers_are_free() {
        let g = bench_graphs::fir();
        let r = ResourceSet::classic(1, 1);
        let out =
            hls_baselines::list_schedule(&g, &r, hls_baselines::Priority::CriticalPath).unwrap();
        let fp = Floorplan::row_major(r.k(), 2, 1);
        for t in annotate(&g, &out.schedule, &fp, WireModel::new(1)) {
            assert_ne!(
                out.schedule.unit(t.from),
                out.schedule.unit(t.to),
                "same-unit edges must not be annotated"
            );
        }
    }
}
