//! Resource-constrained list scheduling.
//!
//! The classic cycle-by-cycle greedy scheduler: at every control step the
//! ready operations are sorted by priority and packed onto free compatible
//! functional units. This is the baseline ("list sched") of the paper's
//! Figure 3, and its issue order is the paper's "meta schedule 4".

use crate::BaselineError;
use hls_ir::{algo, HardSchedule, OpId, PrecedenceGraph, ResourceClass, ResourceSet};

/// Ready-list priority function.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Longest path to a sink (critical-path priority) — the standard
    /// choice, used for the Figure 3 reproduction.
    #[default]
    CriticalPath,
    /// Inverse mobility under the critical-path latency (ties broken by
    /// sink distance).
    Mobility,
    /// Graph input order (a deliberately weak priority, for ablations).
    InputOrder,
}

impl Priority {
    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::CriticalPath => "critical-path",
            Priority::Mobility => "mobility",
            Priority::InputOrder => "input-order",
        }
    }
}

/// The result of [`list_schedule`].
#[derive(Clone, Debug)]
pub struct ListOutcome {
    /// The hard schedule (start step and unit per operation).
    pub schedule: HardSchedule,
    /// Operations in issue order — `(start, priority)` lexicographic. This
    /// realises the paper's "meta schedule 4".
    pub order: Vec<OpId>,
}

impl ListOutcome {
    /// Schedule length in control steps.
    pub fn length(&self, g: &PrecedenceGraph) -> u64 {
        self.schedule.length(g)
    }
}

/// Schedules `g` under the resource constraints of `resources` with the
/// given ready-list priority.
///
/// Zero-resource operations ([`ResourceClass::Wire`]) issue as soon as
/// their predecessors finish; they occupy no unit.
///
/// # Errors
///
/// Returns [`BaselineError::CyclicInput`] for cyclic graphs and
/// [`BaselineError::NoCompatibleUnit`] if some operation has no unit able
/// to execute it.
pub fn list_schedule(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    priority: Priority,
) -> Result<ListOutcome, BaselineError> {
    if algo::topo_order(g).is_err() {
        return Err(BaselineError::CyclicInput);
    }
    for v in g.op_ids() {
        let kind = g.kind(v);
        if kind.resource_class() != ResourceClass::Wire
            && resources.compatible_units(kind).is_empty()
        {
            return Err(BaselineError::NoCompatibleUnit(v, kind));
        }
    }

    let prio = priority_keys(g, priority);
    let n = g.len();
    let mut sched = HardSchedule::new(n);
    let mut unit_free = vec![0u64; resources.k()];
    let mut remaining_preds: Vec<usize> = g.op_ids().map(|v| g.preds(v).len()).collect();
    // ready_at[v] = max finish of scheduled preds; valid once remaining==0.
    let mut ready_at = vec![0u64; n];
    let mut unscheduled = n;
    let mut order = Vec::with_capacity(n);
    let mut t = 0u64;

    while unscheduled > 0 {
        // Ready ops at step t, highest priority first (ties: op id).
        let mut ready: Vec<OpId> = g
            .op_ids()
            .filter(|&v| {
                sched.start(v).is_none() && remaining_preds[v.index()] == 0 && ready_at[v.index()] <= t
            })
            .collect();
        ready.sort_by_key(|&v| (std::cmp::Reverse(prio[v.index()]), v));

        let mut issued_any = false;
        for v in ready {
            let kind = g.kind(v);
            let placed = if kind.resource_class() == ResourceClass::Wire {
                Some(None)
            } else {
                resources
                    .compatible_units(kind)
                    .into_iter()
                    .find(|&u| unit_free[u] <= t)
                    .map(Some)
            };
            if let Some(unit) = placed {
                sched.assign(v, t, unit);
                if let Some(u) = unit {
                    unit_free[u] = t + g.delay(v);
                }
                let finish = t + g.delay(v);
                for &q in g.succs(v) {
                    remaining_preds[q.index()] -= 1;
                    ready_at[q.index()] = ready_at[q.index()].max(finish);
                }
                order.push(v);
                unscheduled -= 1;
                issued_any = true;
            }
        }
        // Advance time; the loop terminates because either something was
        // issued or some in-flight op finishes / unit frees strictly later.
        let _ = issued_any;
        t += 1;
    }
    Ok(ListOutcome {
        schedule: sched,
        order,
    })
}

fn priority_keys(g: &PrecedenceGraph, priority: Priority) -> Vec<u64> {
    match priority {
        Priority::CriticalPath => algo::sink_distances(g),
        Priority::Mobility => {
            let latency = algo::diameter(g);
            let tdist = algo::sink_distances(g);
            match crate::mobility(g, latency) {
                Ok(mob) => {
                    let max_mob = mob.iter().copied().max().unwrap_or(0);
                    g.op_ids()
                        // Scale so low mobility dominates; sink distance
                        // breaks ties.
                        .map(|v| (max_mob - mob[v.index()]) * 1024 + tdist[v.index()].min(1023))
                        .collect()
                }
                Err(_) => tdist,
            }
        }
        Priority::InputOrder => g.op_ids().map(|v| (g.len() - v.index()) as u64).collect(),
    }
}

/// Greedily binds a complete start-time assignment onto unit instances:
/// operations are sorted by start step and each takes the first compatible
/// instance that is free for its whole execution interval.
///
/// # Errors
///
/// Returns [`BaselineError::BindingOverflow`] if, at some step, more
/// operations of a class execute than instances exist, and
/// [`BaselineError::NoCompatibleUnit`] if an operation has no compatible
/// instance at all.
pub fn bind_units(
    g: &PrecedenceGraph,
    resources: &ResourceSet,
    starts: &HardSchedule,
) -> Result<HardSchedule, BaselineError> {
    let mut out = starts.clone();
    let mut ops: Vec<OpId> = g.op_ids().collect();
    ops.sort_by_key(|&v| (starts.start(v).unwrap_or(u64::MAX), v));
    let mut unit_free = vec![0u64; resources.k()];
    for v in ops {
        let kind = g.kind(v);
        if kind.resource_class() == ResourceClass::Wire {
            continue;
        }
        let compat = resources.compatible_units(kind);
        if compat.is_empty() {
            return Err(BaselineError::NoCompatibleUnit(v, kind));
        }
        let Some(s) = starts.start(v) else {
            return Err(BaselineError::BindingOverflow(v));
        };
        match compat.into_iter().find(|&u| unit_free[u] <= s) {
            Some(u) => {
                unit_free[u] = s + g.delay(v);
                out.assign(v, s, Some(u));
            }
            None => return Err(BaselineError::BindingOverflow(v)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, schedule, OpKind, PrecedenceGraph};

    #[test]
    fn hal_lengths_under_the_figure3_allocations() {
        let g = bench_graphs::hal();
        let table: [(usize, usize, u64); 3] = [(2, 2, 7), (4, 4, 6), (2, 1, 13)];
        for (alus, muls, expect) in table {
            let r = ResourceSet::classic(alus, muls);
            let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
            assert_eq!(
                out.length(&g),
                expect,
                "HAL with {alus} ALU {muls} MUL"
            );
            schedule::validate(&g, &r, &out.schedule).unwrap();
        }
    }

    #[test]
    fn fir_lengths_match_the_paper_exactly() {
        // FIR row of Figure 3: 11 / 7 / 19.
        let g = bench_graphs::fir();
        for (alus, muls, expect) in [(2, 2, 11), (4, 4, 7), (2, 1, 19)] {
            let r = ResourceSet::classic(alus, muls);
            let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
            assert_eq!(out.length(&g), expect, "FIR with {alus} ALU {muls} MUL");
        }
    }

    #[test]
    fn single_unit_serialises_everything() {
        let g = bench_graphs::fir();
        let r = ResourceSet::uniform(1);
        let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
        // 8 muls * 2 + 7 adds * 1 = 23 steps, fully serial.
        assert_eq!(out.length(&g), 23);
        schedule::validate(&g, &r, &out.schedule).unwrap();
    }

    #[test]
    fn missing_unit_class_is_an_error() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 0);
        assert!(matches!(
            list_schedule(&g, &r, Priority::CriticalPath),
            Err(BaselineError::NoCompatibleUnit(_, OpKind::Mul))
        ));
    }

    #[test]
    fn issue_order_respects_dependencies() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
        assert_eq!(out.order.len(), g.len());
        let mut pos = vec![0usize; g.len()];
        for (i, &v) in out.order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (p, q) in g.edges() {
            assert!(pos[p.index()] < pos[q.index()]);
        }
    }

    #[test]
    fn wire_ops_issue_without_units() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let w = g.add_op(OpKind::WireDelay, 1, "w");
        let b = g.add_op(OpKind::Add, 1, "b");
        g.add_edge(a, w).unwrap();
        g.add_edge(w, b).unwrap();
        let r = ResourceSet::classic(1, 0);
        let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
        assert_eq!(out.length(&g), 3);
        assert_eq!(out.schedule.unit(w), None);
        schedule::validate(&g, &r, &out.schedule).unwrap();
    }

    #[test]
    fn priorities_are_all_usable() {
        let g = bench_graphs::ewf();
        let r = ResourceSet::classic(2, 1);
        for p in [Priority::CriticalPath, Priority::Mobility, Priority::InputOrder] {
            let out = list_schedule(&g, &r, p).unwrap();
            schedule::validate(&g, &r, &out.schedule).unwrap();
            assert!(out.length(&g) >= hls_ir::algo::diameter(&g));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn bind_units_assigns_disjoint_intervals() {
        let g = bench_graphs::hal();
        let r = ResourceSet::classic(2, 2);
        let out = list_schedule(&g, &r, Priority::CriticalPath).unwrap();
        // Strip units, re-bind, and validate.
        let mut starts = HardSchedule::new(g.len());
        for v in g.op_ids() {
            starts.assign(v, out.schedule.start(v).unwrap(), None);
        }
        let bound = bind_units(&g, &r, &starts).unwrap();
        schedule::validate(&g, &r, &bound).unwrap();
    }

    #[test]
    fn bind_units_detects_overflow() {
        let mut g = PrecedenceGraph::new();
        let a = g.add_op(OpKind::Add, 1, "a");
        let b = g.add_op(OpKind::Add, 1, "b");
        let mut starts = HardSchedule::new(g.len());
        starts.assign(a, 0, None);
        starts.assign(b, 0, None);
        let r = ResourceSet::classic(1, 0);
        assert!(matches!(
            bind_units(&g, &r, &starts),
            Err(BaselineError::BindingOverflow(_))
        ));
    }
}
