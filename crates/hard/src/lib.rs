//! Traditional ("hard") HLS schedulers.
//!
//! These are the schedulers the paper contrasts soft scheduling against:
//! they commit every operation to a fixed time step, i.e. their scheduling
//! state is *totally ordered* (Definition 3 of Zhu & Gajski, DAC '99).
//!
//! * [`asap`] / [`alap`] — unconstrained earliest/latest schedules and the
//!   derived [`mobility`] (slack) measure;
//! * [`list_schedule`] — resource-constrained list scheduling, the
//!   baseline of the paper's Figure 3 (and the source of its "meta
//!   schedule 4" operation order);
//! * [`fds_schedule`] — Paulin & Knight's force-directed scheduling
//!   (timing-constrained), cited by the paper as the other traditional
//!   scheduler;
//! * [`bind_units`] — greedy interval binding of a start-time assignment
//!   onto functional-unit instances.

mod fds;
mod list;
mod unconstrained;

pub use fds::{fds_schedule, FdsOutcome};
pub use list::{bind_units, list_schedule, ListOutcome, Priority};
pub use unconstrained::{alap, asap, mobility};

use hls_ir::{OpId, OpKind};
use std::error::Error;
use std::fmt;

/// Errors produced by the baseline schedulers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BaselineError {
    /// The input graph has a cycle.
    CyclicInput,
    /// No functional unit in the resource set can execute this operation.
    NoCompatibleUnit(OpId, OpKind),
    /// The latency bound is below the critical path.
    LatencyTooSmall {
        /// Requested latency bound.
        given: u64,
        /// Critical-path length of the graph.
        needed: u64,
    },
    /// Unit binding failed (more concurrent operations than instances).
    BindingOverflow(OpId),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::CyclicInput => write!(f, "input graph is cyclic"),
            BaselineError::NoCompatibleUnit(v, k) => {
                write!(f, "no unit can execute operation {v} of kind {k}")
            }
            BaselineError::LatencyTooSmall { given, needed } => {
                write!(f, "latency bound {given} below critical path {needed}")
            }
            BaselineError::BindingOverflow(v) => {
                write!(f, "not enough unit instances to bind operation {v}")
            }
        }
    }
}

impl Error for BaselineError {}
