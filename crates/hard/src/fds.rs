//! Force-directed scheduling (Paulin & Knight, 1989).
//!
//! FDS is timing-constrained: given a latency bound it chooses start steps
//! that balance the expected demand on every resource class, minimising
//! the number of functional units needed. The paper cites it as the other
//! traditional (hard) scheduler; we use it as an additional baseline and
//! in ablations.

use crate::{alap, asap, BaselineError};
use hls_ir::{HardSchedule, OpId, PrecedenceGraph, ResourceClass};

/// Result of [`fds_schedule`].
#[derive(Clone, Debug)]
pub struct FdsOutcome {
    /// Start steps for every operation (no unit binding; use
    /// [`crate::bind_units`]).
    pub schedule: HardSchedule,
    /// Peak concurrent use per resource class — the unit allocation FDS
    /// implies. Sorted by class.
    pub usage: Vec<(ResourceClass, usize)>,
}

/// Schedules `g` within `latency` steps, balancing per-class demand.
///
/// Implementation notes: classic self-force plus the implied frame
/// restriction of direct predecessors/successors; frames are recomputed
/// exactly (by constrained ASAP/ALAP) after every placement, which is
/// simpler and more robust than incremental updates at O(n² · L) total
/// cost.
///
/// # Errors
///
/// Propagates [`BaselineError::CyclicInput`] and
/// [`BaselineError::LatencyTooSmall`].
pub fn fds_schedule(g: &PrecedenceGraph, latency: u64) -> Result<FdsOutcome, BaselineError> {
    let n = g.len();
    let mut fixed: Vec<Option<u64>> = vec![None; n];
    let mut early = asap(g)?;
    let mut late = alap(g, latency)?;

    for _round in 0..n {
        let Some((op, start)) = best_placement(g, latency, &fixed, &early, &late)? else {
            break;
        };
        fixed[op.index()] = Some(start);
        let (e, l) = constrained_frames(g, latency, &fixed)?;
        early = e;
        late = l;
    }

    let mut schedule = HardSchedule::new(n);
    for v in g.op_ids() {
        let s = fixed[v.index()].unwrap_or_else(|| early.start(v).expect("asap complete"));
        schedule.assign(v, s, None);
    }
    let usage = peak_usage(g, &schedule, latency);
    Ok(FdsOutcome { schedule, usage })
}

/// ASAP/ALAP with some operations pinned to fixed start steps.
fn constrained_frames(
    g: &PrecedenceGraph,
    latency: u64,
    fixed: &[Option<u64>],
) -> Result<(HardSchedule, HardSchedule), BaselineError> {
    let order = hls_ir::algo::topo_order(g).map_err(|_| BaselineError::CyclicInput)?;
    let mut early = HardSchedule::new(g.len());
    for &v in &order {
        let mut s = g
            .preds(v)
            .iter()
            .map(|&p| early.finish(g, p).expect("topological order"))
            .max()
            .unwrap_or(0);
        if let Some(f) = fixed[v.index()] {
            // A pinned op whose frame the predecessors violate indicates an
            // inconsistent pin; clamp pessimistically (cannot happen when
            // pins come from legal frames).
            s = s.max(f).min(f.max(s));
            s = f.max(s);
        }
        early.assign(v, s, None);
    }
    let mut late = HardSchedule::new(g.len());
    for &v in order.iter().rev() {
        let mut e = g
            .succs(v)
            .iter()
            .map(|&q| late.start(q).expect("reverse topological order"))
            .min()
            .unwrap_or(latency);
        if let Some(f) = fixed[v.index()] {
            e = f + g.delay(v);
        }
        if e < g.delay(v) {
            return Err(BaselineError::LatencyTooSmall {
                given: latency,
                needed: g.delay(v),
            });
        }
        late.assign(v, e - g.delay(v), None);
    }
    Ok((early, late))
}

/// Execution probability of `v` at step `t` given its frame.
fn occupancy(g: &PrecedenceGraph, v: OpId, s_min: u64, s_max: u64, t: u64) -> f64 {
    let d = g.delay(v);
    if d == 0 {
        return 0.0;
    }
    let width = s_max - s_min + 1;
    // Starts s in [s_min, s_max] with s <= t <= s + d - 1.
    let lo = s_min.max(t.saturating_sub(d - 1));
    let hi = s_max.min(t);
    if lo > hi {
        0.0
    } else {
        (hi - lo + 1) as f64 / width as f64
    }
}

/// Distribution graph for one resource class over all steps.
fn distribution(
    g: &PrecedenceGraph,
    latency: u64,
    class: ResourceClass,
    early: &HardSchedule,
    late: &HardSchedule,
) -> Vec<f64> {
    let mut dg = vec![0.0f64; latency as usize + 1];
    for v in g.op_ids() {
        if g.kind(v).resource_class() != class {
            continue;
        }
        let (s_min, s_max) = frame(early, late, v);
        for (t, slot) in dg.iter_mut().enumerate() {
            *slot += occupancy(g, v, s_min, s_max, t as u64);
        }
    }
    dg
}

fn frame(early: &HardSchedule, late: &HardSchedule, v: OpId) -> (u64, u64) {
    let s_min = early.start(v).expect("frames are complete");
    let s_max = late.start(v).expect("frames are complete").max(s_min);
    (s_min, s_max)
}

/// Evaluates every (unfixed op, candidate start) pair and returns the one
/// with the lowest total force.
fn best_placement(
    g: &PrecedenceGraph,
    latency: u64,
    fixed: &[Option<u64>],
    early: &HardSchedule,
    late: &HardSchedule,
) -> Result<Option<(OpId, u64)>, BaselineError> {
    let classes: Vec<ResourceClass> = {
        let mut cs: Vec<ResourceClass> =
            g.op_ids().map(|v| g.kind(v).resource_class()).collect();
        cs.sort();
        cs.dedup();
        cs
    };
    let dgs: Vec<(ResourceClass, Vec<f64>)> = classes
        .iter()
        .map(|&c| (c, distribution(g, latency, c, early, late)))
        .collect();

    let mut best: Option<(f64, OpId, u64)> = None;
    for v in g.op_ids() {
        if fixed[v.index()].is_some() {
            continue;
        }
        let class = g.kind(v).resource_class();
        let (s_min, s_max) = frame(early, late, v);
        if s_min == s_max {
            // Already immobile; fixing it changes nothing but progress.
            let cand = (0.0, v, s_min);
            if best.is_none_or(|(f, bv, _)| cand.0 < f || (cand.0 == f && v < bv)) {
                best = Some(cand);
            }
            continue;
        }
        let dg = &dgs
            .iter()
            .find(|(c, _)| *c == class)
            .expect("class present")
            .1;
        for s in s_min..=s_max {
            let mut force = self_force(g, v, s_min, s_max, s, dg);
            // Neighbour forces: pinning v at s narrows direct neighbours.
            for &p in g.preds(v) {
                if fixed[p.index()].is_none() {
                    let (pmin, pmax) = frame(early, late, p);
                    let new_max = pmax.min(s.saturating_sub(g.delay(p)));
                    if new_max < pmax {
                        let pdg = class_dg(&dgs, g.kind(p).resource_class());
                        force += self_force_range(g, p, pmin, pmax, pmin, new_max.max(pmin), pdg);
                    }
                }
            }
            for &q in g.succs(v) {
                if fixed[q.index()].is_none() {
                    let (qmin, qmax) = frame(early, late, q);
                    let new_min = qmin.max(s + g.delay(v));
                    if new_min > qmin {
                        let qdg = class_dg(&dgs, g.kind(q).resource_class());
                        force += self_force_range(g, q, qmin, qmax, new_min.min(qmax), qmax, qdg);
                    }
                }
            }
            if best.is_none_or(|(f, bv, bs)| {
                force < f - 1e-12 || (force <= f + 1e-12 && (v, s) < (bv, bs))
            }) {
                best = Some((force, v, s));
            }
        }
    }
    Ok(best.map(|(_, v, s)| (v, s)))
}

fn class_dg(
    dgs: &[(ResourceClass, Vec<f64>)],
    class: ResourceClass,
) -> &[f64] {
    &dgs.iter().find(|(c, _)| *c == class).expect("class present").1
}

/// Self force of restricting `v`'s frame from `[s_min, s_max]` to the
/// single start `s`.
fn self_force(
    g: &PrecedenceGraph,
    v: OpId,
    s_min: u64,
    s_max: u64,
    s: u64,
    dg: &[f64],
) -> f64 {
    self_force_range(g, v, s_min, s_max, s, s, dg)
}

/// Self force of restricting `v`'s frame from `[s_min, s_max]` to
/// `[n_min, n_max]`: Σ_t DG(t) · (p_new(t) − p_old(t)).
fn self_force_range(
    g: &PrecedenceGraph,
    v: OpId,
    s_min: u64,
    s_max: u64,
    n_min: u64,
    n_max: u64,
    dg: &[f64],
) -> f64 {
    let mut force = 0.0;
    let lo = s_min;
    let hi = (s_max + g.delay(v)).min(dg.len() as u64 - 1);
    for t in lo..=hi {
        let p_old = occupancy(g, v, s_min, s_max, t);
        let p_new = occupancy(g, v, n_min, n_max, t);
        force += dg[t as usize] * (p_new - p_old);
    }
    force
}

/// Peak simultaneous use per resource class of a complete schedule.
pub(crate) fn peak_usage(
    g: &PrecedenceGraph,
    sched: &HardSchedule,
    latency: u64,
) -> Vec<(ResourceClass, usize)> {
    let mut usage: Vec<(ResourceClass, Vec<usize>)> = Vec::new();
    for v in g.op_ids() {
        let class = g.kind(v).resource_class();
        if class == ResourceClass::Wire || g.delay(v) == 0 {
            continue;
        }
        let s = sched.start(v).expect("complete schedule");
        let entry = match usage.iter_mut().find(|(c, _)| *c == class) {
            Some(e) => e,
            None => {
                usage.push((class, vec![0; latency as usize + 1]));
                usage.last_mut().expect("just pushed")
            }
        };
        for t in s..(s + g.delay(v)).min(latency + 1) {
            entry.1[t as usize] += 1;
        }
    }
    let mut out: Vec<(ResourceClass, usize)> = usage
        .into_iter()
        .map(|(c, per_step)| (c, per_step.into_iter().max().unwrap_or(0)))
        .collect();
    out.sort_by_key(|&(c, _)| c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{algo, bench_graphs, schedule, ResourceSet};

    #[test]
    fn fds_meets_the_latency_bound_and_precedence() {
        let g = bench_graphs::hal();
        let latency = algo::diameter(&g) + 2;
        let out = fds_schedule(&g, latency).unwrap();
        assert!(out.schedule.length(&g) <= latency);
        for (p, q) in g.edges() {
            assert!(
                out.schedule.start(q).unwrap() >= out.schedule.finish(&g, p).unwrap(),
                "{p} -> {q}"
            );
        }
    }

    #[test]
    fn fds_balances_hal_multipliers() {
        // The textbook FDS result: at latency 8, HAL needs far fewer
        // multipliers than the ASAP peak of 4.
        let g = bench_graphs::hal();
        let out = fds_schedule(&g, 8).unwrap();
        let muls = out
            .usage
            .iter()
            .find(|(c, _)| *c == ResourceClass::Multiplier)
            .map(|&(_, n)| n)
            .unwrap();
        assert!(muls <= 2, "FDS should need at most 2 multipliers, got {muls}");
    }

    #[test]
    fn fds_usage_binds_successfully() {
        let g = bench_graphs::fir();
        let latency = algo::diameter(&g) + 3;
        let out = fds_schedule(&g, latency).unwrap();
        let mut r = ResourceSet::new();
        for &(class, n) in &out.usage {
            r = r.with(class, n);
        }
        let bound = crate::bind_units(&g, &r, &out.schedule).unwrap();
        schedule::validate(&g, &r, &bound).unwrap();
    }

    #[test]
    fn fds_rejects_infeasible_latency() {
        let g = bench_graphs::hal();
        assert!(matches!(
            fds_schedule(&g, 2),
            Err(BaselineError::LatencyTooSmall { .. })
        ));
    }

    #[test]
    fn fds_at_exact_critical_path_is_feasible() {
        let g = bench_graphs::ewf();
        let latency = algo::diameter(&g);
        let out = fds_schedule(&g, latency).unwrap();
        assert_eq!(out.schedule.length(&g), latency);
    }

    #[test]
    fn peak_usage_counts_overlap() {
        let mut g = hls_ir::PrecedenceGraph::new();
        let a = g.add_op(hls_ir::OpKind::Mul, 2, "a");
        let b = g.add_op(hls_ir::OpKind::Mul, 2, "b");
        let mut s = hls_ir::HardSchedule::new(2);
        s.assign(a, 0, None);
        s.assign(b, 1, None);
        let usage = peak_usage(&g, &s, 3);
        assert_eq!(usage, vec![(ResourceClass::Multiplier, 2)]);
    }
}
