//! Unconstrained ASAP / ALAP schedules and mobility.

use crate::BaselineError;
use hls_ir::{algo, HardSchedule, PrecedenceGraph};

/// As-soon-as-possible start times (no resource constraints, no units).
///
/// `start(v) = max over preds (start(p) + delay(p))`, sources at 0.
///
/// # Errors
///
/// Returns [`BaselineError::CyclicInput`] if `g` is cyclic.
pub fn asap(g: &PrecedenceGraph) -> Result<HardSchedule, BaselineError> {
    let order = algo::topo_order(g).map_err(|_| BaselineError::CyclicInput)?;
    let mut sched = HardSchedule::new(g.len());
    for &v in &order {
        let start = g
            .preds(v)
            .iter()
            .map(|&p| sched.finish(g, p).expect("topological order"))
            .max()
            .unwrap_or(0);
        sched.assign(v, start, None);
    }
    Ok(sched)
}

/// As-late-as-possible start times under a latency bound (the schedule of
/// the paper's Figure 1(b)).
///
/// `start(v) = min over succs start(q) − delay(v)`, sinks end at `latency`.
///
/// # Errors
///
/// Returns [`BaselineError::CyclicInput`] for cyclic graphs and
/// [`BaselineError::LatencyTooSmall`] if `latency` is below the critical
/// path.
pub fn alap(g: &PrecedenceGraph, latency: u64) -> Result<HardSchedule, BaselineError> {
    let order = algo::topo_order(g).map_err(|_| BaselineError::CyclicInput)?;
    let needed = algo::diameter(g);
    if latency < needed {
        return Err(BaselineError::LatencyTooSmall {
            given: latency,
            needed,
        });
    }
    let mut sched = HardSchedule::new(g.len());
    for &v in order.iter().rev() {
        let end = g
            .succs(v)
            .iter()
            .map(|&q| sched.start(q).expect("reverse topological order"))
            .min()
            .unwrap_or(latency);
        sched.assign(v, end - g.delay(v), None);
    }
    Ok(sched)
}

/// Mobility (slack) of every operation under a latency bound:
/// `alap_start − asap_start`, indexed by op. Zero mobility marks the
/// critical path.
///
/// # Errors
///
/// Propagates the errors of [`asap`] and [`alap`].
pub fn mobility(g: &PrecedenceGraph, latency: u64) -> Result<Vec<u64>, BaselineError> {
    let early = asap(g)?;
    let late = alap(g, latency)?;
    Ok(g.op_ids()
        .map(|v| late.start(v).expect("alap complete") - early.start(v).expect("asap complete"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{bench_graphs, OpKind};

    #[test]
    fn asap_of_hal_matches_hand_computation() {
        let g = bench_graphs::hal();
        let s = asap(&g).unwrap();
        // m1..m3, m6, a1 are sources at 0; m4 starts when m1/m2 finish.
        assert_eq!(s.length(&g), 6);
        let m4 = g.op_ids().find(|&v| g.label(v).starts_with("m4")).unwrap();
        assert_eq!(s.start(m4), Some(2));
    }

    #[test]
    fn alap_ends_exactly_at_latency() {
        let g = bench_graphs::hal();
        let s = alap(&g, 10).unwrap();
        assert_eq!(s.length(&g), 10);
        // Every sink finishes at the bound under ALAP.
        for v in g.sinks() {
            assert_eq!(s.finish(&g, v), Some(10));
        }
    }

    #[test]
    fn alap_rejects_infeasible_latency() {
        let g = bench_graphs::hal();
        assert_eq!(
            alap(&g, 3),
            Err(BaselineError::LatencyTooSmall { given: 3, needed: 6 })
        );
    }

    #[test]
    fn mobility_is_zero_on_critical_path() {
        let g = bench_graphs::hal();
        let mob = mobility(&g, 6).unwrap();
        let cp = hls_ir::algo::critical_path(&g);
        for v in cp {
            assert_eq!(mob[v.index()], 0, "critical op {v} must have no slack");
        }
        // a1 = x + dx has lots of slack at latency 6: alap start 4.
        let a1 = g.op_ids().find(|&v| g.label(v).starts_with("a1")).unwrap();
        assert_eq!(g.kind(a1), OpKind::Add);
        assert_eq!(mob[a1.index()], 4);
    }

    #[test]
    fn asap_precedence_holds_on_random_graphs() {
        use hls_ir::generate::{layered_dag, LayeredConfig};
        for seed in 0..5 {
            let g = layered_dag(seed, &LayeredConfig::default());
            let s = asap(&g).unwrap();
            for (p, q) in g.edges() {
                assert!(s.start(q).unwrap() >= s.finish(&g, p).unwrap());
            }
            assert_eq!(s.length(&g), hls_ir::algo::diameter(&g));
        }
    }

    #[test]
    fn alap_precedence_holds_on_random_graphs() {
        use hls_ir::generate::{layered_dag, LayeredConfig};
        for seed in 0..5 {
            let g = layered_dag(seed, &LayeredConfig::default());
            let lat = hls_ir::algo::diameter(&g) + 3;
            let s = alap(&g, lat).unwrap();
            for (p, q) in g.edges() {
                assert!(s.start(q).unwrap() >= s.finish(&g, p).unwrap());
            }
            assert_eq!(s.length(&g), lat);
        }
    }
}
