//! Property-based tests for the traditional schedulers.

use hls_baselines::{alap, asap, bind_units, fds_schedule, list_schedule, mobility, Priority};
use hls_ir::{algo, generate, schedule, ResourceSet};
use proptest::prelude::*;

fn workload(seed: u64, ops: usize) -> hls_ir::PrecedenceGraph {
    generate::layered_dag(
        seed,
        &generate::LayeredConfig {
            ops,
            width: (ops / 4).max(2),
            ..generate::LayeredConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// List schedules are always complete, legal and bounded by
    /// [critical path, serialised total delay].
    #[test]
    fn list_schedule_is_legal_and_bounded(
        seed in 0u64..1000,
        ops in 6usize..48,
        alus in 1usize..4,
        muls in 1usize..4,
        prio_idx in 0usize..3,
    ) {
        let g = workload(seed, ops);
        let r = ResourceSet::classic(alus, muls);
        let prio = [Priority::CriticalPath, Priority::Mobility, Priority::InputOrder][prio_idx];
        let out = list_schedule(&g, &r, prio).unwrap();
        schedule::validate(&g, &r, &out.schedule).unwrap();
        prop_assert!(out.length(&g) >= algo::diameter(&g));
        prop_assert!(out.length(&g) <= g.total_delay());
    }

    /// More units never lengthen a list schedule.
    #[test]
    fn list_schedule_is_monotone_in_resources(
        seed in 0u64..500,
        ops in 6usize..40,
        alus in 1usize..3,
        muls in 1usize..3,
    ) {
        let g = workload(seed, ops);
        let small = list_schedule(&g, &ResourceSet::classic(alus, muls), Priority::CriticalPath)
            .unwrap()
            .length(&g);
        let big = list_schedule(
            &g,
            &ResourceSet::classic(alus + 1, muls + 1),
            Priority::CriticalPath,
        )
        .unwrap()
        .length(&g);
        prop_assert!(big <= small);
    }

    /// ASAP is the unique earliest schedule; ALAP ends at the bound;
    /// mobility is their non-negative difference.
    #[test]
    fn asap_alap_mobility_are_consistent(
        seed in 0u64..1000,
        ops in 4usize..40,
        extra in 0u64..6,
    ) {
        let g = workload(seed, ops);
        let latency = algo::diameter(&g) + extra;
        let early = asap(&g).unwrap();
        let late = alap(&g, latency).unwrap();
        let mob = mobility(&g, latency).unwrap();
        for v in g.op_ids() {
            prop_assert!(early.start(v).unwrap() <= late.start(v).unwrap());
            prop_assert_eq!(
                mob[v.index()],
                late.start(v).unwrap() - early.start(v).unwrap()
            );
        }
        prop_assert_eq!(early.length(&g), algo::diameter(&g));
        prop_assert_eq!(late.length(&g), latency);
    }

    /// FDS meets the latency bound, keeps precedence and its implied
    /// allocation always binds.
    #[test]
    fn fds_is_feasible_and_bindable(
        seed in 0u64..300,
        ops in 4usize..24,
        extra in 0u64..4,
    ) {
        let g = workload(seed, ops);
        let latency = algo::diameter(&g) + extra;
        let out = fds_schedule(&g, latency).unwrap();
        prop_assert!(out.schedule.length(&g) <= latency);
        for (p, q) in g.edges() {
            prop_assert!(
                out.schedule.start(q).unwrap() >= out.schedule.finish(&g, p).unwrap()
            );
        }
        let mut r = ResourceSet::new();
        for &(class, n) in &out.usage {
            r = r.with(class, n);
        }
        let bound = bind_units(&g, &r, &out.schedule).unwrap();
        schedule::validate(&g, &r, &bound).unwrap();
    }
}
